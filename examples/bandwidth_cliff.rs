//! Bandwidth cliff: sweep the DRAM channel count for a fixed many-core
//! system and watch state-of-the-art prefetching flip from a win to a
//! loss — the phenomenon that motivates the paper (Figures 1-3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bandwidth_cliff
//! ```

use clip::sim::{run_mix, RunOptions, Scheme};
use clip::stats::normalized_weighted_speedup;
use clip::trace::Mix;
use clip::types::{PrefetcherKind, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 8;
    // A streaming workload: maximally prefetch-friendly, so the only thing
    // that can hurt it is bandwidth contention.
    let workload =
        clip::trace::catalog::by_name("619.lbm_s-4268B").ok_or("workload missing from catalog")?;
    let mix = Mix::homogeneous(&workload, cores);
    let opts = RunOptions {
        warmup_instrs: 1_000,
        sim_instrs: 5_000,
        ..RunOptions::default()
    };

    println!("8 cores of lbm (streaming), Berti L1 prefetcher");
    println!();
    println!("channels  ch/core  norm.WS(Berti)  DRAM util  avg L1-miss lat (pf/base)");
    for channels in [1usize, 2, 4, 8] {
        let cfg_no = SimConfig::builder()
            .cores(cores)
            .dram_channels(channels)
            .build()?;
        let cfg_pf = SimConfig::builder()
            .cores(cores)
            .dram_channels(channels)
            .l1_prefetcher(PrefetcherKind::Berti)
            .build()?;
        let base = run_mix(&cfg_no, &Scheme::plain(), &mix, &opts);
        let pf = run_mix(&cfg_pf, &Scheme::plain(), &mix, &opts);
        let ws = normalized_weighted_speedup(&pf.per_core_ipc, &base.per_core_ipc);
        println!(
            "{channels:>8}  {:>7.3}  {ws:>14.3}  {:>8.0}%  {:>6.0} / {:.0} cycles",
            channels as f64 / cores as f64,
            pf.dram_bw_util * 100.0,
            pf.latency.l1_miss.avg(),
            base.latency.l1_miss.avg(),
        );
    }
    println!();
    println!("expected shape: WS < 1 with one channel, > 1.2 with one channel per core");
    Ok(())
}
