//! Criticality lab: drive CLIP's predictor directly (no full-system
//! simulation) to show how the critical signature separates the two
//! control-flow contexts of a dynamic-critical load IP — the case every
//! IP-indexed baseline predictor gets wrong roughly half the time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example criticality_lab
//! ```

use clip::core_mechanism::{Clip, ClipConfig};
use clip::cpu::LoadOutcome;
use clip::types::{Addr, Ip, MemLevel};

fn outcome(ip: u64, addr: u64, critical: bool) -> LoadOutcome {
    LoadOutcome {
        ip: Ip::new(ip),
        addr: Addr::new(addr),
        level: if critical {
            MemLevel::Dram
        } else {
            MemLevel::L1
        },
        stalled_head: critical,
        stall_cycles: if critical { 80 } else { 0 },
        rob_occupancy: 320,
        outstanding_loads: 2,
        done_cycle: 0,
        latency: if critical { 400 } else { 5 },
    }
}

fn main() {
    let mut clip = Clip::new(ClipConfig::default());
    let ip = 0x401000u64;
    let addr = 0x5000_0000u64;

    // The IP behaves like `mcf`'s dynamic-critical loads: after a taken
    // branch it walks cold memory (critical); after a not-taken branch it
    // reads its hot working set (non-critical).
    println!("training a context-dual load IP for 200 iterations...");
    for _ in 0..200 {
        for _ in 0..32 {
            clip.on_branch(true);
        }
        clip.on_load_complete(&outcome(ip, addr, true));
        for _ in 0..32 {
            clip.on_branch(false);
        }
        clip.on_load_complete(&outcome(ip, addr, false));
    }

    for _ in 0..32 {
        clip.on_branch(true);
    }
    let taken_ctx = clip.predict_critical(Ip::new(ip), Addr::new(addr).line());
    for _ in 0..32 {
        clip.on_branch(false);
    }
    let nottaken_ctx = clip.predict_critical(Ip::new(ip), Addr::new(addr).line());

    println!();
    println!("prediction after taken-branch context    : critical = {taken_ctx}");
    println!("prediction after not-taken-branch context: critical = {nottaken_ctx}");
    println!();
    println!(
        "an IP-only predictor must answer the same for both contexts; \
         CLIP's critical signature answers per dynamic instance."
    );
    println!();
    println!("storage budget of this CLIP instance (Table 2):");
    println!("{}", clip.storage_report());
}
