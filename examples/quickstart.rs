//! Quickstart: simulate one bandwidth-constrained many-core mix with and
//! without CLIP and print the headline comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clip::sim::{run_mix, RunOptions, Scheme};
use clip::stats::normalized_weighted_speedup;
use clip::trace::Mix;
use clip::types::{PrefetcherKind, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-core system with a single DDR4-3200 channel: the same
    // channels-per-core ratio as the paper's 64-core / 8-channel baseline.
    let cores = 8;
    let platform = |pf: PrefetcherKind| {
        SimConfig::builder()
            .cores(cores)
            .dram_channels(1)
            .l1_prefetcher(pf)
            .build()
    };
    let cfg_nopf = platform(PrefetcherKind::None)?;
    let cfg_berti = platform(PrefetcherKind::Berti)?;

    // All cores run the same pointer-chasing mcf simpoint (SPEC RATE mode).
    let workload =
        clip::trace::catalog::by_name("605.mcf_s-1554B").ok_or("workload missing from catalog")?;
    let mix = Mix::homogeneous(&workload, cores);

    let opts = RunOptions {
        warmup_instrs: 2_000,
        sim_instrs: 8_000,
        ..RunOptions::default()
    };

    println!("simulating {} x {} ...", cores, mix.name);
    let base = run_mix(&cfg_nopf, &Scheme::plain(), &mix, &opts);
    let berti = run_mix(&cfg_berti, &Scheme::plain(), &mix, &opts);
    let clip = run_mix(&cfg_berti, &Scheme::with_clip(), &mix, &opts);

    let ws_berti = normalized_weighted_speedup(&berti.per_core_ipc, &base.per_core_ipc);
    let ws_clip = normalized_weighted_speedup(&clip.per_core_ipc, &base.per_core_ipc);

    println!();
    println!("scheme        norm.WS   pf-issued  pf-accuracy  avg L1-miss latency");
    println!(
        "no prefetch   {:>7.3}   {:>9}  {:>11}  {:>10.0} cycles",
        1.0,
        0,
        "-",
        base.latency.l1_miss.avg()
    );
    println!(
        "Berti         {:>7.3}   {:>9}  {:>10.1}%  {:>10.0} cycles",
        ws_berti,
        berti.prefetch.issued,
        berti.prefetch.accuracy() * 100.0,
        berti.latency.l1_miss.avg()
    );
    println!(
        "Berti+CLIP    {:>7.3}   {:>9}  {:>10.1}%  {:>10.0} cycles",
        ws_clip,
        clip.prefetch.issued,
        clip.prefetch.accuracy() * 100.0,
        clip.latency.l1_miss.avg()
    );

    let report = clip.clip.expect("CLIP scheme returns a report");
    println!();
    println!(
        "CLIP dropped {:.0}% of prefetch candidates; {:.1} critical-and-accurate IPs/core",
        report.stats.drop_rate() * 100.0,
        report.critical_ips
    );
    println!(
        "critical-IP prediction: {:.0}% accuracy, {:.0}% coverage",
        report.ip_eval.accuracy() * 100.0,
        report.ip_eval.coverage() * 100.0
    );
    Ok(())
}
