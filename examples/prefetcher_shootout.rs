//! Prefetcher shootout: train each prefetcher of the bouquet on the same
//! three access patterns (stream, stride, pointer chase) and report
//! candidate volume — a feel for why accuracy-style filtering alone
//! cannot separate good from harmful prefetches.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use clip::prefetch::{build, AccessInfo, PrefetcherKind};
use clip::types::{Addr, Ip};
use std::collections::HashSet;

/// Replays `addrs` (line numbers) into a fresh prefetcher; returns
/// (candidates emitted, would-be-covered accesses).
fn replay(kind: PrefetcherKind, addrs: &[u64]) -> (usize, usize) {
    let mut pf = build(kind);
    let mut out = Vec::new();
    let mut issued: HashSet<u64> = HashSet::new();
    let mut covered = 0;
    let mut total_candidates = 0;
    for (i, &line) in addrs.iter().enumerate() {
        if issued.contains(&line) {
            covered += 1;
        }
        out.clear();
        pf.on_access(
            &AccessInfo {
                ip: Ip::new(0x400),
                addr: Addr::new(line * 64),
                hit: false,
                is_store: false,
                cycle: i as u64 * 200,
            },
            &mut out,
        );
        total_candidates += out.len();
        for c in &out {
            issued.insert(c.line.raw());
            pf.on_fill(c.line, i as u64 * 200 + 100);
        }
    }
    (total_candidates, covered)
}

fn main() {
    let n = 2_000u64;
    let stream: Vec<u64> = (0..n).map(|i| 100_000 + i).collect();
    let stride: Vec<u64> = (0..n).map(|i| 500_000 + i * 7).collect();
    let chase: Vec<u64> = {
        let mut v = Vec::with_capacity(n as usize);
        let mut x = 1u64;
        for _ in 0..n {
            v.push(x % (1 << 22));
            x = clip::types::hash64(x);
        }
        v
    };

    println!("pattern coverage over {n} accesses (candidates emitted / accesses covered):");
    println!();
    println!(
        "{:<10} {:>18} {:>18} {:>18}",
        "prefetcher", "stream", "stride-7", "pointer-chase"
    );
    for kind in [
        PrefetcherKind::Berti,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Bingo,
        PrefetcherKind::SppPpf,
        PrefetcherKind::IpStride,
        PrefetcherKind::Stream,
        PrefetcherKind::NextLine,
    ] {
        let s = replay(kind, &stream);
        let t = replay(kind, &stride);
        let c = replay(kind, &chase);
        println!(
            "{:<10} {:>9}/{:<8} {:>9}/{:<8} {:>9}/{:<8}",
            kind.name(),
            s.0,
            s.1,
            t.0,
            t.1,
            c.0,
            c.1
        );
    }
    println!();
    println!(
        "the chase column is the trap: candidates issued there are pure \
         bandwidth waste, which only hurts once DRAM is the bottleneck."
    );
}
