//! Custom workloads: define your own workload model with the
//! `WorkloadSpec` builder, validate its statistics offline, record it to a
//! portable trace file, and run it through the simulator — the workflow a
//! downstream user follows to study a workload the catalog does not cover.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use clip::sim::{run_mix, RunOptions, Scheme};
use clip::stats::normalized_weighted_speedup;
use clip::trace::spec::PatternMix;
use clip::trace::{Mix, Suite, TraceStats, WorkloadSpec};
use clip::types::{PrefetcherKind, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A database-like workload: a B-tree-ish pointer chase over a large
    // footprint, a hot root working set, and branchy control flow.
    let spec = WorkloadSpec::new(
        "custom.btree-scan",
        Suite::SpecCpu2017,
        PatternMix {
            stream: 0.10,
            stride: 0.05,
            chase: 0.45,
            hot: 0.30,
            ctx_dual: 0.10,
        },
    )
    .footprint(1 << 21) // 128 MiB
    .hot(512)
    .ips(40, 28)
    .mixfrac(0.30, 0.10, 0.18)
    .predictability(0.75);

    // 1. Offline validation of the model's statistics.
    let window = spec.generator(1).record(30_000);
    let stats = TraceStats::analyse(&window, 768);
    println!("--- model statistics (30k instructions) ---");
    println!("{stats}");
    println!();

    // 2. Record a window to a portable trace file.
    let path = std::env::temp_dir().join("btree-scan.trace");
    clip::trace::record::save(&path, &spec.name, 1, &window)?;
    let reloaded = clip::trace::record::load(&path)?;
    assert_eq!(reloaded.instrs.len(), window.len());
    println!(
        "recorded + reloaded {} instructions via {}",
        window.len(),
        path.display()
    );
    println!();

    // 3. Simulate 4 cores of it on a bandwidth-constrained system.
    let cores = 4;
    let mix = Mix::homogeneous(&spec, cores);
    let platform = |pf: PrefetcherKind| {
        SimConfig::builder()
            .cores(cores)
            .dram_channels(1)
            .l1_prefetcher(pf)
            .build()
    };
    let opts = RunOptions {
        warmup_instrs: 1_000,
        sim_instrs: 5_000,
        ..RunOptions::default()
    };
    let base = run_mix(
        &platform(PrefetcherKind::None)?,
        &Scheme::plain(),
        &mix,
        &opts,
    );
    let berti = run_mix(
        &platform(PrefetcherKind::Berti)?,
        &Scheme::plain(),
        &mix,
        &opts,
    );
    let clip = run_mix(
        &platform(PrefetcherKind::Berti)?,
        &Scheme::with_clip(),
        &mix,
        &opts,
    );

    println!("--- simulation (4 cores, 1 DDR4 channel) ---");
    println!(
        "Berti      : WS {:.3}, {} prefetches, {:.0}% accurate",
        normalized_weighted_speedup(&berti.per_core_ipc, &base.per_core_ipc),
        berti.prefetch.issued,
        berti.prefetch.accuracy() * 100.0
    );
    println!(
        "Berti+CLIP : WS {:.3}, {} prefetches, {:.0}% accurate",
        normalized_weighted_speedup(&clip.per_core_ipc, &base.per_core_ipc),
        clip.prefetch.issued,
        clip.prefetch.accuracy() * 100.0
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
