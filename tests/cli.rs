//! End-to-end tests of the command-line binaries.

use std::process::Command;

#[test]
fn clipsim_lists_workloads() {
    let out = Command::new(env!("CARGO_BIN_EXE_clipsim"))
        .arg("--list-workloads")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("605.mcf_s-1554B"));
    assert!(stdout.contains("cloudsuite.cassandra"));
    assert!(stdout.lines().count() >= 45 + 6 + 10);
}

#[test]
fn clipsim_runs_a_tiny_simulation() {
    let out = Command::new(env!("CARGO_BIN_EXE_clipsim"))
        .args([
            "--workload",
            "603.bwaves_s-891B",
            "--cores",
            "2",
            "--channels",
            "1",
            "--prefetcher",
            "berti",
            "--clip",
            "--instrs",
            "800",
            "--warmup",
            "200",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("normalized WS"));
    assert!(stdout.contains("CLIP"));
}

#[test]
fn clipsim_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_clipsim"))
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn clipsim_rejects_unknown_workload() {
    let out = Command::new(env!("CARGO_BIN_EXE_clipsim"))
        .args(["--workload", "not-a-workload", "--instrs", "100"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn trace_info_reports_a_workload() {
    let out = Command::new(env!("CARGO_BIN_EXE_clip-trace-info"))
        .arg("605.mcf_s-1554B")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MPKI"));
    assert!(stdout.contains("chase loads"));
}

#[test]
fn trace_info_record_and_analyse_roundtrip() {
    let path = std::env::temp_dir().join("clip-cli-test.trace");
    let rec = Command::new(env!("CARGO_BIN_EXE_clip-trace-info"))
        .args([
            "--record",
            "619.lbm_s-4268B",
            path.to_str().expect("utf8 path"),
            "2000",
        ])
        .output()
        .expect("binary runs");
    assert!(rec.status.success());
    let ana = Command::new(env!("CARGO_BIN_EXE_clip-trace-info"))
        .args(["--analyse", path.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(ana.status.success());
    assert!(String::from_utf8_lossy(&ana.stdout).contains("619.lbm_s-4268B"));
    let _ = std::fs::remove_file(&path);
}
