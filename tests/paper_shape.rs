//! Qualitative reproduction checks: the paper's headline *shapes* must
//! hold on small systems. These are the assertions EXPERIMENTS.md reports
//! quantitatively; here they gate the test suite.

use clip::sim::{run_mix, RunOptions, Scheme};
use clip::stats::normalized_weighted_speedup;
use clip::trace::Mix;
use clip::types::{PrefetcherKind, SimConfig};

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 3,
        ..RunOptions::default()
    }
}

fn cfg(pf: PrefetcherKind, channels: usize) -> SimConfig {
    SimConfig::builder()
        .cores(8)
        .dram_channels(channels)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn ws(pf: PrefetcherKind, scheme: &Scheme, channels: usize, name: &str) -> f64 {
    let mix = Mix::homogeneous(
        &clip::trace::catalog::by_name(name).expect("workload exists"),
        8,
    );
    let base = run_mix(
        &cfg(PrefetcherKind::None, channels),
        &Scheme::plain(),
        &mix,
        &opts(),
    );
    let res = run_mix(&cfg(pf, channels), scheme, &mix, &opts());
    normalized_weighted_speedup(&res.per_core_ipc, &base.per_core_ipc)
}

/// Figure 1's crossover: Berti must lose on a bandwidth-starved system
/// and win with a channel per two cores, on a streaming workload.
#[test]
fn berti_crossover_with_bandwidth() {
    let constrained = ws(
        PrefetcherKind::Berti,
        &Scheme::plain(),
        1,
        "619.lbm_s-4268B",
    );
    let roomy = ws(
        PrefetcherKind::Berti,
        &Scheme::plain(),
        4,
        "619.lbm_s-4268B",
    );
    assert!(
        constrained < 1.0,
        "Berti must slow a 1-channel 8-core system down: {constrained:.3}"
    );
    assert!(
        roomy > 1.1,
        "Berti must win with ample bandwidth: {roomy:.3}"
    );
}

/// Figure 10's direction: CLIP must improve Berti under constrained
/// bandwidth on a prefetch-hostile mix.
#[test]
fn clip_improves_constrained_berti() {
    let berti = ws(
        PrefetcherKind::Berti,
        &Scheme::plain(),
        1,
        "605.mcf_s-1536B",
    );
    let clip = ws(
        PrefetcherKind::Berti,
        &Scheme::with_clip(),
        1,
        "605.mcf_s-1536B",
    );
    assert!(
        clip > berti - 0.02,
        "CLIP must not lose to plain Berti when bandwidth-bound: {clip:.3} vs {berti:.3}"
    );
}

/// Figure 16's direction: CLIP halves (or better) the prefetch traffic.
#[test]
fn clip_cuts_prefetch_traffic_substantially() {
    let mix = Mix::homogeneous(
        &clip::trace::catalog::by_name("605.mcf_s-1554B").expect("workload"),
        8,
    );
    let plain = run_mix(
        &cfg(PrefetcherKind::Berti, 1),
        &Scheme::plain(),
        &mix,
        &opts(),
    );
    let clipd = run_mix(
        &cfg(PrefetcherKind::Berti, 1),
        &Scheme::with_clip(),
        &mix,
        &opts(),
    );
    assert!(
        (clipd.prefetch.issued as f64) < plain.prefetch.issued as f64 * 0.7,
        "CLIP traffic {} vs Berti {}",
        clipd.prefetch.issued,
        plain.prefetch.issued
    );
}

/// Figure 3's direction: Berti inflates demand miss latency under
/// constrained bandwidth.
#[test]
fn berti_inflates_latency_when_constrained() {
    let mix = Mix::homogeneous(
        &clip::trace::catalog::by_name("619.lbm_s-2676B").expect("workload"),
        8,
    );
    let base = run_mix(
        &cfg(PrefetcherKind::None, 1),
        &Scheme::plain(),
        &mix,
        &opts(),
    );
    let pf = run_mix(
        &cfg(PrefetcherKind::Berti, 1),
        &Scheme::plain(),
        &mix,
        &opts(),
    );
    assert!(
        pf.latency.l1_miss.avg() > base.latency.l1_miss.avg(),
        "prefetch traffic must inflate miss latency at 1 channel: {} vs {}",
        pf.latency.l1_miss.avg(),
        base.latency.l1_miss.avg()
    );
}

/// Figure 4 vs 13: CLIP's critical-IP prediction accuracy must beat the
/// best baseline predictor on the same run.
#[test]
fn clip_prediction_beats_baselines() {
    let mix = Mix::homogeneous(
        &clip::trace::catalog::by_name("605.mcf_s-472B").expect("workload"),
        8,
    );
    let scheme = Scheme {
        clip: Some(clip::core_mechanism::ClipConfig::default()),
        evaluate_baselines: true,
        ..Scheme::plain()
    };
    let r = run_mix(&cfg(PrefetcherKind::Berti, 1), &scheme, &mix, &opts());
    let clip_eval = r.clip.expect("clip report").ip_eval;
    // A baseline can buy perfect precision with near-zero coverage (e.g.
    // ROBO flags almost nothing), so the honest claim is non-domination:
    // no baseline may beat CLIP on accuracy *and* coverage simultaneously.
    for (name, c) in &r.baseline_evals {
        let dominates = c.accuracy() > clip_eval.accuracy() + 1e-9
            && c.coverage() > clip_eval.coverage() + 1e-9;
        assert!(
            !dominates,
            "{name} ({:.2}/{:.2}) dominates CLIP ({:.2}/{:.2})",
            c.accuracy(),
            c.coverage(),
            clip_eval.accuracy(),
            clip_eval.coverage()
        );
    }
    assert!(
        clip_eval.accuracy() > 0.8,
        "CLIP accuracy must be high: {:.2}",
        clip_eval.accuracy()
    );
}

/// The baselines' known pathology: an over-tagging predictor (FVP/CATCH)
/// has high coverage and poor accuracy relative to CLIP.
#[test]
fn overpredictors_cover_but_miss_accuracy() {
    let mix = Mix::homogeneous(
        &clip::trace::catalog::by_name("620.omnetpp_s-141B").expect("workload"),
        8,
    );
    let scheme = Scheme {
        evaluate_baselines: true,
        ..Scheme::plain()
    };
    let r = run_mix(&cfg(PrefetcherKind::Berti, 1), &scheme, &mix, &opts());
    let fvp = r
        .baseline_evals
        .iter()
        .find(|(n, _)| *n == "FVP")
        .expect("FVP evaluated")
        .1;
    assert!(
        fvp.coverage() > 0.8,
        "FVP over-tags → high coverage: {}",
        fvp.coverage()
    );
}
