//! Cross-crate integration tests: drive full simulations through the
//! facade crate and check conservation and consistency invariants that
//! span the core model, caches, NoC, DRAM, prefetchers, and CLIP.

use clip::sim::{run_mix, NocChoice, RunOptions, Scheme};
use clip::trace::Mix;
use clip::types::{PrefetcherKind, SimConfig};

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 300,
        sim_instrs: 2_000,
        seed: 11,
        noc: NocChoice::Mesh,
        ..RunOptions::default()
    }
}

fn cfg(pf: PrefetcherKind, channels: usize) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(channels)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn mix(name: &str) -> Mix {
    Mix::homogeneous(
        &clip::trace::catalog::by_name(name).expect("workload exists"),
        4,
    )
}

#[test]
fn miss_counts_are_hierarchical() {
    let r = run_mix(
        &cfg(PrefetcherKind::None, 2),
        &Scheme::plain(),
        &mix("605.mcf_s-994B"),
        &opts(),
    );
    // Without prefetching, deeper levels see at most the misses of the
    // level above, plus slack for transactions in flight across the
    // warmup/measurement boundary.
    let slack = 256;
    assert!(r.misses.l2_accesses <= r.misses.l1_misses + slack);
    assert!(r.misses.llc_accesses <= r.misses.l2_misses + slack);
    assert!(r.misses.l1_misses <= r.misses.l1_accesses);
}

#[test]
fn dram_traffic_only_from_llc_misses_plus_writebacks() {
    let r = run_mix(
        &cfg(PrefetcherKind::None, 2),
        &Scheme::plain(),
        &mix("619.lbm_s-2676B"),
        &opts(),
    );
    // Reads serviced by DRAM cannot exceed LLC misses by much (in-flight
    // slack at the boundary), and there must be traffic for lbm.
    assert!(r.dram_transfers > 0);
    assert!(r.misses.llc_misses > 0);
}

#[test]
fn clip_report_consistency() {
    let r = run_mix(
        &cfg(PrefetcherKind::Berti, 1),
        &Scheme::with_clip(),
        &mix("605.mcf_s-1554B"),
        &opts(),
    );
    let c = r.clip.expect("clip report");
    let s = c.stats;
    assert_eq!(
        s.candidates,
        s.allowed_critical
            + s.allowed_explore
            + s.dropped_not_critical
            + s.dropped_predicted
            + s.dropped_low_accuracy
            + s.dropped_phase,
        "every candidate must be accounted for"
    );
    // The issued prefetch count can be at most the allowed count.
    assert!(r.prefetch.issued <= s.allowed_critical + s.allowed_explore);
    assert!(c.dynamic_ips <= c.critical_ips + 1e-9);
}

#[test]
fn prefetch_usefulness_bounded_by_fills() {
    let r = run_mix(
        &cfg(PrefetcherKind::Berti, 4),
        &Scheme::plain(),
        &mix("603.bwaves_s-891B"),
        &opts(),
    );
    assert!(
        r.prefetch.useful + r.prefetch.useless <= r.prefetch.issued + 64,
        "resolved prefetches cannot exceed issued (+warmup slack): {:?}",
        r.prefetch
    );
}

#[test]
fn ipc_within_machine_width() {
    for name in ["619.lbm_s-2677B", "623.xalancbmk_s-10B"] {
        let r = run_mix(
            &cfg(PrefetcherKind::Berti, 2),
            &Scheme::plain(),
            &mix(name),
            &opts(),
        );
        for &ipc in &r.per_core_ipc {
            assert!(ipc > 0.0 && ipc <= 4.0, "{name}: ipc {ipc} out of range");
        }
    }
}

#[test]
fn energy_counts_track_activity() {
    let r = run_mix(
        &cfg(PrefetcherKind::None, 2),
        &Scheme::plain(),
        &mix("654.roms_s-523B"),
        &opts(),
    );
    assert!(r.energy.l1_reads > 0);
    assert!(r.energy.dram_row_hits + r.energy.dram_row_misses == r.dram_transfers);
    assert!(r.energy.noc_flit_hops > 0);
}

#[test]
fn hetero_mix_runs_end_to_end() {
    let mixes = clip::trace::heterogeneous_mixes(1, 4, 5);
    let r = run_mix(
        &cfg(PrefetcherKind::Berti, 2),
        &Scheme::plain(),
        &mixes[0],
        &opts(),
    );
    assert_eq!(r.per_core_ipc.len(), 4);
    assert!(r.mean_ipc() > 0.0);
}

#[test]
fn l2_attached_clip_gates_spp() {
    let cfg = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l2_prefetcher(PrefetcherKind::SppPpf)
        .build()
        .expect("valid config");
    let plain = run_mix(&cfg, &Scheme::plain(), &mix("603.bwaves_s-1740B"), &opts());
    let clipd = run_mix(
        &cfg,
        &Scheme::with_clip(),
        &mix("603.bwaves_s-1740B"),
        &opts(),
    );
    assert!(
        clipd.prefetch.issued <= plain.prefetch.issued,
        "CLIP at the L2 must not increase traffic: {} vs {}",
        clipd.prefetch.issued,
        plain.prefetch.issued
    );
}

#[test]
fn storage_report_matches_paper_budget() {
    let clip = clip::core_mechanism::Clip::new(clip::core_mechanism::ClipConfig::default());
    let kb = clip.storage_report().total_kib();
    assert!((1.4..=1.7).contains(&kb), "Table 2 budget: got {kb:.3} KB");
}
