#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the JSON artifacts under target/experiments.

Usage:
    cargo run --release -p clip-bench --bin all_figures > /dev/null
    cargo run --release -p clip-bench --bin summary > /dev/null   # optional
    python3 scripts/make_experiments.py [--strict] [artifact_dir] > EXPERIMENTS.md

Failed cells survive rendering: the executor writes `ERR` cells into
`rows` and a structured `errors` array into the artifact (absent on
clean runs). Those records are rendered as a per-experiment
**Failures** footnote block. With `--strict`, any failure anywhere in
the sweep makes this script exit nonzero after writing the document —
CI can regenerate EXPERIMENTS.md and still fail the build.

`all_figures` writes one JSON artifact per experiment plus `index.json`
(the bin -> artifacts map) under `target/experiments/` (override with
`CLIP_ARTIFACT_DIR`). This script renders each artifact back into the
table text the binaries print and pairs it with the paper's reported
numbers so paper-vs-measured is visible side by side.

Each artifact is an object:
    name        experiment name (artifact file stem)
    title       table title line
    params      {warmup_instrs, sim_instrs, seed, noc, normalization}
    columns     header cells ([] = no header line)
    rows        table rows, each a list of already-formatted cell strings
    notes       free-form trailing lines
"""

import json
import os
import sys

# What the paper reports for each artifact (shape targets, not absolute
# numbers — see DESIGN.md §3 item 4 on scale).
PAPER_NOTES = {
    "table3": "Table 3 parameters, reproduced verbatim by the configuration defaults.",
    "table2": "Paper: 1.56 KB/core (336 B filter + 640 B predictor + 64 B ROB "
              "extension + 512 B utility buffer + histories/APC).",
    "fig01": "Paper (64 cores, homogeneous): every prefetcher loses at 4-8 channels "
             "(Berti 0.76/0.84), recovers by 16-32, and wins big at 64 (Berti ~1.35). "
             "Expected shape here: WS < 1 at the 4-8-channel equivalents, rising "
             "monotonically, > 1 at the 64-channel equivalent.",
    "fig02": "Paper (heterogeneous): same crossover, shallower (slowdowns ~0.85-0.95 "
             "at 4-8 channels; gains up to ~1.2 at 64).",
    "fig03": "Paper: average L2/L3 demand miss latencies inflate by >1.9x at 4-8 "
             "channels with Berti, approaching 1.0 at 64. Expected shape: the "
             "DRAM-serviced ratio well above 1 at small channel counts, "
             "decreasing with bandwidth. Known deviation: this model's L2/LLC "
             "hit paths have fixed latencies (no port contention), so their "
             "columns stay at 1.0 (or '-' when a level serviced no sampled "
             "demand); the queueing inflation the paper measures on-chip shows "
             "up here in the DRAM-serviced and all-miss columns.",
    "fig04": "Paper: best baseline accuracy ~41%; CATCH/FVP reach ~100% coverage "
             "with poor accuracy. Expected shape: over-taggers (FVP/CATCH/FP) have "
             "coverage >> accuracy; CRISP/ROBO/CBP trade coverage for accuracy.",
    "fig05": "Paper: no baseline criticality gate rescues Berti at 4-16 channels "
             "(all within a few percent of plain Berti, some worse).",
    "fig06": "Paper: throttlers improve Berti marginally at best; large slowdowns "
             "remain at 4-8 channels.",
    "fig09": "Paper (8 channels): CLIP lifts every prefetcher; Berti +24% "
             "(homogeneous) / +9% (heterogeneous). Expected shape: +CLIP column "
             "above plain for each prefetcher, biggest deltas for Berti/IPCP.",
    "fig10": "Paper: Berti slows >26 of 45 mixes; with CLIP only 3 mixes stay "
             "below 1.0 and the mean moves from 0.84 to 1.08.",
    "fig11": "Paper: mean L1 miss latency drops from 168 to 132 cycles with CLIP "
             "(max >900-cycle improvements on lbm mixes).",
    "fig12": "Paper: CLIP costs ~7% L1 miss coverage and 2-3% at L2/LLC.",
    "fig13": "Paper: CLIP critical-IP prediction accuracy 93% average (up to "
             "100%); best prior predictor 41%.",
    "fig14": "Paper: CLIP coverage averages 76%.",
    "fig15": "Paper: tens of critical IPs per mix; ~50% dynamic-critical.",
    "fig16": "Paper: ~50% average prefetch-traffic reduction (up to 90% for "
             "cactuBSSN); Berti accuracy 82.9% -> 94.2%. Known deviation in "
             "this model: the traffic cut is stronger (~0.2x) and measured "
             "accuracy does not rise, because the synthetic Berti is already "
             ">93% accurate, leaving little inaccuracy for CLIP to filter.",
    "fig17": "Paper: CloudSuite/CVP gain <10% from prefetching even at 64 "
             "channels; CLIP's deltas are correspondingly small.",
    "fig18": "Paper: 2x/4x tables gain little; 0.5x/0.25x lose >7%. Known "
             "deviation at small scale: with only a few critical IPs per core "
             "in a short window, even the 0.25x tables do not overflow, so "
             "the sweep is nearly flat; the paper's drop needs the full IP "
             "populations of 200M-instruction simpoints.",
    "fig19": "Paper: CLIP's gains concentrate at 4-8 channels and fade at 16.",
    "fig20": "Paper: same trend on heterogeneous mixes, shallower.",
    "fig21": "Paper: CLIP > Hermes > DSPatch at 4-8 channels; Hermes wins at 16. "
             "DSPatch hurts under constrained bandwidth (coverage mode).",
    "energy": "Paper: CLIP improves memory-hierarchy dynamic energy by 18.21% "
              "over Berti (homogeneous; <7% heterogeneous), including CLIP's own "
              "structures. Known deviation in this model: the saving does not "
              "materialise because the synthetic Berti wastes only ~7% of its "
              "traffic (vs 17% in the paper), and dropped prefetches re-issue "
              "as demand misses for the same lines — there is little wasted "
              "DRAM energy for CLIP to reclaim at this accuracy level. The "
              "static-energy saving from the runtime improvement (see "
              "clip_stats::StaticPower) still applies.",
    "sens_cores": "Paper: CLIP stays effective across 8-128 cores whenever there "
                  "is less than one channel per 2-4 cores.",
    "sens_llc": "Paper: Berti's slowdown worsens to 29% at 512 KB/core and eases "
                "to 9% at 4 MB/core; CLIP keeps prefetching profitable at every "
                "capacity. Known deviation at small scale: short measurement "
                "windows are cold-miss dominated, so LLC capacity barely moves "
                "the result; the capacity lever itself is exercised by the "
                "`llc_capacity_reduces_dram_traffic` integration test with a "
                "tailored working set.",
    "ablation": "Paper attribution: 77.5% of CLIP's benefit from criticality "
                "filtering+prediction, the rest from accuracy filtering; the "
                "criticality-conscious NoC/DRAM flag is worth 2.8 points of 24.",
    "dynclip": "Paper §5.3 (future work, implemented here): DynCLIP should match "
               "CLIP under constrained bandwidth and recover the plain "
               "prefetcher's upside when bandwidth is ample.",
    "backends": "Extension (no paper counterpart): the paper's thesis — "
                "criticality filtering wins exactly where bandwidth is the "
                "constraint — replayed across pluggable fabric and memory "
                "backends ({mesh, chiplet} NoC x {DDR4, HBM} DRAM; see "
                "DESIGN.md §5d). Expected shape: CLIP's edge over plain Berti "
                "and over FDP throttling is largest on the chiplet fabric, "
                "whose narrow die-to-die crossing throttles effective "
                "bandwidth, and smallest where HBM's wider channel structure "
                "relieves queueing. The DDR4 and HBM presets expose equal "
                "aggregate peak bandwidth, so rows compare channel structure, "
                "not peak.",
    "composite": "Extension (no paper counterpart; DESIGN.md §3d): a composite "
                 "ensemble (Berti + SPP-PPF + next-line under one shared degree "
                 "budget) against the best single engine, with and without "
                 "CLIP. Under CLIP the utility buffer tracks accuracy per "
                 "engine and the filter demotes whichever member goes "
                 "inaccurate, so the +CLIP columns measure arbitration "
                 "*between* prefetch sources rather than gating of one "
                 "stream. The trailing `engines@...` notes carry the "
                 "Composite+CLIP cell's per-engine issued/hits/min_level "
                 "counters summed over mixes.",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by
`cargo run --release -p clip-bench --bin all_figures` (per-figure binaries
exist too; see DESIGN.md §4 for the experiment index). Each experiment
also writes a JSON artifact under `target/experiments/`; this file is
assembled from those artifacts by `scripts/make_experiments.py`.

**Scale.** The paper simulates 64 cores x 200M instructions on proprietary
simpoint traces; this run uses the scaled configuration printed in each
section header (channels are translated to keep the paper's
channels-per-core ratio — e.g. "8 paper channels" = 2 channels for 16
cores). Absolute numbers therefore differ; the reproduction target is the
*shape*: who wins, by roughly what factor, and where the crossovers fall
(see DESIGN.md §3).

**Workloads.** Synthetic models of the paper's SPEC CPU2017 / GAP /
CloudSuite / CVP traces (DESIGN.md §3 item 1).

**Artifact schema.** Each experiment writes
`target/experiments/<name>.json` (`CLIP_ARTIFACT_DIR` overrides the
directory): an object with `name` (experiment id, = file stem), `title`
(the table's `#` header line), `params` (`warmup_instrs`, `sim_instrs`,
`seed` as integers; `noc` and `normalization` as strings), `columns`
(header cells; empty for tables without a header row), `rows` (the
rendered table — a list of rows, each a list of already-formatted cell
strings, tab-joined in the text output), and `notes` (free-form
trailing lines). `all_figures` also writes `index.json`: the sweep
order as a list of `{"bin", "artifacts"}` objects, where multi-set
figures (e.g. fig05) list one artifact per set. Values are normalized
weighted speedups unless the title says otherwise; every run is
deterministic, so artifacts diff cleanly (CI pins fig02 at smoke scale
against `crates/bench/tests/golden/fig02.json`, the `backends`
figure's two artifacts against `backends_mesh.json` /
`backends_chiplet.json`, and the `composite` figure against
`composite.json`).

**Backend knobs.** `CLIP_NOC` selects the fabric model (`mesh`,
`analytic` — the sweep default — or `chiplet`) and `CLIP_DRAM` the
memory backend (`ddr4`, default, or `hbm`); see DESIGN.md §5d. The
`backends` figure ignores both and sweeps its own fabric x memory
grid.

---
"""


def render(artifact: dict) -> str:
    """Renders an artifact back into the text its binary prints."""
    lines = [artifact["title"]]
    if artifact.get("columns"):
        lines.append("\t".join(artifact["columns"]))
    for row in artifact.get("rows", []):
        lines.append("\t".join(row))
    lines.extend(artifact.get("notes", []))
    return "\n".join(lines)


def error_lines(artifact: dict) -> list:
    """One bullet per structured error record in the artifact."""
    out = []
    for e in artifact.get("errors", []):
        where = f"row {e['row']} cell {e['cell']} mix {e['mix']}"
        if e.get("baseline"):
            where += " (baseline)"
        out.append(
            f"- {where}: {e.get('kind', '?')} in `{e.get('component', '?')}` "
            f"at cycle {e.get('cycle', '?')}: {e.get('detail', '')}"
        )
    return out


def load(directory: str, name: str) -> dict:
    with open(os.path.join(directory, f"{name}.json"), encoding="utf-8") as fh:
        return json.load(fh)


def main() -> None:
    argv = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    directory = argv[0] if argv else os.environ.get(
        "CLIP_ARTIFACT_DIR", "target/experiments"
    )
    with open(os.path.join(directory, "index.json"), encoding="utf-8") as fh:
        index = json.load(fh)

    print(HEADER)

    failures = 0

    # The summary harness's artifact, if it was run, leads the document.
    if os.path.exists(os.path.join(directory, "summary.json")):
        summary = load(directory, "summary")
        print("## Headline summary\n")
        print("```text")
        print(render(summary).rstrip())
        print("```\n")
        footnotes = error_lines(summary)
        if footnotes:
            failures += len(footnotes)
            print(f"**Failures:** {len(footnotes)} simulation(s) failed; "
                  "the affected cells render as `ERR`.\n")
            print("\n".join(footnotes) + "\n")

    for entry in index:
        name = entry["bin"]
        artifacts = [load(directory, a) for a in entry["artifacts"]]
        body = "\n\n".join(render(a).rstrip() for a in artifacts)
        print(f"## {name}\n")
        note = PAPER_NOTES.get(name)
        if note:
            if note.startswith("Paper: "):
                note = note[len("Paper: "):]
            print(f"**Paper:** {note}\n")
        print("**Measured:**\n")
        print("```text")
        print(body)
        print("```\n")
        footnotes = [line for a in artifacts for line in error_lines(a)]
        if footnotes:
            failures += len(footnotes)
            print(f"**Failures:** {len(footnotes)} simulation(s) failed; "
                  "the affected cells render as `ERR`.\n")
            print("\n".join(footnotes) + "\n")

    if failures:
        print(f"make_experiments: {failures} failed simulation(s) in the sweep",
              file=sys.stderr)
        if strict:
            sys.exit(1)


if __name__ == "__main__":
    main()
