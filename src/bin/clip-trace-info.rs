//! `clip-trace-info` — inspect the synthetic workload catalog: generate a
//! window of any workload and print its measured statistics next to the
//! published characteristics the model targets.
//!
//! ```text
//! clip-trace-info 605.mcf_s-1554B
//! clip-trace-info --all                          # whole-catalog summary
//! clip-trace-info --record 619.lbm_s-4268B out.trace 20000
//! clip-trace-info --analyse out.trace            # stats of a recorded file
//! ```

use clip::trace::{catalog, TraceStats};
use std::process::ExitCode;

const WINDOW: usize = 40_000;
/// L1D lines for the MPKI estimate (Table 3's 48 KB / 64 B).
const L1_LINES: usize = 768;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            eprintln!(
                "usage: clip-trace-info <workload-name> | --all | \
                 --record <name> <path> [instrs] | --analyse <path>"
            );
            ExitCode::FAILURE
        }
        Some("--record") => {
            let (Some(name), Some(path)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: clip-trace-info --record <name> <path> [instrs]");
                return ExitCode::FAILURE;
            };
            let n: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(WINDOW);
            let Some(w) = catalog::by_name(name) else {
                eprintln!("unknown workload: {name}");
                return ExitCode::FAILURE;
            };
            let instrs = w.generator(1).record(n);
            match clip::trace::record::save(std::path::Path::new(path), name, 1, &instrs) {
                Ok(()) => {
                    println!("recorded {n} instructions of {name} to {path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("write failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--analyse") | Some("--analyze") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: clip-trace-info --analyse <path>");
                return ExitCode::FAILURE;
            };
            match clip::trace::record::load(std::path::Path::new(path)) {
                Ok(file) => {
                    println!("trace        : {} (seed {})", file.name, file.seed);
                    println!("{}", TraceStats::analyse(&file.instrs, L1_LINES));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("read failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--all") => {
            println!(
                "{:<28} {:>6} {:>7} {:>8} {:>8} {:>7}",
                "workload", "MPKI", "loads%", "IPs", "MiB", "chase%"
            );
            for w in catalog::all() {
                let stats = TraceStats::analyse(&w.generator(1).record(WINDOW), L1_LINES);
                println!(
                    "{:<28} {:>6.1} {:>6.1}% {:>8} {:>8.1} {:>6.1}%",
                    w.name,
                    stats.est_mpki,
                    stats.load_frac * 100.0,
                    stats.load_ips,
                    stats.footprint_bytes() as f64 / (1024.0 * 1024.0),
                    stats.serialized_frac * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        Some(name) => match catalog::by_name(name) {
            Some(w) => {
                println!("workload     : {} [{}]", w.name, w.suite.name());
                println!(
                    "model        : footprint {} lines, {} load IPs, {} branch IPs, predictability {:.2}",
                    w.footprint_lines, w.load_ips, w.branch_ips, w.branch_predictability
                );
                let stats = TraceStats::analyse(&w.generator(1).record(WINDOW), L1_LINES);
                println!("--- measured over {WINDOW} instructions ---");
                println!("{stats}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown workload: {name} (try --all)");
                ExitCode::FAILURE
            }
        },
    }
}
