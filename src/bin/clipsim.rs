//! `clipsim` — command-line driver for the CLIP many-core simulator.
//!
//! ```text
//! clipsim --workload 605.mcf_s-1554B --cores 8 --channels 1 \
//!         --prefetcher berti --clip --instrs 10000
//! clipsim --hetero-seed 7 --cores 16 --channels 2 --prefetcher spp-ppf
//! clipsim --list-workloads
//! clipsim --connect 127.0.0.1:4117 --workload 605.mcf_s-1554B --clip
//! clipsim --connect 127.0.0.1:4117 --figure fig02
//! ```
//!
//! Runs the requested mix under the requested scheme *and* the
//! no-prefetch baseline, then prints a comparison report. With
//! `--connect`, the same request is executed by a `clipd` daemon
//! (shared cache, admission control — see `clip::bench::server`) and
//! the output is byte-identical to a local run.

use clip::bench::client::{self, ClientError};
use clip::bench::experiment::write_artifact;
use clip::bench::proto::{self, RunSpec};
use clip::sim::{run_mix_checked, ComparisonReport, Scheme, SimResult};
use clip::stats::Json;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Args {
    spec: RunSpec,
    list: bool,
    /// Execute on a `clipd` daemon at this address instead of locally.
    connect: Option<String>,
    /// Ask the daemon for a whole registered figure.
    figure: Option<String>,
    /// Ask the daemon for its health/stats frame.
    health: bool,
    /// Ask the daemon to drain and stop.
    shutdown: bool,
}

const USAGE: &str = "\
clipsim — CLIP many-core simulator

USAGE:
  clipsim [OPTIONS]

OPTIONS:
  --workload <NAME>      homogeneous mix of the named trace (see --list-workloads)
  --hetero-seed <N>      random heterogeneous mix instead of a named workload
  --cores <N>            cores in the system              [default: 8]
  --channels <N>         DRAM channels (power of 2)       [default: 1]
  --prefetcher <KIND>    none|berti|ipcp|bingo|spp-ppf|ip-stride|stream|next-line|composite
                                                          [default: berti, or CLIP_PF]
  --clip                 attach CLIP to the prefetcher
  --dynclip              attach Dynamic CLIP (bandwidth-governed)
  --throttler <KIND>     fdp|hpac|spac|nst
  --hermes               attach Hermes off-chip prediction
  --dspatch              attach DSPatch modulation
  --instrs <N>           measured instructions per core   [default: 10000]
  --warmup <N>           warmup instructions per core     [default: 2000]
  --seed <N>             workload seed                    [default: 42]
  --noc <MODEL>          mesh|analytic|chiplet            [default: mesh]
  --dram <BACKEND>       ddr4|hbm                         [default: ddr4]
  --deadline-ms <N>      wall-clock budget per run in milliseconds
                         (default: CLIP_JOB_DEADLINE_MS, else unlimited)
  --list-workloads       print the workload catalog and exit

DAEMON MODE (see `clipd --help`):
  --connect <ADDR>       execute on the clipd daemon at HOST:PORT
  --figure <NAME>        with --connect: run a registered figure binary
                         (text printed, artifacts written locally)
  --health               with --connect: print the daemon's health frame
  --shutdown             with --connect: ask the daemon to drain and stop
                         (CLIP_CLIENT_TIMEOUT_MS bounds each attempt;
                         `overloaded` rejections retry with backoff)
  --help                 this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let spec = &mut args.spec;
        match flag.as_str() {
            "--workload" => spec.workload = Some(value("--workload")?),
            "--hetero-seed" => {
                spec.hetero_seed = Some(
                    value("--hetero-seed")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--cores" => spec.cores = value("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--channels" => {
                spec.channels = value("--channels")?.parse().map_err(|e| format!("{e}"))?
            }
            "--prefetcher" => spec.prefetcher = proto::prefetcher_from(&value("--prefetcher")?)?,
            "--clip" => spec.clip = true,
            "--dynclip" => spec.dynclip = true,
            "--throttler" => spec.throttler = Some(proto::throttler_from(&value("--throttler")?)?),
            "--hermes" => spec.hermes = true,
            "--dspatch" => spec.dspatch = true,
            "--instrs" => spec.instrs = value("--instrs")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => spec.warmup = value("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => spec.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--noc" => spec.noc = proto::noc_from(&value("--noc")?)?,
            "--dram" => spec.dram = proto::dram_from(&value("--dram")?)?,
            "--deadline-ms" => {
                spec.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--list-workloads" => args.list = true,
            "--connect" => args.connect = Some(value("--connect")?),
            "--figure" => args.figure = Some(value("--figure")?),
            "--health" => args.health = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.connect.is_none() && (args.figure.is_some() || args.health || args.shutdown) {
        return Err("--figure/--health/--shutdown need --connect".to_string());
    }
    Ok(args)
}

/// Prints the run report exactly as the local path always has, from
/// wherever the two results came from.
fn print_report(spec: &RunSpec, mix_name: &str, res: &SimResult, base: &SimResult) {
    println!("mix                 : {} x {}", spec.cores, mix_name);
    println!(
        "{}",
        ComparisonReport::new(spec.scheme().label(spec.prefetcher), res, base)
    );
}

fn run_local(spec: &RunSpec) -> ExitCode {
    let mix = match spec.mix() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (cfg_base, cfg) = match spec.configs() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = spec.options();
    let scheme = spec.scheme();

    eprintln!(
        "running {} on {} cores / {} channel(s), {} + baseline ...",
        mix.name,
        spec.cores,
        spec.channels,
        scheme.label(spec.prefetcher)
    );
    let run = |cfg, scheme: &Scheme| match run_mix_checked(cfg, scheme, &mix, &opts) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    };
    let Some(base) = run(&cfg_base, &Scheme::plain()) else {
        return ExitCode::FAILURE;
    };
    let Some(res) = run(&cfg, &scheme) else {
        return ExitCode::FAILURE;
    };

    print_report(spec, &mix.name, &res, &base);
    ExitCode::SUCCESS
}

fn run_remote(addr: &str, spec: &RunSpec) -> ExitCode {
    // The mix derivation is deterministic and shared with the daemon
    // (same spec, same mix), so the report line needs no wire traffic.
    let mix_name = match spec.mix() {
        Ok(m) => m.name,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "requesting {} on {} cores / {} channel(s), {} + baseline from {addr} ...",
        mix_name,
        spec.cores,
        spec.channels,
        spec.scheme().label(spec.prefetcher)
    );
    let mut cells: Vec<SimResult> = Vec::new();
    let outcome = client::request(addr, &spec.to_json(), |frame| {
        if frame.get("kind").and_then(Json::as_str) == Some("cell") {
            if let Some(r) = frame.get("result").and_then(SimResult::from_json) {
                cells.push(r);
            }
        }
    });
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    // The daemon streams the baseline cell first, then the scheme cell.
    let (Some(res), Some(base)) = (cells.pop(), cells.pop()) else {
        eprintln!("error: daemon response was missing cells");
        return ExitCode::FAILURE;
    };
    print_report(spec, &mix_name, &res, &base);
    ExitCode::SUCCESS
}

fn run_figure(addr: &str, name: &str) -> ExitCode {
    eprintln!("requesting figure {name} from {addr} ...");
    let outcome = client::request(addr, &proto::figure_request(name), |frame| {
        if frame.get("kind").and_then(Json::as_str) != Some("experiment") {
            return;
        }
        if let Some(text) = frame.get("text").and_then(Json::as_str) {
            print!("{text}");
        }
        // The artifact lands in the *client's* artifact directory,
        // byte-identical to a local figure run.
        if let (Some(exp), Some(artifact)) = (
            frame.get("name").and_then(Json::as_str),
            frame.get("artifact"),
        ) {
            write_artifact(exp, artifact);
        }
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_health(addr: &str) -> ExitCode {
    let outcome = client::request(addr, &proto::health_request(), |frame| {
        println!("{}", frame.render());
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_shutdown(addr: &str) -> ExitCode {
    match client::request(addr, &proto::shutdown_request(), |_| {}) {
        Ok(()) => {
            eprintln!("daemon at {addr} acknowledged shutdown");
            ExitCode::SUCCESS
        }
        // A daemon that drains *very* fast can close before the ack
        // frame is read; the shutdown still happened.
        Err(ClientError::Protocol(_)) => {
            eprintln!("daemon at {addr} closed while draining");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for w in clip::trace::catalog::all() {
            println!(
                "{:<28} {:>10} lines  [{}]",
                w.name,
                w.footprint_lines,
                w.suite.name()
            );
        }
        return ExitCode::SUCCESS;
    }

    match &args.connect {
        None => run_local(&args.spec),
        Some(addr) if args.health => run_health(addr),
        Some(addr) if args.shutdown => run_shutdown(addr),
        Some(addr) => match &args.figure {
            Some(name) => run_figure(addr, name),
            None => run_remote(addr, &args.spec),
        },
    }
}
