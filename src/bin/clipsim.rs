//! `clipsim` — command-line driver for the CLIP many-core simulator.
//!
//! ```text
//! clipsim --workload 605.mcf_s-1554B --cores 8 --channels 1 \
//!         --prefetcher berti --clip --instrs 10000
//! clipsim --hetero-seed 7 --cores 16 --channels 2 --prefetcher spp-ppf
//! clipsim --list-workloads
//! ```
//!
//! Runs the requested mix under the requested scheme *and* the
//! no-prefetch baseline, then prints a comparison report.

use clip::sim::{run_mix_checked, NocChoice, RunOptions, Scheme};
use clip::trace::Mix;
use clip::types::{DramKind, PrefetcherKind, SimConfig};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    workload: Option<String>,
    hetero_seed: Option<u64>,
    cores: usize,
    channels: usize,
    prefetcher: PrefetcherKind,
    clip: bool,
    dynclip: bool,
    throttler: Option<clip::throttle::ThrottlerKind>,
    hermes: bool,
    dspatch: bool,
    instrs: u64,
    warmup: u64,
    seed: u64,
    noc: NocChoice,
    dram: DramKind,
    deadline_ms: Option<u64>,
    list: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: None,
            hetero_seed: None,
            cores: 8,
            channels: 1,
            prefetcher: PrefetcherKind::Berti,
            clip: false,
            dynclip: false,
            throttler: None,
            hermes: false,
            dspatch: false,
            instrs: 10_000,
            warmup: 2_000,
            seed: 42,
            noc: NocChoice::Mesh,
            dram: DramKind::Ddr4,
            deadline_ms: None,
            list: false,
        }
    }
}

const USAGE: &str = "\
clipsim — CLIP many-core simulator

USAGE:
  clipsim [OPTIONS]

OPTIONS:
  --workload <NAME>      homogeneous mix of the named trace (see --list-workloads)
  --hetero-seed <N>      random heterogeneous mix instead of a named workload
  --cores <N>            cores in the system              [default: 8]
  --channels <N>         DRAM channels (power of 2)       [default: 1]
  --prefetcher <KIND>    none|berti|ipcp|bingo|spp-ppf|ip-stride|stream|next-line
                                                          [default: berti]
  --clip                 attach CLIP to the prefetcher
  --dynclip              attach Dynamic CLIP (bandwidth-governed)
  --throttler <KIND>     fdp|hpac|spac|nst
  --hermes               attach Hermes off-chip prediction
  --dspatch              attach DSPatch modulation
  --instrs <N>           measured instructions per core   [default: 10000]
  --warmup <N>           warmup instructions per core     [default: 2000]
  --seed <N>             workload seed                    [default: 42]
  --noc <MODEL>          mesh|analytic|chiplet            [default: mesh]
  --dram <BACKEND>       ddr4|hbm                         [default: ddr4]
  --deadline-ms <N>      wall-clock budget per run in milliseconds
                         (default: CLIP_JOB_DEADLINE_MS, else unlimited)
  --list-workloads       print the workload catalog and exit
  --help                 this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--hetero-seed" => {
                args.hetero_seed = Some(
                    value("--hetero-seed")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--cores" => args.cores = value("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--channels" => {
                args.channels = value("--channels")?.parse().map_err(|e| format!("{e}"))?
            }
            "--prefetcher" => {
                args.prefetcher = match value("--prefetcher")?.as_str() {
                    "none" => PrefetcherKind::None,
                    "berti" => PrefetcherKind::Berti,
                    "ipcp" => PrefetcherKind::Ipcp,
                    "bingo" => PrefetcherKind::Bingo,
                    "spp-ppf" | "spp" => PrefetcherKind::SppPpf,
                    "ip-stride" => PrefetcherKind::IpStride,
                    "stream" => PrefetcherKind::Stream,
                    "next-line" => PrefetcherKind::NextLine,
                    other => return Err(format!("unknown prefetcher: {other}")),
                }
            }
            "--clip" => args.clip = true,
            "--dynclip" => args.dynclip = true,
            "--throttler" => {
                args.throttler = Some(match value("--throttler")?.as_str() {
                    "fdp" => clip::throttle::ThrottlerKind::Fdp,
                    "hpac" => clip::throttle::ThrottlerKind::Hpac,
                    "spac" => clip::throttle::ThrottlerKind::Spac,
                    "nst" => clip::throttle::ThrottlerKind::Nst,
                    other => return Err(format!("unknown throttler: {other}")),
                })
            }
            "--hermes" => args.hermes = true,
            "--dspatch" => args.dspatch = true,
            "--instrs" => args.instrs = value("--instrs")?.parse().map_err(|e| format!("{e}"))?,
            "--warmup" => args.warmup = value("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--noc" => {
                args.noc = match value("--noc")?.as_str() {
                    "mesh" => NocChoice::Mesh,
                    "analytic" => NocChoice::Analytic,
                    "chiplet" => NocChoice::Chiplet,
                    other => return Err(format!("unknown noc model: {other}")),
                }
            }
            "--dram" => {
                args.dram = match value("--dram")?.as_str() {
                    "ddr4" => DramKind::Ddr4,
                    "hbm" => DramKind::Hbm,
                    other => return Err(format!("unknown dram backend: {other}")),
                }
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--list-workloads" => args.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn build_scheme(args: &Args) -> Scheme {
    let mut scheme = if args.dynclip {
        Scheme::with_dynamic_clip()
    } else if args.clip {
        Scheme::with_clip()
    } else {
        Scheme::plain()
    };
    scheme.throttler = args.throttler;
    scheme.hermes = args.hermes;
    scheme.dspatch = args.dspatch;
    scheme
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for w in clip::trace::catalog::all() {
            println!(
                "{:<28} {:>10} lines  [{}]",
                w.name,
                w.footprint_lines,
                w.suite.name()
            );
        }
        return ExitCode::SUCCESS;
    }

    let mix = if let Some(seed) = args.hetero_seed {
        clip::trace::heterogeneous_mixes(1, args.cores, seed)
            .pop()
            .expect("one mix requested")
    } else {
        let name = args
            .workload
            .clone()
            .unwrap_or_else(|| "605.mcf_s-1554B".to_string());
        match clip::trace::catalog::by_name(&name) {
            Some(w) => Mix::homogeneous(&w, args.cores),
            None => {
                eprintln!("error: unknown workload {name} (try --list-workloads)");
                return ExitCode::FAILURE;
            }
        }
    };

    let platform = |pf: PrefetcherKind| {
        let (l1, l2) = if pf.trains_at_l1() || pf == PrefetcherKind::None {
            (pf, PrefetcherKind::None)
        } else {
            (PrefetcherKind::None, pf)
        };
        SimConfig::builder()
            .cores(args.cores)
            .dram_backend(args.dram)
            .dram_channels(args.channels)
            .l1_prefetcher(l1)
            .l2_prefetcher(l2)
            .build()
    };
    let cfg_base = match platform(PrefetcherKind::None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = platform(args.prefetcher).expect("same platform with prefetcher");

    let opts = RunOptions {
        warmup_instrs: args.warmup,
        sim_instrs: args.instrs,
        seed: args.seed,
        noc: args.noc,
        deadline: args.deadline_ms.map(std::time::Duration::from_millis),
        ..RunOptions::default()
    };
    let scheme = build_scheme(&args);

    eprintln!(
        "running {} on {} cores / {} channel(s), {} + baseline ...",
        mix.name,
        args.cores,
        args.channels,
        scheme.label(args.prefetcher)
    );
    let run = |cfg, scheme: &Scheme| match run_mix_checked(cfg, scheme, &mix, &opts) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    };
    let Some(base) = run(&cfg_base, &Scheme::plain()) else {
        return ExitCode::FAILURE;
    };
    let Some(res) = run(&cfg, &scheme) else {
        return ExitCode::FAILURE;
    };

    println!("mix                 : {} x {}", args.cores, mix.name);
    println!(
        "{}",
        clip::sim::ComparisonReport::new(scheme.label(args.prefetcher), &res, &base)
    );
    ExitCode::SUCCESS
}
