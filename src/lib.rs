//! **clip** — a reproduction of *CLIP: Load Criticality based Data
//! Prefetching for Bandwidth-constrained Many-core Systems* (MICRO 2023)
//! as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — addresses, requests, and the Table 3 configuration;
//! * [`trace`] — synthetic SPEC/GAP/CloudSuite/CVP workload models;
//! * [`cpu`] — the out-of-order core model and ROB-stall ground truth;
//! * [`cache`] — set-associative caches, MSHRs, replacement policies;
//! * [`noc`] — wormhole mesh, analytic, and chiplet NoC models;
//! * [`dram`] — DDR4 and HBM channel/bank timing models with PADC;
//! * [`prefetch`] — Berti, IPCP, Bingo, SPP-PPF and simple baselines;
//! * [`crit`] — baseline criticality predictors (CATCH, FP, FVP, CBP,
//!   ROBO, CRISP) and their evaluation;
//! * [`throttle`] — FDP, HPAC, SPAC, NST;
//! * [`offchip`] — Hermes and DSPatch;
//! * [`core_mechanism`] — **CLIP itself**: the criticality filter, utility
//!   buffer, critical-signature predictor, and APC phase detector;
//! * [`stats`] — weighted speedup and the dynamic-energy model;
//! * [`sim`] — the many-core system simulator and run drivers;
//! * [`bench`] — the experiment harness, figure registry, universal
//!   result cache, and the `clipd` sweep daemon + client.
//!
//! # Quickstart
//!
//! ```
//! use clip::sim::{run_mix, RunOptions, Scheme};
//! use clip::trace::Mix;
//! use clip::types::{PrefetcherKind, SimConfig};
//!
//! // A small bandwidth-constrained system: 4 cores, 1 DDR4 channel.
//! let cfg = SimConfig::builder()
//!     .cores(4)
//!     .dram_channels(1)
//!     .l1_prefetcher(PrefetcherKind::Berti)
//!     .build()?;
//! let mix = Mix::homogeneous(
//!     &clip::trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
//!     4,
//! );
//! let opts = RunOptions { warmup_instrs: 500, sim_instrs: 2_000, ..RunOptions::default() };
//!
//! let berti = run_mix(&cfg, &Scheme::plain(), &mix, &opts);
//! let clip = run_mix(&cfg, &Scheme::with_clip(), &mix, &opts);
//! assert!(clip.prefetch.issued <= berti.prefetch.issued);
//! # Ok::<(), clip::types::config::ConfigError>(())
//! ```

pub use clip_bench as bench;
pub use clip_cache as cache;
pub use clip_core as core_mechanism;
pub use clip_cpu as cpu;
pub use clip_crit as crit;
pub use clip_dram as dram;
pub use clip_noc as noc;
pub use clip_offchip as offchip;
pub use clip_prefetch as prefetch;
pub use clip_sim as sim;
pub use clip_stats as stats;
pub use clip_throttle as throttle;
pub use clip_trace as trace;
pub use clip_types as types;
