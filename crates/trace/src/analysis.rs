//! Offline trace analysis: instruction-mix, footprint, and locality
//! statistics for recorded instruction streams — the tooling a user needs
//! to sanity-check a synthetic model against a real workload's published
//! characteristics.

use crate::{Instr, InstrKind};
use std::collections::HashSet;

/// Summary statistics of a recorded instruction stream.
///
/// # Examples
///
/// ```
/// use clip_trace::{catalog, TraceStats};
///
/// let spec = catalog::by_name("619.lbm_s-4268B").expect("known workload");
/// let window = spec.generator(1).record(10_000);
/// let stats = TraceStats::analyse(&window, 768);
/// assert!(stats.est_mpki > 50.0, "lbm streams through memory");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Instructions analysed.
    pub instructions: usize,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of conditional branches.
    pub branch_frac: f64,
    /// Taken rate among branches.
    pub taken_rate: f64,
    /// Distinct cache lines touched.
    pub unique_lines: usize,
    /// Distinct 4 KiB pages touched.
    pub unique_pages: usize,
    /// Distinct load IPs.
    pub load_ips: usize,
    /// Fraction of loads marked serialized (pointer-chase).
    pub serialized_frac: f64,
    /// Estimated misses per kilo-instruction against an idealised cache
    /// of `model_lines` lines (fully associative, LRU).
    pub est_mpki: f64,
    /// Lines used for the MPKI estimate.
    pub model_lines: usize,
}

impl TraceStats {
    /// Analyses a recorded stream against an idealised `model_lines`-line
    /// cache (use the L1D size, 768, for an L1 MPKI estimate).
    ///
    /// # Panics
    ///
    /// Panics when `model_lines` is zero.
    pub fn analyse(instrs: &[Instr], model_lines: usize) -> Self {
        assert!(model_lines > 0, "cache model needs at least one line");
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut branches = 0usize;
        let mut taken = 0usize;
        let mut serialized = 0usize;
        let mut lines = HashSet::new();
        let mut pages = HashSet::new();
        let mut ips = HashSet::new();

        // Idealised LRU cache for the MPKI estimate.
        let mut lru: Vec<u64> = Vec::with_capacity(model_lines);
        let mut misses = 0usize;
        let touch = |lru: &mut Vec<u64>, line: u64, misses: &mut usize| {
            if let Some(pos) = lru.iter().position(|&l| l == line) {
                lru.remove(pos);
            } else {
                *misses += 1;
                if lru.len() == model_lines {
                    lru.remove(0);
                }
            }
            lru.push(line);
        };

        for i in instrs {
            match i.kind {
                InstrKind::Load {
                    addr,
                    serialized: s,
                } => {
                    loads += 1;
                    serialized += s as usize;
                    let line = addr.line().raw();
                    lines.insert(line);
                    pages.insert(addr.page());
                    ips.insert(i.ip.raw());
                    touch(&mut lru, line, &mut misses);
                }
                InstrKind::Store { addr } => {
                    stores += 1;
                    lines.insert(addr.line().raw());
                    pages.insert(addr.page());
                    touch(&mut lru, addr.line().raw(), &mut misses);
                }
                InstrKind::Branch { taken: t } => {
                    branches += 1;
                    taken += t as usize;
                }
                InstrKind::Alu { .. } => {}
            }
        }

        let n = instrs.len().max(1) as f64;
        TraceStats {
            instructions: instrs.len(),
            load_frac: loads as f64 / n,
            store_frac: stores as f64 / n,
            branch_frac: branches as f64 / n,
            taken_rate: if branches == 0 {
                0.0
            } else {
                taken as f64 / branches as f64
            },
            unique_lines: lines.len(),
            unique_pages: pages.len(),
            load_ips: ips.len(),
            serialized_frac: if loads == 0 {
                0.0
            } else {
                serialized as f64 / loads as f64
            },
            est_mpki: misses as f64 * 1000.0 / n,
            model_lines,
        }
    }

    /// Working-set estimate in bytes (unique lines x line size).
    pub fn footprint_bytes(&self) -> usize {
        self.unique_lines * clip_types::LINE_BYTES
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "instructions : {}", self.instructions)?;
        writeln!(
            f,
            "mix          : {:.1}% loads / {:.1}% stores / {:.1}% branches",
            self.load_frac * 100.0,
            self.store_frac * 100.0,
            self.branch_frac * 100.0
        )?;
        writeln!(f, "taken rate   : {:.1}%", self.taken_rate * 100.0)?;
        writeln!(
            f,
            "footprint    : {} lines / {} pages ({:.1} MiB)",
            self.unique_lines,
            self.unique_pages,
            self.footprint_bytes() as f64 / (1024.0 * 1024.0)
        )?;
        writeln!(f, "load IPs     : {}", self.load_ips)?;
        writeln!(f, "chase loads  : {:.1}%", self.serialized_frac * 100.0)?;
        write!(
            f,
            "est. MPKI    : {:.1} (vs {}-line ideal cache)",
            self.est_mpki, self.model_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn mix_fractions_match_generator() {
        let spec = &catalog::spec_cpu2017()[5];
        let v = spec.generator(1).record(20_000);
        let s = TraceStats::analyse(&v, 768);
        assert!((s.load_frac - spec.load_frac).abs() < 0.1);
        assert!((s.branch_frac - spec.branch_frac).abs() < 0.1);
        assert_eq!(s.instructions, 20_000);
    }

    #[test]
    fn streaming_has_higher_mpki_than_friendly() {
        let lbm = catalog::by_name("619.lbm_s-4268B").unwrap();
        let cloud = catalog::by_name("cloudsuite.cassandra").unwrap();
        let s_lbm = TraceStats::analyse(&lbm.generator(2).record(30_000), 768);
        let s_cloud = TraceStats::analyse(&cloud.generator(2).record(30_000), 768);
        assert!(
            s_lbm.est_mpki > s_cloud.est_mpki,
            "lbm {} vs cloudsuite {}",
            s_lbm.est_mpki,
            s_cloud.est_mpki
        );
    }

    #[test]
    fn mcf_has_chase_loads_and_wide_footprint() {
        let mcf = catalog::by_name("605.mcf_s-1554B").unwrap();
        let s = TraceStats::analyse(&mcf.generator(3).record(30_000), 768);
        assert!(s.serialized_frac > 0.02);
        assert!(s.unique_pages > 100);
    }

    #[test]
    fn display_is_complete() {
        let spec = &catalog::spec_cpu2017()[0];
        let s = TraceStats::analyse(&spec.generator(4).record(5_000), 768);
        let out = s.to_string();
        assert!(out.contains("MPKI"));
        assert!(out.contains("footprint"));
    }

    #[test]
    #[should_panic]
    fn zero_line_model_panics() {
        let _ = TraceStats::analyse(&[], 0);
    }
}
