//! Workload mixes: homogeneous (SPEC RATE style) and randomly generated
//! heterogeneous many-core mixes, as used throughout the paper's
//! evaluation (45 homogeneous + 200 heterogeneous 64-core mixes).

use crate::catalog;
use crate::spec::WorkloadSpec;
use clip_types::SimRng;

/// A many-core workload mix: one workload per core.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Mix label used in experiment output (the trace name for homogeneous
    /// mixes, `hetero-N` for heterogeneous ones).
    pub name: String,
    /// One entry per core.
    pub workloads: Vec<WorkloadSpec>,
}

impl Mix {
    /// Builds a homogeneous mix: `cores` copies of one workload (the SPEC
    /// RATE mode of the paper).
    pub fn homogeneous(spec: &WorkloadSpec, cores: usize) -> Self {
        Mix {
            name: spec.name.clone(),
            workloads: vec![spec.clone(); cores],
        }
    }

    /// Number of cores this mix targets.
    pub fn cores(&self) -> usize {
        self.workloads.len()
    }
}

/// The paper's 45 64-core homogeneous mixes (one per memory-intensive SPEC
/// CPU2017 simpoint), for an arbitrary core count.
pub fn homogeneous_mixes(cores: usize) -> Vec<Mix> {
    catalog::spec_cpu2017()
        .iter()
        .map(|w| Mix::homogeneous(w, cores))
        .collect()
}

/// Randomly generated heterogeneous mixes from SPEC CPU2017 and GAP, with
/// no bias towards any benchmark (§5: "200 randomly generated heterogeneous
/// mixes"). Deterministic in `seed`.
pub fn heterogeneous_mixes(n: usize, cores: usize, seed: u64) -> Vec<Mix> {
    let pool: Vec<WorkloadSpec> = catalog::spec_cpu2017()
        .into_iter()
        .chain(catalog::gap())
        .collect();
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let workloads = (0..cores)
                .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                .collect();
            Mix {
                name: format!("hetero-{i:03}"),
                workloads,
            }
        })
        .collect()
}

/// Homogeneous mixes over the CloudSuite + CVP traces (Fig. 17).
pub fn cloud_cvp_mixes(cores: usize) -> Vec<Mix> {
    catalog::cloudsuite()
        .iter()
        .chain(catalog::cvp().iter())
        .map(|w| Mix::homogeneous(w, cores))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_mixes_cover_all_45() {
        let mixes = homogeneous_mixes(64);
        assert_eq!(mixes.len(), 45);
        for m in &mixes {
            assert_eq!(m.cores(), 64);
            assert!(m.workloads.iter().all(|w| w.name == m.name));
        }
    }

    #[test]
    fn heterogeneous_mixes_are_deterministic() {
        let a = heterogeneous_mixes(10, 8, 7);
        let b = heterogeneous_mixes(10, 8, 7);
        assert_eq!(a, b);
        let c = heterogeneous_mixes(10, 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn heterogeneous_mixes_actually_mix() {
        let mixes = heterogeneous_mixes(5, 64, 3);
        for m in mixes {
            let mut names: Vec<&str> = m.workloads.iter().map(|w| w.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert!(
                names.len() > 4,
                "{} distinct workloads in 64-core mix",
                names.len()
            );
        }
    }

    #[test]
    fn cloud_cvp_mixes_cover_both_suites() {
        let mixes = cloud_cvp_mixes(4);
        assert_eq!(mixes.len(), 10);
        assert!(mixes.iter().any(|m| m.name.starts_with("cloudsuite.")));
        assert!(mixes.iter().any(|m| m.name.starts_with("cvp.")));
    }
}
