//! Workload specifications: the tunable statistics of a synthetic workload.

use crate::TraceGenerator;

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 (rate-mode simpoints).
    SpecCpu2017,
    /// GAP benchmark suite graph kernels.
    Gap,
    /// CloudSuite scale-out workloads.
    CloudSuite,
    /// Championship Value Prediction client/server traces.
    Cvp,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::SpecCpu2017 => "SPEC CPU2017",
            Suite::Gap => "GAP",
            Suite::CloudSuite => "CloudSuite",
            Suite::Cvp => "CVP",
        }
    }
}

/// Relative weights of the spatial access-pattern classes assigned to a
/// workload's load IPs. Weights need not sum to one; they are normalised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Sequential streaming (prefetch-friendly, wide footprint).
    pub stream: f64,
    /// Constant-stride walks.
    pub stride: f64,
    /// Dependent pointer chasing (prefetch-hostile, serialized).
    pub chase: f64,
    /// Small hot working set (L1 hits).
    pub hot: f64,
    /// Branch-context-dependent dual behaviour (dynamic-critical IPs).
    pub ctx_dual: f64,
}

impl PatternMix {
    /// A mix dominated by streaming (lbm-like).
    pub fn streaming() -> Self {
        PatternMix {
            stream: 0.55,
            stride: 0.2,
            chase: 0.0,
            hot: 0.2,
            ctx_dual: 0.05,
        }
    }

    /// A mix dominated by pointer chasing (mcf-like).
    pub fn chasing() -> Self {
        PatternMix {
            stream: 0.08,
            stride: 0.12,
            chase: 0.35,
            hot: 0.3,
            ctx_dual: 0.15,
        }
    }

    /// A strided scientific mix (bwaves/roms-like).
    pub fn strided() -> Self {
        PatternMix {
            stream: 0.35,
            stride: 0.35,
            chase: 0.02,
            hot: 0.2,
            ctx_dual: 0.08,
        }
    }

    /// An irregular integer mix (gcc/xalancbmk-like).
    pub fn irregular() -> Self {
        PatternMix {
            stream: 0.12,
            stride: 0.18,
            chase: 0.18,
            hot: 0.4,
            ctx_dual: 0.12,
        }
    }

    /// A cache-friendly mix (low MPKI).
    pub fn friendly() -> Self {
        PatternMix {
            stream: 0.08,
            stride: 0.1,
            chase: 0.02,
            hot: 0.75,
            ctx_dual: 0.05,
        }
    }
}

/// Full description of a synthetic workload. Public fields by design: this
/// is a passive parameter record (C-STRUCT-PRIVATE exception for plain
/// data).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Trace name as it appears in the paper's figures.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Total distinct cache lines the workload can touch.
    pub footprint_lines: u64,
    /// Size of hot working sets in lines (fits in L1 when small).
    pub hot_lines: u64,
    /// Number of static load IPs.
    pub load_ips: usize,
    /// Number of static conditional-branch IPs.
    pub branch_ips: usize,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_frac: f64,
    /// Probability that a given branch IP is history-predictable.
    pub branch_predictability: f64,
    /// Spatial pattern mix across load IPs.
    pub pattern: PatternMix,
    /// Instructions per application phase (0 = no phase changes).
    pub phase_len: u64,
}

/// Error returned when a [`WorkloadSpec`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSpecError {
    message: String,
}

impl std::fmt::Display for InvalidSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid workload spec: {}", self.message)
    }
}

impl std::error::Error for InvalidSpecError {}

impl WorkloadSpec {
    /// Creates a seeded generator for this workload.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`WorkloadSpec::validate`]; validate
    /// first when the spec comes from untrusted input.
    pub fn generator(&self, seed: u64) -> TraceGenerator {
        self.validate().expect("workload spec must be valid");
        TraceGenerator::new(self, seed)
    }

    /// Checks the spec's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSpecError`] describing the first violated
    /// invariant: fractions must leave room for ALU work, the hot set must
    /// fit the footprint, and populations must be non-zero.
    pub fn validate(&self) -> Result<(), InvalidSpecError> {
        let err = |m: &str| {
            Err(InvalidSpecError {
                message: m.to_string(),
            })
        };
        let fracs = [self.load_frac, self.store_frac, self.branch_frac];
        if fracs.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return err("instruction-mix fractions must be within [0, 1]");
        }
        if self.load_frac + self.store_frac + self.branch_frac > 0.95 {
            return err("instruction mix leaves no room for ALU work");
        }
        if !(0.0..=1.0).contains(&self.branch_predictability) {
            return err("branch predictability must be within [0, 1]");
        }
        if self.hot_lines.max(16) >= self.footprint_lines.max(1024) {
            return err("hot working set must be smaller than the footprint");
        }
        if self.load_ips == 0 || self.branch_ips == 0 {
            return err("IP populations must be non-zero");
        }
        let p = &self.pattern;
        let weights = [p.stream, p.stride, p.chase, p.hot, p.ctx_dual];
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return err("pattern weights must be non-negative and finite");
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return err("pattern weights must not all be zero");
        }
        Ok(())
    }

    /// Stable hash of the workload name (namespaces IPs and RNG streams).
    pub fn name_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// A rough memory-intensity score in [0, 1]: how much of the load
    /// stream misses beyond small caches. Used only by tests and mix
    /// labelling.
    pub fn memory_intensity(&self) -> f64 {
        let p = &self.pattern;
        let total = p.stream + p.stride + p.chase + p.hot + p.ctx_dual;
        ((p.stream + p.stride + p.chase + 0.5 * p.ctx_dual) / total * self.load_frac / 0.3).min(1.0)
    }
}

/// Builder-style constructors, used by the catalog and available to
/// downstream users defining custom workload models.
impl WorkloadSpec {
    /// Creates a workload with default statistics for the given pattern
    /// mix. Chain the builder methods to adjust them.
    pub fn new(name: &str, suite: Suite, pattern: PatternMix) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            suite,
            footprint_lines: 1 << 20, // 64 MiB default footprint
            hot_lines: 256,
            load_ips: 24,
            branch_ips: 12,
            load_frac: 0.28,
            store_frac: 0.08,
            branch_frac: 0.14,
            branch_predictability: 0.85,
            pattern,
            phase_len: 0,
        }
    }

    /// Sets the total footprint in cache lines.
    pub fn footprint(mut self, lines: u64) -> Self {
        self.footprint_lines = lines;
        self
    }

    /// Sets the hot working-set span in lines.
    pub fn hot(mut self, lines: u64) -> Self {
        self.hot_lines = lines;
        self
    }

    /// Sets the static load/branch IP populations.
    pub fn ips(mut self, loads: usize, branches: usize) -> Self {
        self.load_ips = loads;
        self.branch_ips = branches;
        self
    }

    /// Sets the instruction-mix fractions.
    pub fn mixfrac(mut self, load: f64, store: f64, branch: f64) -> Self {
        self.load_frac = load;
        self.store_frac = store;
        self.branch_frac = branch;
        self
    }

    /// Sets the branch predictability probability.
    pub fn predictability(mut self, p: f64) -> Self {
        self.branch_predictability = p;
        self
    }

    /// Sets the application phase length in instructions (0 = none).
    pub fn phases(mut self, len: u64) -> Self {
        self.phase_len = len;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_hash_is_stable_and_distinct() {
        let a = WorkloadSpec::new("a", Suite::Gap, PatternMix::streaming());
        let b = WorkloadSpec::new("b", Suite::Gap, PatternMix::streaming());
        assert_eq!(a.name_hash(), a.name_hash());
        assert_ne!(a.name_hash(), b.name_hash());
    }

    #[test]
    fn memory_intensity_orders_pattern_classes() {
        let stream = WorkloadSpec::new("s", Suite::SpecCpu2017, PatternMix::streaming());
        let friendly = WorkloadSpec::new("f", Suite::SpecCpu2017, PatternMix::friendly());
        assert!(stream.memory_intensity() > friendly.memory_intensity());
    }

    #[test]
    fn builders_apply() {
        let w = WorkloadSpec::new("x", Suite::Cvp, PatternMix::irregular())
            .footprint(4096)
            .hot(64)
            .ips(100, 50)
            .mixfrac(0.3, 0.1, 0.2)
            .predictability(0.5)
            .phases(10_000);
        assert_eq!(w.footprint_lines, 4096);
        assert_eq!(w.hot_lines, 64);
        assert_eq!(w.load_ips, 100);
        assert_eq!(w.branch_ips, 50);
        assert_eq!(w.phase_len, 10_000);
        assert!((w.load_frac - 0.3).abs() < 1e-12);
    }

    #[test]
    fn validation_accepts_catalog_style_specs() {
        let w = WorkloadSpec::new("ok", Suite::Gap, PatternMix::streaming());
        assert!(w.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let base = WorkloadSpec::new("bad", Suite::Gap, PatternMix::streaming());
        let over = WorkloadSpec {
            load_frac: 0.9,
            branch_frac: 0.2,
            ..base.clone()
        };
        assert!(over.validate().is_err());
        let hot = WorkloadSpec {
            hot_lines: 1 << 30,
            footprint_lines: 4096,
            ..base.clone()
        };
        assert!(hot.validate().is_err());
        let zero = WorkloadSpec {
            pattern: PatternMix {
                stream: 0.0,
                stride: 0.0,
                chase: 0.0,
                hot: 0.0,
                ctx_dual: 0.0,
            },
            ..base.clone()
        };
        assert!(zero.validate().is_err());
        let neg = WorkloadSpec {
            pattern: PatternMix {
                stream: -1.0,
                ..PatternMix::streaming()
            },
            ..base
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn generator_panics_on_invalid_spec() {
        let bad = WorkloadSpec {
            load_ips: 0,
            ..WorkloadSpec::new("bad", Suite::Gap, PatternMix::streaming())
        };
        let _ = bad.generator(1);
    }

    #[test]
    fn suite_names() {
        assert_eq!(Suite::Gap.name(), "GAP");
        assert_eq!(Suite::SpecCpu2017.name(), "SPEC CPU2017");
    }
}
