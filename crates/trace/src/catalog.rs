//! The workload catalog: 45 memory-intensive SPEC CPU2017 simpoints, the
//! GAP graph kernels, and the CloudSuite / CVP client-server traces used by
//! the paper, each mapped to a synthetic [`WorkloadSpec`] model.
//!
//! Family parameters are chosen to reproduce each benchmark's published
//! memory character (pattern mix, footprint, IP population); simpoints of
//! the same benchmark differ in footprint/phase details, mirroring how
//! different simpoints of one binary behave similarly but not identically.

use crate::spec::{PatternMix, Suite, WorkloadSpec};

fn spec(name: &str, pattern: PatternMix) -> WorkloadSpec {
    WorkloadSpec::new(name, Suite::SpecCpu2017, pattern)
}

/// The 45 memory-intensive SPEC CPU2017 simpoint workloads (Fig. 10's
/// x-axis). Order matches the paper's per-mix figures.
pub fn spec_cpu2017() -> Vec<WorkloadSpec> {
    let mut v = Vec::with_capacity(45);

    // 600.perlbench — irregular, branchy, moderately cache-friendly.
    v.push(
        spec("600.perlbench_s-570B", PatternMix::irregular())
            .footprint(1 << 18)
            .hot(384)
            .ips(48, 32)
            .mixfrac(0.26, 0.1, 0.18)
            .predictability(0.9),
    );

    // 602.gcc — irregular integer, pointer-rich, many IPs.
    for (nm, fpl) in [
        ("602.gcc_s-1850B", 1u64 << 19),
        ("602.gcc_s-2226B", 1 << 19),
        ("602.gcc_s-734B", 1 << 18),
    ] {
        v.push(
            spec(nm, PatternMix::irregular())
                .footprint(fpl)
                .hot(320)
                .ips(64, 40)
                .mixfrac(0.27, 0.1, 0.2)
                .predictability(0.82),
        );
    }

    // 603.bwaves — strided FP, large footprint, very regular.
    for (nm, fpl) in [
        ("603.bwaves_s-1740B", 1u64 << 21),
        ("603.bwaves_s-2609B", 1 << 21),
        ("603.bwaves_s-2931B", 1 << 21),
        ("603.bwaves_s-891B", 1 << 20),
    ] {
        v.push(
            spec(nm, PatternMix::strided())
                .footprint(fpl)
                .hot(192)
                .ips(20, 8)
                .mixfrac(0.34, 0.09, 0.06)
                .predictability(0.96),
        );
    }

    // 605.mcf — the pointer-chasing poster child; dynamic-critical IPs.
    for (nm, fpl) in [
        ("605.mcf_s-1152B", 1u64 << 21),
        ("605.mcf_s-1536B", 1 << 21),
        ("605.mcf_s-1554B", 1 << 21),
        ("605.mcf_s-1644B", 1 << 21),
        ("605.mcf_s-472B", 1 << 20),
        ("605.mcf_s-484B", 1 << 20),
        ("605.mcf_s-665B", 1 << 20),
        ("605.mcf_s-782B", 1 << 20),
        ("605.mcf_s-994B", 1 << 21),
    ] {
        v.push(
            spec(nm, PatternMix::chasing())
                .footprint(fpl)
                .hot(256)
                .ips(32, 24)
                .mixfrac(0.3, 0.08, 0.17)
                .predictability(0.7),
        );
    }

    // 607.cactuBSSN — stencil FP with many strided streams.
    for (nm, fpl) in [
        ("607.cactuBSSN_s-2421B", 1u64 << 21),
        ("607.cactuBSSN_s-3477B", 1 << 21),
        ("607.cactuBSSN_s-4004B", 1 << 21),
    ] {
        v.push(
            spec(nm, PatternMix::strided())
                .footprint(fpl)
                .hot(160)
                .ips(36, 6)
                .mixfrac(0.36, 0.12, 0.04)
                .predictability(0.97),
        );
    }

    // 619.lbm — pure streaming, few IPs, huge footprint.
    for (nm, fpl) in [
        ("619.lbm_s-2676B", 1u64 << 22),
        ("619.lbm_s-2677B", 1 << 22),
        ("619.lbm_s-3766B", 1 << 22),
        ("619.lbm_s-4268B", 1 << 22),
    ] {
        v.push(
            spec(nm, PatternMix::streaming())
                .footprint(fpl)
                .hot(96)
                .ips(12, 4)
                .mixfrac(0.32, 0.16, 0.03)
                .predictability(0.98),
        );
    }

    // 620.omnetpp — discrete-event simulator: pointer-heavy, branchy.
    for nm in ["620.omnetpp_s-141B", "620.omnetpp_s-874B"] {
        v.push(
            spec(nm, PatternMix::chasing())
                .footprint(1 << 20)
                .hot(384)
                .ips(56, 36)
                .mixfrac(0.29, 0.11, 0.19)
                .predictability(0.78),
        );
    }

    // 621.wrf — weather model: strided with phase behaviour.
    for nm in ["621.wrf_s-6673B", "621.wrf_s-8065B"] {
        v.push(
            spec(nm, PatternMix::strided())
                .footprint(1 << 21)
                .hot(256)
                .ips(40, 12)
                .mixfrac(0.3, 0.1, 0.08)
                .predictability(0.93)
                .phases(400_000),
        );
    }

    // 623.xalancbmk — XSLT: irregular, high IP count.
    for nm in [
        "623.xalancbmk_s-10B",
        "623.xalancbmk_s-165B",
        "623.xalancbmk_s-202B",
    ] {
        v.push(
            spec(nm, PatternMix::irregular())
                .footprint(1 << 19)
                .hot(448)
                .ips(72, 48)
                .mixfrac(0.28, 0.08, 0.21)
                .predictability(0.84),
        );
    }

    // 628.pop2 — ocean model, strided.
    v.push(
        spec("628.pop2_s-17B", PatternMix::strided())
            .footprint(1 << 20)
            .hot(224)
            .ips(36, 10)
            .mixfrac(0.31, 0.11, 0.07)
            .predictability(0.94),
    );

    // 649.fotonik3d — FDTD: streaming FP.
    for (nm, fpl) in [
        ("649.fotonik3d_s-10881B", 1u64 << 22),
        ("649.fotonik3d_s-1176B", 1 << 21),
        ("649.fotonik3d_s-7084B", 1 << 22),
        ("649.fotonik3d_s-8225B", 1 << 22),
    ] {
        v.push(
            spec(nm, PatternMix::streaming())
                .footprint(fpl)
                .hot(128)
                .ips(16, 5)
                .mixfrac(0.33, 0.14, 0.04)
                .predictability(0.97),
        );
    }

    // 654.roms — ocean model: strided with streams.
    for (nm, fpl) in [
        ("654.roms_s-1007B", 1u64 << 21),
        ("654.roms_s-1070B", 1 << 21),
        ("654.roms_s-1390B", 1 << 21),
        ("654.roms_s-293B", 1 << 20),
        ("654.roms_s-294B", 1 << 20),
        ("654.roms_s-523B", 1 << 21),
    ] {
        v.push(
            spec(nm, PatternMix::strided())
                .footprint(fpl)
                .hot(192)
                .ips(28, 8)
                .mixfrac(0.32, 0.12, 0.06)
                .predictability(0.95),
        );
    }

    // 657.xz — compression: irregular with context-dependent loads.
    for nm in ["657.xz_s-1306B", "657.xz_s-2302B"] {
        v.push(
            spec(nm, PatternMix::irregular())
                .footprint(1 << 20)
                .hot(320)
                .ips(44, 28)
                .mixfrac(0.27, 0.09, 0.17)
                .predictability(0.72),
        );
    }

    // 654.roms — additional large simpoint.
    v.push(
        spec("654.roms_s-1613B", PatternMix::strided())
            .footprint(1 << 21)
            .hot(192)
            .ips(28, 8)
            .mixfrac(0.32, 0.12, 0.06)
            .predictability(0.95),
    );

    debug_assert_eq!(v.len(), 45);
    v
}

/// GAP graph kernels (all memory-intensive in the paper).
pub fn gap() -> Vec<WorkloadSpec> {
    let mut v = Vec::new();
    let kernels: [(&str, PatternMix, u64); 6] = [
        // Graph kernels mix frontier streaming with neighbour chasing.
        (
            "bfs-14B",
            PatternMix {
                stream: 0.2,
                stride: 0.1,
                chase: 0.4,
                hot: 0.2,
                ctx_dual: 0.1,
            },
            1 << 21,
        ),
        (
            "pr-14B",
            PatternMix {
                stream: 0.35,
                stride: 0.1,
                chase: 0.3,
                hot: 0.2,
                ctx_dual: 0.05,
            },
            1 << 22,
        ),
        (
            "cc-13B",
            PatternMix {
                stream: 0.25,
                stride: 0.1,
                chase: 0.35,
                hot: 0.25,
                ctx_dual: 0.05,
            },
            1 << 21,
        ),
        (
            "bc-12B",
            PatternMix {
                stream: 0.2,
                stride: 0.12,
                chase: 0.38,
                hot: 0.22,
                ctx_dual: 0.08,
            },
            1 << 21,
        ),
        (
            "sssp-14B",
            PatternMix {
                stream: 0.18,
                stride: 0.1,
                chase: 0.42,
                hot: 0.2,
                ctx_dual: 0.1,
            },
            1 << 22,
        ),
        (
            "tc-11B",
            PatternMix {
                stream: 0.3,
                stride: 0.15,
                chase: 0.3,
                hot: 0.2,
                ctx_dual: 0.05,
            },
            1 << 21,
        ),
    ];
    for (nm, pm, fpl) in kernels {
        v.push(
            WorkloadSpec::new(nm, Suite::Gap, pm)
                .footprint(fpl)
                .hot(192)
                .ips(28, 20)
                .mixfrac(0.31, 0.06, 0.16)
                .predictability(0.6),
        );
    }
    v
}

/// CloudSuite scale-out workloads: enormous instruction footprints, large
/// IP populations, low prefetchability — prefetchers struggle here (Fig. 17).
pub fn cloudsuite() -> Vec<WorkloadSpec> {
    [
        "cassandra",
        "classification",
        "cloud9",
        "nutch",
        "streaming",
    ]
    .iter()
    .map(|nm| {
        WorkloadSpec::new(
            &format!("cloudsuite.{nm}"),
            Suite::CloudSuite,
            PatternMix {
                stream: 0.06,
                stride: 0.08,
                chase: 0.2,
                hot: 0.56,
                ctx_dual: 0.1,
            },
        )
        .footprint(1 << 19)
        .hot(512)
        .ips(160, 96)
        .mixfrac(0.26, 0.1, 0.2)
        .predictability(0.75)
    })
    .collect()
}

/// CVP-1 client/server traces (e.g. `server_013` with its 32k IPs of which
/// only nine are critical, per §4.3).
pub fn cvp() -> Vec<WorkloadSpec> {
    [
        "server_013",
        "server_036",
        "server_211",
        "client_005",
        "client_014",
    ]
    .iter()
    .map(|nm| {
        WorkloadSpec::new(
            &format!("cvp.{nm}"),
            Suite::Cvp,
            PatternMix {
                stream: 0.05,
                stride: 0.1,
                chase: 0.15,
                hot: 0.6,
                ctx_dual: 0.1,
            },
        )
        .footprint(1 << 18)
        .hot(448)
        .ips(192, 128)
        .mixfrac(0.25, 0.11, 0.22)
        .predictability(0.8)
    })
    .collect()
}

/// Every workload in the catalog.
pub fn all() -> Vec<WorkloadSpec> {
    let mut v = spec_cpu2017();
    v.extend(gap());
    v.extend(cloudsuite());
    v.extend(cvp());
    v
}

/// Looks a workload up by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_catalog_has_45_entries() {
        assert_eq!(spec_cpu2017().len(), 45);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().into_iter().map(|w| w.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate workload names");
    }

    #[test]
    fn by_name_finds_known_traces() {
        assert!(by_name("605.mcf_s-1554B").is_some());
        assert!(by_name("cvp.server_013").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn suites_are_tagged() {
        assert!(gap().iter().all(|w| w.suite == Suite::Gap));
        assert!(cloudsuite().iter().all(|w| w.suite == Suite::CloudSuite));
        assert!(cvp().iter().all(|w| w.suite == Suite::Cvp));
        assert!(spec_cpu2017().iter().all(|w| w.suite == Suite::SpecCpu2017));
    }

    #[test]
    fn cloudsuite_is_less_memory_intense_than_lbm() {
        let lbm = by_name("619.lbm_s-4268B").unwrap();
        let cs = by_name("cloudsuite.cassandra").unwrap();
        assert!(lbm.memory_intensity() > cs.memory_intensity());
    }

    #[test]
    fn all_specs_validate_basic_ranges() {
        for w in all() {
            assert!(
                w.load_frac + w.store_frac + w.branch_frac < 0.9,
                "{}",
                w.name
            );
            assert!(w.footprint_lines >= 1024, "{}", w.name);
            assert!(w.hot_lines < w.footprint_lines, "{}", w.name);
            assert!(w.load_ips > 0 && w.branch_ips > 0, "{}", w.name);
        }
    }
}
