//! Synthetic workload models and trace generation.
//!
//! The CLIP paper evaluates on proprietary simpoint traces (SPEC CPU2017,
//! GAP, CloudSuite, CVP). Those traces cannot be redistributed, so this
//! crate substitutes **seeded generative workload models**: each named
//! workload (e.g. `605.mcf_s-1554B`) is a parameterised instruction-stream
//! generator that reproduces the statistics the paper's phenomena depend on
//! — footprint, spatial pattern mix, branch entropy, branch-correlated load
//! behaviour (the source of *dynamic-critical* IPs), load-IP population, and
//! memory-level parallelism. See `DESIGN.md` §3 for the substitution
//! rationale.
//!
//! # Examples
//!
//! ```
//! use clip_trace::catalog;
//!
//! let specs = catalog::spec_cpu2017();
//! assert_eq!(specs.len(), 45);
//! let mut gen = specs[0].generator(7);
//! let instr = gen.next_instr();
//! assert!(instr.ip.raw() > 0);
//! ```

pub mod analysis;
pub mod catalog;
pub mod mix;
pub mod record;
pub mod spec;

pub use analysis::TraceStats;
pub use mix::{heterogeneous_mixes, homogeneous_mixes, Mix};
pub use record::TraceFile;
pub use spec::{PatternMix, Suite, WorkloadSpec};

use clip_types::SimRng;
use clip_types::{Addr, Ip, LINE_SHIFT};

/// One instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Instruction pointer (static identity of the instruction).
    pub ip: Ip,
    /// Operation performed.
    pub kind: InstrKind,
}

/// The operation performed by an [`Instr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// A load from `addr`. `serialized` marks pointer-chase loads whose
    /// address depends on the previous serialized load (low MLP).
    Load {
        /// Byte address read.
        addr: Addr,
        /// True when this load cannot issue before the previous serialized
        /// load completes (models a dependent pointer chase).
        serialized: bool,
    },
    /// A store to `addr` (write-allocate; never blocks retirement).
    Store {
        /// Byte address written.
        addr: Addr,
    },
    /// A conditional branch with its resolved direction.
    Branch {
        /// Architected outcome.
        taken: bool,
    },
    /// A non-memory operation completing after `latency` cycles.
    Alu {
        /// Execution latency in cycles.
        latency: u8,
    },
}

impl InstrKind {
    /// True for loads.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, InstrKind::Load { .. })
    }

    /// True for conditional branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, InstrKind::Branch { .. })
    }
}

/// Behaviour of one static load IP inside a generator.
#[derive(Debug, Clone)]
enum LoadAgent {
    /// Sequential march through a large region; resets (with a region jump)
    /// when the region is exhausted. Highly prefetch-friendly.
    Stream {
        pos: u64,
        region_end: u64,
        stride: i64,
    },
    /// Constant-stride walk (stride in lines).
    Stride { pos: u64, stride: i64 },
    /// Dependent random jumps within the footprint: prefetch-hostile, low
    /// MLP (serialized), the classic `mcf` behaviour.
    Chase { pos: u64 },
    /// Small hot working set: almost always an L1 hit.
    Hot { base: u64, span: u64, pos: u64 },
    /// Context-dual IP: behaves like `Hot` when the most recent conditional
    /// branch outcome matches `ctx`, and like a strided miss stream
    /// otherwise. This is what makes an IP *dynamic-critical*: criticality
    /// follows control flow, which CLIP's branch-history signature can
    /// learn but IP-only predictors cannot.
    CtxDual {
        hot_base: u64,
        hot_span: u64,
        cold_pos: u64,
        stride: i64,
        ctx: bool,
        pos: u64,
    },
}

/// Behaviour of one static branch IP.
#[derive(Debug, Clone)]
enum BranchAgent {
    /// Taken every `period`-th execution — highly predictable.
    Periodic { period: u32, count: u32 },
    /// Taken with probability `p` — entropy controlled by `p`.
    Biased { p: f64 },
    /// Alternates in runs of `run` — predictable with history.
    Runs { run: u32, count: u32, taken: bool },
}

/// A template slot in the synthetic loop body.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Load(usize),
    Store(usize),
    Branch(usize),
    Alu(u8),
}

/// Streaming instruction generator for one [`WorkloadSpec`].
///
/// Deterministic for a given `(spec, seed)` pair. The generator is an
/// infinite stream: the simulator decides how many instructions to consume
/// (the SPEC RATE replay loop of the paper falls out naturally).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    rng: SimRng,
    body: Vec<Slot>,
    body_pos: usize,
    load_ips: Vec<Ip>,
    load_agents: Vec<LoadAgent>,
    store_agents: Vec<LoadAgent>,
    store_ips: Vec<Ip>,
    branch_ips: Vec<Ip>,
    branch_agents: Vec<BranchAgent>,
    footprint_lines: u64,
    last_branch_outcome: bool,
    instrs_emitted: u64,
    phase_len: u64,
}

impl TraceGenerator {
    pub(crate) fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ clip_types::hash64(spec.name_hash()));
        let fp = spec.footprint_lines.max(1024);

        // Build static load IPs with behaviours drawn from the pattern mix.
        let n_loads = spec.load_ips.max(1);
        let mut load_ips = Vec::with_capacity(n_loads);
        let mut load_agents = Vec::with_capacity(n_loads);
        let ip_base = 0x40_0000u64 + (spec.name_hash() & 0xffff) * 0x1_0000;
        for i in 0..n_loads {
            let ip = Ip::new(ip_base + 16 * i as u64);
            load_ips.push(ip);
            load_agents.push(Self::make_agent(spec, &mut rng, fp, i));
        }

        let n_stores = (n_loads / 3).max(1);
        let mut store_ips = Vec::with_capacity(n_stores);
        let mut store_agents = Vec::with_capacity(n_stores);
        for i in 0..n_stores {
            store_ips.push(Ip::new(ip_base + 0x8000 + 16 * i as u64));
            store_agents.push(Self::make_agent(spec, &mut rng, fp, i));
        }

        let n_branches = spec.branch_ips.max(1);
        let mut branch_ips = Vec::with_capacity(n_branches);
        let mut branch_agents = Vec::with_capacity(n_branches);
        for i in 0..n_branches {
            branch_ips.push(Ip::new(ip_base + 0xc000 + 16 * i as u64));
            let predictable = rng.gen_bool(spec.branch_predictability);
            branch_agents.push(if predictable {
                if rng.gen_bool(0.5) {
                    BranchAgent::Periodic {
                        period: rng.gen_range(2u32..12),
                        count: 0,
                    }
                } else {
                    BranchAgent::Runs {
                        run: rng.gen_range(2u32..8),
                        count: 0,
                        taken: false,
                    }
                }
            } else {
                BranchAgent::Biased {
                    p: rng.gen_range(0.35..0.65),
                }
            });
        }

        // Construct the loop body with exact instruction-mix proportions
        // (randomly interleaved), so realized fractions match the spec
        // even for short bodies.
        let body_len = rng.gen_range(48..160usize);
        let slots_of = |frac: f64| ((body_len as f64 * frac).round() as usize).min(body_len);
        let mut body = Vec::with_capacity(body_len);
        for _ in 0..slots_of(spec.load_frac) {
            body.push(Slot::Load(rng.gen_range(0..n_loads)));
        }
        for _ in 0..slots_of(spec.store_frac) {
            body.push(Slot::Store(rng.gen_range(0..n_stores)));
        }
        for _ in 0..slots_of(spec.branch_frac) {
            body.push(Slot::Branch(rng.gen_range(0..n_branches)));
        }
        while body.len() < body_len {
            body.push(Slot::Alu(rng.gen_range(1u8..=3)));
        }
        // Fisher-Yates shuffle for a realistic interleaving.
        for i in (1..body.len()).rev() {
            let j = rng.gen_range(0..=i);
            body.swap(i, j);
        }

        TraceGenerator {
            rng,
            body,
            body_pos: 0,
            load_ips,
            load_agents,
            store_agents,
            store_ips,
            branch_ips,
            branch_agents,
            footprint_lines: fp,
            last_branch_outcome: false,
            instrs_emitted: 0,
            phase_len: spec.phase_len,
        }
    }

    fn make_agent(spec: &WorkloadSpec, rng: &mut SimRng, fp: u64, i: usize) -> LoadAgent {
        let w = &spec.pattern;
        let total = w.stream + w.stride + w.chase + w.hot + w.ctx_dual;
        let mut x = rng.gen_f64() * total;
        let start = rng.gen_range(0..fp);
        if x < w.stream {
            let region = (fp / 8).max(4096);
            return LoadAgent::Stream {
                pos: start,
                region_end: (start + region).min(fp),
                stride: 1,
            };
        }
        x -= w.stream;
        if x < w.stride {
            let strides = [2i64, 3, 4, 6, 8, 16];
            return LoadAgent::Stride {
                pos: start,
                stride: strides[i % strides.len()],
            };
        }
        x -= w.stride;
        if x < w.chase {
            return LoadAgent::Chase { pos: start };
        }
        x -= w.chase;
        if x < w.hot {
            let span = spec.hot_lines.max(16);
            return LoadAgent::Hot {
                base: start % fp.saturating_sub(span).max(1),
                span,
                pos: 0,
            };
        }
        let span = spec.hot_lines.max(16);
        LoadAgent::CtxDual {
            hot_base: start % fp.saturating_sub(span).max(1),
            hot_span: span,
            cold_pos: rng.gen_range(0..fp),
            stride: 1 + (i as i64 % 4),
            ctx: i.is_multiple_of(2),
            pos: 0,
        }
    }

    /// Produces the next instruction of the infinite stream.
    pub fn next_instr(&mut self) -> Instr {
        self.instrs_emitted += 1;
        // Application phase change: redirect a slice of the agents at each
        // phase boundary so APC shifts measurably.
        if self.phase_len > 0 && self.instrs_emitted.is_multiple_of(self.phase_len) {
            let fp = self.footprint_lines;
            let n = self.load_agents.len();
            for a in self.load_agents.iter_mut().take(n / 2) {
                if let LoadAgent::Stream {
                    pos, region_end, ..
                } = a
                {
                    let jump = self.rng.gen_range(0..fp);
                    *pos = jump;
                    *region_end = (jump + (fp / 8).max(4096)).min(fp);
                }
            }
        }

        let slot = self.body[self.body_pos];
        self.body_pos = (self.body_pos + 1) % self.body.len();
        match slot {
            Slot::Alu(lat) => Instr {
                ip: Ip::new(0x10_0000 + self.body_pos as u64 * 4),
                kind: InstrKind::Alu { latency: lat },
            },
            Slot::Branch(b) => {
                let taken = Self::branch_outcome(&mut self.branch_agents[b], &mut self.rng);
                self.last_branch_outcome = taken;
                Instr {
                    ip: self.branch_ips[b],
                    kind: InstrKind::Branch { taken },
                }
            }
            Slot::Load(l) => {
                let ctx = self.last_branch_outcome;
                let fp = self.footprint_lines;
                let (line, serialized) =
                    Self::agent_next(&mut self.load_agents[l], ctx, fp, &mut self.rng);
                Instr {
                    ip: self.load_ips[l],
                    kind: InstrKind::Load {
                        addr: Addr::new(line << LINE_SHIFT),
                        serialized,
                    },
                }
            }
            Slot::Store(s) => {
                let ctx = self.last_branch_outcome;
                let fp = self.footprint_lines;
                let (line, _) = Self::agent_next(&mut self.store_agents[s], ctx, fp, &mut self.rng);
                Instr {
                    ip: self.store_ips[s],
                    kind: InstrKind::Store {
                        addr: Addr::new(line << LINE_SHIFT),
                    },
                }
            }
        }
    }

    fn branch_outcome(agent: &mut BranchAgent, rng: &mut SimRng) -> bool {
        match agent {
            BranchAgent::Periodic { period, count } => {
                *count += 1;
                if *count >= *period {
                    *count = 0;
                    true
                } else {
                    false
                }
            }
            BranchAgent::Biased { p } => rng.gen_bool(*p),
            BranchAgent::Runs { run, count, taken } => {
                *count += 1;
                if *count >= *run {
                    *count = 0;
                    *taken = !*taken;
                }
                *taken
            }
        }
    }

    /// Advances an agent and returns `(line, serialized)`.
    fn agent_next(agent: &mut LoadAgent, ctx: bool, fp: u64, rng: &mut SimRng) -> (u64, bool) {
        match agent {
            LoadAgent::Stream {
                pos,
                region_end,
                stride,
            } => {
                let line = *pos;
                *pos = pos.wrapping_add_signed(*stride);
                if *pos >= *region_end {
                    let jump = rng.gen_range(0..fp);
                    *pos = jump;
                    *region_end = (jump + (fp / 8).max(4096)).min(fp);
                }
                (line % fp, false)
            }
            LoadAgent::Stride { pos, stride } => {
                let line = *pos % fp;
                *pos = pos.wrapping_add_signed(*stride) % fp;
                (line, false)
            }
            LoadAgent::Chase { pos } => {
                let line = *pos;
                // Pseudo-pointer: next address is a hash of the current one,
                // so the chain is deterministic yet unpredictable.
                *pos = clip_types::hash64(*pos ^ 0xC0FFEE) % fp;
                (line, true)
            }
            LoadAgent::Hot { base, span, pos } => {
                let line = *base + (*pos % *span);
                *pos = pos.wrapping_add(clip_types::hash64(*pos) % 5 + 1);
                (line % fp, false)
            }
            LoadAgent::CtxDual {
                hot_base,
                hot_span,
                cold_pos,
                stride,
                ctx: my_ctx,
                pos,
            } => {
                if ctx == *my_ctx {
                    let line = *hot_base + (*pos % *hot_span);
                    *pos = pos.wrapping_add(1);
                    (line % fp, false)
                } else {
                    let line = *cold_pos % fp;
                    *cold_pos = cold_pos.wrapping_add_signed(*stride) % fp;
                    (line, false)
                }
            }
        }
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.instrs_emitted
    }

    /// Records the next `n` instructions into a vector (for tests and
    /// offline analysis).
    pub fn record(&mut self, n: usize) -> Vec<Instr> {
        (0..n).map(|_| self.next_instr()).collect()
    }
}

impl Iterator for TraceGenerator {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        Some(self.next_instr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn gen_for(name: &str) -> TraceGenerator {
        catalog::all()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("workload {name} in catalog"))
            .generator(42)
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = &catalog::spec_cpu2017()[0];
        let a = spec.generator(9).record(5000);
        let b = spec.generator(9).record(5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = &catalog::spec_cpu2017()[0];
        let a = spec.generator(1).record(5000);
        let b = spec.generator(2).record(5000);
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_roughly_matches_spec() {
        let spec = &catalog::spec_cpu2017()[10];
        let v = spec.generator(3).record(50_000);
        let loads = v.iter().filter(|i| i.kind.is_load()).count() as f64;
        let frac = loads / v.len() as f64;
        assert!(
            (frac - spec.load_frac).abs() < 0.08,
            "load fraction {frac} vs spec {}",
            spec.load_frac
        );
    }

    #[test]
    fn mcf_has_serialized_chase_loads() {
        let mut g = gen_for("605.mcf_s-1554B");
        let v = g.record(100_000);
        let ser = v
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    InstrKind::Load {
                        serialized: true,
                        ..
                    }
                )
            })
            .count();
        assert!(ser > 100, "mcf must contain pointer-chase loads, got {ser}");
    }

    #[test]
    fn lbm_is_stream_dominated() {
        let mut g = gen_for("619.lbm_s-4268B");
        let v = g.record(100_000);
        // Count distinct lines touched by loads; a streaming workload walks
        // a wide footprint with few repeats.
        let mut lines: Vec<u64> = v
            .iter()
            .filter_map(|i| match i.kind {
                InstrKind::Load { addr, .. } => Some(addr.line().raw()),
                _ => None,
            })
            .collect();
        let n_loads = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert!(
            lines.len() * 3 > n_loads,
            "stream workload should rarely revisit lines: {} uniq of {}",
            lines.len(),
            n_loads
        );
    }

    #[test]
    fn addresses_stay_within_footprint() {
        for spec in catalog::spec_cpu2017().iter().take(8) {
            let v = spec.generator(5).record(20_000);
            for i in &v {
                if let InstrKind::Load { addr, .. } | InstrKind::Store { addr } = i.kind {
                    assert!(
                        addr.line().raw() <= spec.footprint_lines,
                        "{}: address outside footprint",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn load_ips_are_recurring() {
        let spec = &catalog::spec_cpu2017()[0];
        let v = spec.generator(11).record(50_000);
        let mut ips: Vec<u64> = v
            .iter()
            .filter(|i| i.kind.is_load())
            .map(|i| i.ip.raw())
            .collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert!(ips.len() <= spec.load_ips);
        assert!(n > ips.len() * 10, "IPs must recur many times");
    }

    #[test]
    fn branches_emit_both_outcomes() {
        let spec = &catalog::spec_cpu2017()[1];
        let v = spec.generator(13).record(50_000);
        let taken = v
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Branch { taken: true }))
            .count();
        let not_taken = v
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Branch { taken: false }))
            .count();
        assert!(taken > 0 && not_taken > 0);
    }

    #[test]
    fn iterator_impl_streams() {
        let spec = &catalog::spec_cpu2017()[2];
        let g = spec.generator(1);
        assert_eq!(g.take(100).count(), 100);
    }
}
