//! Trace recording and replay: a compact line-oriented text format for
//! instruction streams, so workloads can be captured once, inspected with
//! external tools, and replayed deterministically.
//!
//! Format (one record per line, `#`-prefixed header lines):
//!
//! ```text
//! #clip-trace v1
//! #name 605.mcf_s-1554B
//! #seed 42
//! L <ip-hex> <addr-hex>     demand load
//! C <ip-hex> <addr-hex>     serialized (chase) load
//! S <ip-hex> <addr-hex>     store
//! B <ip-hex> 1|0            branch (taken|not-taken)
//! A <ip-hex> <latency>      ALU op
//! ```
//!
//! # Examples
//!
//! ```
//! use clip_trace::record::{decode, encode};
//! use clip_trace::catalog;
//!
//! let spec = &catalog::spec_cpu2017()[0];
//! let instrs = spec.generator(7).record(100);
//! let text = encode(&spec.name, 7, &instrs);
//! let replayed = decode(&text).expect("well-formed");
//! assert_eq!(replayed.instrs, instrs);
//! ```

use crate::{Instr, InstrKind};
use clip_types::{Addr, Ip};
use std::fmt::Write as _;

/// A decoded trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Workload name from the header (empty if absent).
    pub name: String,
    /// Generation seed from the header (0 if absent).
    pub seed: u64,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
}

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Encodes an instruction stream into the v1 text format.
pub fn encode(name: &str, seed: u64, instrs: &[Instr]) -> String {
    let mut out = String::with_capacity(instrs.len() * 24 + 64);
    out.push_str("#clip-trace v1\n");
    let _ = writeln!(out, "#name {name}");
    let _ = writeln!(out, "#seed {seed}");
    for i in instrs {
        match i.kind {
            InstrKind::Load { addr, serialized } => {
                let tag = if serialized { 'C' } else { 'L' };
                let _ = writeln!(out, "{tag} {:x} {:x}", i.ip.raw(), addr.raw());
            }
            InstrKind::Store { addr } => {
                let _ = writeln!(out, "S {:x} {:x}", i.ip.raw(), addr.raw());
            }
            InstrKind::Branch { taken } => {
                let _ = writeln!(out, "B {:x} {}", i.ip.raw(), taken as u8);
            }
            InstrKind::Alu { latency } => {
                let _ = writeln!(out, "A {:x} {latency}", i.ip.raw());
            }
        }
    }
    out
}

/// Decodes the v1 text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line on malformed input.
pub fn decode(text: &str) -> Result<TraceFile, ParseTraceError> {
    let mut name = String::new();
    let mut seed = 0u64;
    let mut instrs = Vec::new();
    let err = |line: usize, message: &str| ParseTraceError {
        line,
        message: message.to_string(),
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.strip_prefix("name ") {
                name = n.to_string();
            } else if let Some(s) = rest.strip_prefix("seed ") {
                seed = s
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "seed is not an integer"))?;
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().ok_or_else(|| err(lineno, "empty record"))?;
        let ip_str = parts.next().ok_or_else(|| err(lineno, "missing ip"))?;
        let ip =
            u64::from_str_radix(ip_str, 16).map_err(|_| err(lineno, "ip is not hexadecimal"))?;
        let arg = parts.next().ok_or_else(|| err(lineno, "missing operand"))?;
        if parts.next().is_some() {
            return Err(err(lineno, "trailing fields"));
        }
        let kind = match tag {
            "L" | "C" => InstrKind::Load {
                addr: Addr::new(
                    u64::from_str_radix(arg, 16)
                        .map_err(|_| err(lineno, "address is not hexadecimal"))?,
                ),
                serialized: tag == "C",
            },
            "S" => InstrKind::Store {
                addr: Addr::new(
                    u64::from_str_radix(arg, 16)
                        .map_err(|_| err(lineno, "address is not hexadecimal"))?,
                ),
            },
            "B" => InstrKind::Branch {
                taken: match arg {
                    "1" => true,
                    "0" => false,
                    _ => return Err(err(lineno, "branch outcome must be 0 or 1")),
                },
            },
            "A" => InstrKind::Alu {
                latency: arg
                    .parse()
                    .map_err(|_| err(lineno, "latency is not an integer"))?,
            },
            _ => return Err(err(lineno, "unknown record tag")),
        };
        instrs.push(Instr {
            ip: Ip::new(ip),
            kind,
        });
    }
    Ok(TraceFile { name, seed, instrs })
}

/// Writes a trace file to disk.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn save(
    path: &std::path::Path,
    name: &str,
    seed: u64,
    instrs: &[Instr],
) -> std::io::Result<()> {
    std::fs::write(path, encode(name, seed, instrs))
}

/// Reads a trace file from disk.
///
/// # Errors
///
/// Returns an I/O error for filesystem problems, or a boxed
/// [`ParseTraceError`] for malformed content.
pub fn load(path: &std::path::Path) -> Result<TraceFile, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(decode(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn roundtrip_every_record_kind() {
        let instrs = vec![
            Instr {
                ip: Ip::new(0x400),
                kind: InstrKind::Load {
                    addr: Addr::new(0x1000),
                    serialized: false,
                },
            },
            Instr {
                ip: Ip::new(0x408),
                kind: InstrKind::Load {
                    addr: Addr::new(0x2000),
                    serialized: true,
                },
            },
            Instr {
                ip: Ip::new(0x410),
                kind: InstrKind::Store {
                    addr: Addr::new(0x3000),
                },
            },
            Instr {
                ip: Ip::new(0x418),
                kind: InstrKind::Branch { taken: true },
            },
            Instr {
                ip: Ip::new(0x420),
                kind: InstrKind::Branch { taken: false },
            },
            Instr {
                ip: Ip::new(0x428),
                kind: InstrKind::Alu { latency: 3 },
            },
        ];
        let text = encode("unit", 9, &instrs);
        let file = decode(&text).expect("well-formed");
        assert_eq!(file.name, "unit");
        assert_eq!(file.seed, 9);
        assert_eq!(file.instrs, instrs);
    }

    #[test]
    fn roundtrip_generated_workload() {
        let spec = &catalog::spec_cpu2017()[10];
        let instrs = spec.generator(77).record(5_000);
        let file = decode(&encode(&spec.name, 77, &instrs)).expect("well-formed");
        assert_eq!(file.instrs, instrs);
        assert_eq!(file.name, spec.name);
    }

    #[test]
    fn malformed_lines_report_position() {
        let bad = "#clip-trace v1\nL 400 zz\n";
        let e = decode(bad).expect_err("must fail");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("hexadecimal"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let e = decode("X 1 2\n").expect_err("must fail");
        assert!(e.message.contains("unknown record tag"));
    }

    #[test]
    fn branch_outcome_validation() {
        assert!(decode("B 400 2\n").is_err());
        assert!(decode("B 400 1\n").is_ok());
    }

    #[test]
    fn trailing_fields_rejected() {
        assert!(decode("L 400 1000 extra\n").is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("clip-trace-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.trace");
        let spec = &catalog::spec_cpu2017()[3];
        let instrs = spec.generator(5).record(500);
        save(&path, &spec.name, 5, &instrs).expect("write");
        let file = load(&path).expect("read");
        assert_eq!(file.instrs, instrs);
        let _ = std::fs::remove_file(&path);
    }
}
