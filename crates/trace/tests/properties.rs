//! Randomized invariant tests over the synthetic workload generators,
//! driven by the workspace's deterministic [`SimRng`].

use clip_trace::{catalog, InstrKind};
use clip_types::SimRng;

/// Any catalog workload with any seed is deterministic and respects its
/// footprint.
#[test]
fn any_workload_any_seed_wellformed() {
    let mut rng = SimRng::seed_from_u64(0x72ACE);
    for case in 0..32 {
        let idx = rng.gen_range(0usize..45);
        let seed = rng.next_u64();
        let spec = &catalog::spec_cpu2017()[idx];
        let a = spec.generator(seed).record(2_000);
        let b = spec.generator(seed).record(2_000);
        assert_eq!(&a, &b, "determinism (case {case})");
        for i in &a {
            if let InstrKind::Load { addr, .. } | InstrKind::Store { addr } = i.kind {
                assert!(addr.line().raw() <= spec.footprint_lines);
            }
        }
    }
}

/// Instruction mixes track the spec's fractions within tolerance for all
/// suites.
#[test]
fn mix_fractions_hold() {
    let mut rng = SimRng::seed_from_u64(0xF2AC);
    for _ in 0..32 {
        let idx = rng.gen_range(0usize..45);
        let seed = rng.gen_range(0u64..1000);
        let spec = &catalog::spec_cpu2017()[idx];
        let v = spec.generator(seed).record(30_000);
        let loads = v.iter().filter(|i| i.kind.is_load()).count() as f64 / v.len() as f64;
        let branches = v.iter().filter(|i| i.kind.is_branch()).count() as f64 / v.len() as f64;
        assert!(
            (loads - spec.load_frac).abs() < 0.12,
            "loads {loads} vs {}",
            spec.load_frac
        );
        assert!((branches - spec.branch_frac).abs() < 0.12);
    }
}

/// Heterogeneous mixes are deterministic in the seed and have the
/// requested shape.
#[test]
fn hetero_mixes_shape() {
    let mut rng = SimRng::seed_from_u64(0x4E7);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..8);
        let cores = rng.gen_range(1usize..16);
        let seed = rng.next_u64();
        let a = clip_trace::heterogeneous_mixes(n, cores, seed);
        let b = clip_trace::heterogeneous_mixes(n, cores, seed);
        assert_eq!(a.len(), n);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cores(), cores);
            assert_eq!(&x.workloads, &y.workloads);
        }
    }
}
