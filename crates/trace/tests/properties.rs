//! Property-based tests over the synthetic workload generators.

use clip_trace::{catalog, InstrKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any catalog workload with any seed is deterministic and respects
    /// its footprint.
    #[test]
    fn any_workload_any_seed_wellformed(idx in 0usize..45, seed in any::<u64>()) {
        let spec = &catalog::spec_cpu2017()[idx];
        let a = spec.generator(seed).record(2_000);
        let b = spec.generator(seed).record(2_000);
        prop_assert_eq!(&a, &b, "determinism");
        for i in &a {
            if let InstrKind::Load { addr, .. } | InstrKind::Store { addr } = i.kind {
                prop_assert!(addr.line().raw() <= spec.footprint_lines);
            }
        }
    }

    /// Instruction mixes track the spec's fractions within tolerance for
    /// all suites.
    #[test]
    fn mix_fractions_hold(idx in 0usize..45, seed in 0u64..1000) {
        let spec = &catalog::spec_cpu2017()[idx];
        let v = spec.generator(seed).record(30_000);
        let loads = v.iter().filter(|i| i.kind.is_load()).count() as f64 / v.len() as f64;
        let branches = v.iter().filter(|i| i.kind.is_branch()).count() as f64 / v.len() as f64;
        prop_assert!((loads - spec.load_frac).abs() < 0.12, "loads {loads} vs {}", spec.load_frac);
        prop_assert!((branches - spec.branch_frac).abs() < 0.12);
    }

    /// Heterogeneous mixes are deterministic in the seed and have the
    /// requested shape.
    #[test]
    fn hetero_mixes_shape(n in 1usize..8, cores in 1usize..16, seed in any::<u64>()) {
        let a = clip_trace::heterogeneous_mixes(n, cores, seed);
        let b = clip_trace::heterogeneous_mixes(n, cores, seed);
        prop_assert_eq!(a.len(), n);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.cores(), cores);
            prop_assert_eq!(&x.workloads, &y.workloads);
        }
    }
}
