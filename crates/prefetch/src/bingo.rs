//! Bingo spatial prefetcher (Bakhshalipour et al., HPCA '19).
//!
//! Bingo records the footprint (bit vector of touched lines) of each 2 KiB
//! region and associates it with two *events* observed at the region
//! trigger access: the long `IP+Address` event and the short `IP+Offset`
//! event. On a trigger access to a new region it looks the history up by
//! the long event first (precise) and falls back to the short event
//! (frequent), then replays the stored footprint as prefetches.

use crate::{AccessInfo, PrefetchCandidate, Prefetcher};
use clip_types::{Ip, LineAddr};
use std::collections::HashMap;

/// 2 KiB regions = 32 lines.
const REGION_LINES: u64 = 32;
const ACCUMULATION_CAPACITY: usize = 64;
const PHT_CAPACITY: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct RegionRecord {
    region: u64,
    footprint: u32,
    trigger_ip: u64,
    trigger_offset: u32,
    last_touch: u64,
}

/// The Bingo prefetcher.
#[derive(Debug, Clone)]
pub struct Bingo {
    /// Regions currently being observed.
    accumulating: Vec<RegionRecord>,
    /// Long-event history: (ip, region) → footprint.
    pht_long: HashMap<u64, u32>,
    /// Short-event history: (ip, offset) → footprint.
    pht_short: HashMap<u64, u32>,
    max_prefetches: usize,
    /// Insertion order for cheap FIFO eviction of the PHTs.
    long_order: Vec<u64>,
    short_order: Vec<u64>,
    /// Monotonic access counter driving staleness eviction.
    accesses: u64,
}

/// Accumulating regions untouched for this many accesses are considered
/// complete and their footprints are committed to the history tables.
const REGION_STALE_ACCESSES: u64 = 64;

impl Bingo {
    /// Creates a Bingo prefetcher replaying up to 16 lines per trigger.
    pub fn new() -> Self {
        Bingo {
            accumulating: Vec::with_capacity(ACCUMULATION_CAPACITY),
            pht_long: HashMap::new(),
            pht_short: HashMap::new(),
            max_prefetches: 16,
            long_order: Vec::new(),
            short_order: Vec::new(),
            accesses: 0,
        }
    }

    fn long_key(ip: u64, region: u64) -> u64 {
        clip_types::hash64(ip ^ region.rotate_left(17))
    }

    fn short_key(ip: u64, offset: u32) -> u64 {
        clip_types::hash64(ip ^ ((offset as u64) << 48) ^ 0xB1A60)
    }

    fn evict_region(&mut self, idx: usize) {
        let r = self.accumulating.swap_remove(idx);
        // Only store footprints with some spatial correlation.
        if r.footprint.count_ones() < 2 {
            return;
        }
        let lk = Self::long_key(r.trigger_ip, r.region);
        let sk = Self::short_key(r.trigger_ip, r.trigger_offset);
        if self.pht_long.insert(lk, r.footprint).is_none() {
            self.long_order.push(lk);
            if self.long_order.len() > PHT_CAPACITY {
                let victim = self.long_order.remove(0);
                self.pht_long.remove(&victim);
            }
        }
        if self.pht_short.insert(sk, r.footprint).is_none() {
            self.short_order.push(sk);
            if self.short_order.len() > PHT_CAPACITY {
                let victim = self.short_order.remove(0);
                self.pht_short.remove(&victim);
            }
        }
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Bingo {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.addr.line().raw();
        let region = line / REGION_LINES;
        let offset = (line % REGION_LINES) as u32;
        let ip = info.ip.raw();
        self.accesses += 1;
        let now = self.accesses;

        // Commit footprints of regions that have gone quiet.
        let mut i = 0;
        while i < self.accumulating.len() {
            if now.saturating_sub(self.accumulating[i].last_touch) > REGION_STALE_ACCESSES {
                self.evict_region(i);
            } else {
                i += 1;
            }
        }

        // Already accumulating this region? Record the touch.
        if let Some(r) = self.accumulating.iter_mut().find(|r| r.region == region) {
            r.footprint |= 1 << offset;
            r.last_touch = now;
            return;
        }

        // New region trigger: look up history, long event first.
        let footprint = self
            .pht_long
            .get(&Self::long_key(ip, region))
            .or_else(|| self.pht_short.get(&Self::short_key(ip, offset)))
            .copied();
        if let Some(fp) = footprint {
            let base = region * REGION_LINES;
            let mut issued = 0;
            for bit in 0..REGION_LINES as u32 {
                if issued >= self.max_prefetches {
                    break;
                }
                if bit != offset && fp & (1 << bit) != 0 {
                    out.push(PrefetchCandidate {
                        line: LineAddr::new(base + bit as u64),
                        trigger_ip: Ip::new(ip),
                        fill_l1: false,
                        engine: 0,
                    });
                    issued += 1;
                }
            }
        }

        // Start accumulating the new region.
        if self.accumulating.len() >= ACCUMULATION_CAPACITY {
            let oldest = self
                .accumulating
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_touch)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.evict_region(oldest);
        }
        self.accumulating.push(RegionRecord {
            region,
            footprint: 1 << offset,
            trigger_ip: ip,
            trigger_offset: offset,
            last_touch: now,
        });
    }

    fn name(&self) -> &'static str {
        "Bingo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::Addr;

    fn access(ip: u64, line: u64, cycle: u64) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(line * 64),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    /// Visit regions with a fixed footprint pattern; revisits must replay.
    #[test]
    fn replays_recorded_footprint() {
        let mut pf = Bingo::new();
        let mut out = Vec::new();
        let pattern = [0u64, 3, 7, 12];
        // Train on many regions with the same ip+offset event and pattern;
        // region eviction happens via capacity pressure.
        for r in 0..100u64 {
            for &p in &pattern {
                out.clear();
                pf.on_access(&access(0xF00, r * 32 + p, r * 10), &mut out);
            }
        }
        // A brand-new region triggered at offset 0 by the same IP: short
        // event must hit and replay the pattern.
        out.clear();
        pf.on_access(&access(0xF00, 5000 * 32, 99_999), &mut out);
        assert!(!out.is_empty(), "footprint replay expected");
        let lines: Vec<u64> = out.iter().map(|c| c.line.raw() - 5000 * 32).collect();
        for &p in &pattern[1..] {
            assert!(lines.contains(&p), "offset {p} must be replayed: {lines:?}");
        }
    }

    #[test]
    fn no_replay_for_unknown_event() {
        let mut pf = Bingo::new();
        let mut out = Vec::new();
        pf.on_access(&access(0x111, 99 * 32 + 5, 0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sparse_footprints_are_not_stored() {
        let mut pf = Bingo::new();
        let mut out = Vec::new();
        // Single-touch regions → footprint of one bit → not stored.
        for r in 0..200u64 {
            out.clear();
            pf.on_access(&access(0x222, r * 32, r), &mut out);
        }
        out.clear();
        pf.on_access(&access(0x222, 9999 * 32, 10_000), &mut out);
        assert!(out.is_empty(), "single-line footprints must not replay");
    }

    #[test]
    fn accumulation_table_is_bounded() {
        let mut pf = Bingo::new();
        let mut out = Vec::new();
        for r in 0..1000u64 {
            pf.on_access(&access(0x333, r * 32 + (r % 5), r), &mut out);
        }
        assert!(pf.accumulating.len() <= ACCUMULATION_CAPACITY);
    }
}
