//! Hardware data prefetchers: Berti, IPCP, Bingo, SPP-PPF, and the simple
//! baselines (IP-stride, stream, next-line).
//!
//! All prefetchers implement [`Prefetcher`]: the cache level they train at
//! feeds them every demand access via [`Prefetcher::on_access`], and they
//! append [`PrefetchCandidate`]s to the caller's buffer. The candidates
//! then pass through CLIP (when enabled), dedup against the cache/MSHRs,
//! and a bounded prefetch queue — exactly the paper's pipeline (Fig. 8).
//!
//! Throttlers adjust aggressiveness with [`Prefetcher::set_level`]
//! (1 = most conservative .. 5 = most aggressive, FDP-style).
//!
//! # Examples
//!
//! ```
//! use clip_prefetch::{AccessInfo, Prefetcher, build, PrefetcherKind};
//! use clip_types::{Addr, Ip};
//!
//! let mut pf = build(PrefetcherKind::NextLine);
//! let mut out = Vec::new();
//! pf.on_access(
//!     &AccessInfo { ip: Ip::new(0x400), addr: Addr::new(0x1000), hit: false, is_store: false, cycle: 0 },
//!     &mut out,
//! );
//! assert!(!out.is_empty());
//! ```

pub mod berti;
pub mod bingo;
pub mod composite;
pub mod ipcp;
pub mod simple;
pub mod spp;

pub use berti::Berti;
pub use bingo::Bingo;
pub use composite::{Composite, COMPOSITE_ENGINES, MAX_ALLOWED_DEGREE};
pub use ipcp::Ipcp;
pub use simple::{IpStride, NextLine, Stream};
pub use spp::SppPpf;

pub use clip_types::PrefetcherKind;
use clip_types::{Addr, Cycle, Ip, LineAddr};

/// One demand access observed at the training cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Instruction pointer of the demand access.
    pub ip: Ip,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the access hit at this level.
    pub hit: bool,
    /// True for stores.
    pub is_store: bool,
    /// Current cycle.
    pub cycle: Cycle,
}

/// A prefetch the prefetcher would like to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCandidate {
    /// Line to fetch.
    pub line: LineAddr,
    /// The demand IP that triggered this candidate — CLIP's trigger IP.
    pub trigger_ip: Ip,
    /// Fill into L1 (true) or stop at L2 (false). CLIP overrides this to
    /// L1 for the prefetches it lets through.
    pub fill_l1: bool,
    /// Index of the engine that generated this candidate inside a
    /// [`Composite`] ensemble (`< clip_types::MAX_PF_ENGINES`). Single
    /// prefetchers always emit engine 0; CLIP's utility buffer keys its
    /// per-engine accuracy accounting on this tag.
    pub engine: u8,
}

/// Common interface of every prefetcher in the bouquet.
pub trait Prefetcher {
    /// Observes a demand access at the training level and appends
    /// candidates to `out`.
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>);

    /// Notifies the prefetcher that a line it requested has filled
    /// (used by Berti's timeliness measurement).
    fn on_fill(&mut self, _line: LineAddr, _cycle: Cycle) {}

    /// Feedback: a previously issued prefetch resolved as useful (demand
    /// hit) or useless (evicted untouched). Drives PPF training.
    fn on_prefetch_result(&mut self, _line: LineAddr, _useful: bool) {}

    /// Sets the aggressiveness level, 1 (conservative) ..= 5 (aggressive).
    /// Level 3 is the default. Used by FDP/HPAC/SPAC/NST.
    fn set_level(&mut self, _level: u8) {}

    /// Sets a per-engine aggressiveness level (same 1..=5 scale as
    /// [`Prefetcher::set_level`]), indexed by candidate engine tag. CLIP's
    /// arbitration pushes these at window boundaries to starve engines
    /// whose prefetches keep missing demand hits. Single-engine
    /// prefetchers ignore it; [`Composite`] combines it with the global
    /// throttle level.
    fn set_engine_levels(&mut self, _levels: &[u8]) {}

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Builds a boxed prefetcher of the given kind with default tuning.
///
/// # Panics
///
/// Panics for [`PrefetcherKind::None`]; callers handle "no prefetcher"
/// before reaching this factory.
pub fn build(kind: PrefetcherKind) -> Box<dyn Prefetcher> {
    match kind {
        PrefetcherKind::Berti => Box::new(Berti::new()),
        PrefetcherKind::Ipcp => Box::new(Ipcp::new()),
        PrefetcherKind::Bingo => Box::new(Bingo::new()),
        PrefetcherKind::SppPpf => Box::new(SppPpf::new()),
        PrefetcherKind::IpStride => Box::new(IpStride::new()),
        PrefetcherKind::Stream => Box::new(Stream::new()),
        PrefetcherKind::NextLine => Box::new(NextLine::new()),
        PrefetcherKind::Composite => Box::new(Composite::new()),
        PrefetcherKind::None => panic!("PrefetcherKind::None has no implementation"),
    }
}

/// Hard ceiling on any level-scaled degree or distance. The tile prefetch
/// queue holds 32 entries and issues two per cycle; a single engine
/// scaled past 16 lines per trigger would monopolize it, so the clamp
/// lives here at the trait boundary — every `set_level` implementation
/// routes its scaling through [`degree_for_level`].
pub(crate) const MAX_LEVEL_DEGREE: usize = 16;

/// Maps an FDP-style aggressiveness level to a degree, given the
/// prefetcher's baseline degree at level 3. Clamped to
/// [`MAX_LEVEL_DEGREE`] so no engine can scale past the prefetch queue.
pub(crate) fn degree_for_level(base: usize, level: u8) -> usize {
    let scaled = match level {
        0 | 1 => (base / 4).max(1),
        2 => (base / 2).max(1),
        3 => base,
        4 => base * 2,
        _ => base * 4,
    };
    scaled.min(MAX_LEVEL_DEGREE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(ip: u64, addr: u64, cycle: Cycle) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(addr),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    /// Every prefetcher must learn a unit-stride stream.
    #[test]
    fn all_prefetchers_cover_sequential_stream() {
        for kind in [
            PrefetcherKind::Berti,
            PrefetcherKind::Ipcp,
            PrefetcherKind::Bingo,
            PrefetcherKind::SppPpf,
            PrefetcherKind::IpStride,
            PrefetcherKind::Stream,
            PrefetcherKind::NextLine,
            PrefetcherKind::Composite,
        ] {
            let mut pf = build(kind);
            let mut out = Vec::new();
            let mut issued = std::collections::HashSet::new();
            let mut useful = 0u32;
            let n = 600u64;
            for i in 0..n {
                let addr = 0x10_0000 + i * 64;
                if issued.contains(&Addr::new(addr).line()) {
                    useful += 1;
                }
                out.clear();
                pf.on_access(&access(0x400, addr, i * 20), &mut out);
                for c in &out {
                    issued.insert(c.line);
                    pf.on_fill(c.line, i * 20 + 100);
                }
            }
            assert!(
                useful as f64 / n as f64 > 0.3,
                "{}: sequential coverage too low: {useful}/{n}",
                pf.name()
            );
        }
    }

    /// No prefetcher should flood on a random (unpredictable) stream.
    #[test]
    fn prefetchers_restrain_on_random_access() {
        for kind in [
            PrefetcherKind::Berti,
            PrefetcherKind::Ipcp,
            PrefetcherKind::SppPpf,
        ] {
            let mut pf = build(kind);
            let mut out = Vec::new();
            let mut total = 0usize;
            let n = 2000u64;
            for i in 0..n {
                let addr = (clip_types::hash64(i) % (1 << 30)) & !63;
                out.clear();
                pf.on_access(&access(0x500, addr, i * 20), &mut out);
                total += out.len();
            }
            assert!(
                (total as f64) < n as f64 * 2.0,
                "{}: issues {} prefetches on {} random accesses",
                pf.name(),
                total,
                n
            );
        }
    }

    #[test]
    fn degree_for_level_monotonic() {
        let base = 4;
        let mut prev = 0;
        for level in 1..=5u8 {
            let d = degree_for_level(base, level);
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(degree_for_level(4, 3), 4);
    }

    #[test]
    fn degree_for_level_clamps_at_the_queue_bound() {
        // Regression: large bases used to scale unclamped (base * 4 at
        // level 5), letting one engine outgrow the 32-entry prefetch
        // queue. Every base and level must now stay within the cap while
        // the low-level floor of 1 is preserved.
        for base in [1usize, 2, 4, 8, 16, 32] {
            for level in 0..=6u8 {
                let d = degree_for_level(base, level);
                assert!(
                    (1..=MAX_LEVEL_DEGREE).contains(&d),
                    "base {base} level {level}: degree {d} escapes 1..={MAX_LEVEL_DEGREE}"
                );
            }
        }
        assert_eq!(degree_for_level(8, 5), MAX_LEVEL_DEGREE);
        assert_eq!(degree_for_level(32, 1), 8, "level 1 still quarters");
    }

    /// Every engine kind at every throttle level: drive a strong
    /// sequential stream (the most generous trigger each engine has) and
    /// require that no single access ever yields more candidates than the
    /// clamped degree bound, and that the per-access worst case never
    /// shrinks when the level rises.
    #[test]
    fn all_engines_respect_the_degree_clamp_at_every_level() {
        let kinds = [
            PrefetcherKind::Berti,
            PrefetcherKind::Ipcp,
            PrefetcherKind::Bingo,
            PrefetcherKind::SppPpf,
            PrefetcherKind::IpStride,
            PrefetcherKind::Stream,
            PrefetcherKind::NextLine,
            PrefetcherKind::Composite,
        ];
        for kind in kinds {
            for level in 1..=5u8 {
                let mut pf = build(kind);
                pf.set_level(level);
                let mut out = Vec::new();
                let mut peak = 0usize;
                let mut total = 0usize;
                for i in 0..600u64 {
                    out.clear();
                    pf.on_access(&access(0x400, 0x10_0000 + i * 64, i * 20), &mut out);
                    peak = peak.max(out.len());
                    total += out.len();
                    for c in &out {
                        pf.on_fill(c.line, i * 20 + 100);
                    }
                }
                // Bingo emits whole spatial footprints (region-sized, not
                // level-scaled) and IPCP fires several classifier classes
                // per access, each individually clamped; everything else
                // is bounded by its clamped degree or, for Composite, the
                // shared per-access budget. All sit below the 32-entry
                // prefetch queue.
                let bound = match kind {
                    PrefetcherKind::Bingo | PrefetcherKind::Ipcp => 2 * MAX_LEVEL_DEGREE,
                    _ => MAX_LEVEL_DEGREE,
                };
                assert!(
                    peak <= bound,
                    "{kind:?} level {level}: {peak} candidates in one access (cap {bound})"
                );
                assert!(
                    total > 0,
                    "{kind:?} level {level}: clamping must not silence the engine"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn building_none_panics() {
        let _ = build(PrefetcherKind::None);
    }
}
