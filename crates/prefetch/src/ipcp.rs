//! IPCP: instruction-pointer classifier based spatial prefetching
//! (Pakalapati & Panda, ISCA '20).
//!
//! IPCP classifies load IPs into three classes and dedicates a lightweight
//! prefetcher to each: **GS** (global stream — dense region traversal,
//! deep next-line prefetching), **CS** (constant stride), and **CPLX**
//! (complex — delta-signature correlated). Classification priority is
//! GS > CS > CPLX, as in the original bouquet.

use crate::{degree_for_level, AccessInfo, PrefetchCandidate, Prefetcher};
use clip_types::{Ip, LineAddr};

const IP_TABLE: usize = 128;
const CPLX_TABLE: usize = 512;
const REGION_TABLE: usize = 16;
/// 2 KiB regions = 32 lines, as in the IPCP paper's GS detection.
const REGION_LINES: u64 = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IpClass {
    None,
    GlobalStream,
    ConstantStride,
    Complex,
}

#[derive(Debug, Clone, Copy)]
struct IpEntry {
    tag: u64,
    last_line: u64,
    stride: i64,
    stride_conf: u8,
    /// Rolling signature of recent deltas for the CPLX class.
    sig: u16,
    class: IpClass,
    class_conf: u8,
}

impl IpEntry {
    fn new(tag: u64) -> Self {
        IpEntry {
            tag,
            last_line: 0,
            stride: 0,
            stride_conf: 0,
            sig: 0,
            class: IpClass::None,
            class_conf: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RegionEntry {
    region: u64,
    touched: u32,
    dense: bool,
    dir_pos: u8,
    dir_neg: u8,
    last_line: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CplxEntry {
    delta: i64,
    conf: u8,
}

/// The IPCP prefetcher bouquet.
#[derive(Debug, Clone)]
pub struct Ipcp {
    ips: Vec<Option<IpEntry>>,
    regions: [RegionEntry; REGION_TABLE],
    cplx: Vec<CplxEntry>,
    degree: usize,
}

impl Ipcp {
    /// Creates IPCP with the default degree (3 at level 3).
    pub fn new() -> Self {
        Ipcp {
            ips: vec![None; IP_TABLE],
            regions: [RegionEntry::default(); REGION_TABLE],
            cplx: vec![CplxEntry::default(); CPLX_TABLE],
            degree: 3,
        }
    }

    fn update_region(&mut self, line: u64) -> (bool, i64) {
        let region = line / REGION_LINES;
        let slot = (clip_types::hash64(region) as usize) % REGION_TABLE;
        let e = &mut self.regions[slot];
        if e.region != region {
            *e = RegionEntry {
                region,
                touched: 1,
                dense: false,
                dir_pos: 0,
                dir_neg: 0,
                last_line: line,
            };
            return (false, 1);
        }
        e.touched += 1;
        if line > e.last_line {
            e.dir_pos = e.dir_pos.saturating_add(1);
        } else if line < e.last_line {
            e.dir_neg = e.dir_neg.saturating_add(1);
        }
        e.last_line = line;
        // Dense: 75% of the lines seen → stream behaviour.
        if e.touched >= (REGION_LINES as u32 * 3) / 4 {
            e.dense = true;
        }
        let dir = if e.dir_pos >= e.dir_neg { 1 } else { -1 };
        (e.dense, dir)
    }
}

impl Default for Ipcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Ipcp {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.addr.line().raw();
        let ip = info.ip.raw();
        let (dense, dir) = self.update_region(line);

        let slot = (clip_types::hash64(ip) as usize) % IP_TABLE;
        let e = match &mut self.ips[slot] {
            Some(e) if e.tag == ip => e,
            e => {
                *e = Some(IpEntry::new(ip));
                let e = e.as_mut().expect("just assigned");
                e.last_line = line;
                return;
            }
        };

        let delta = line as i64 - e.last_line as i64;
        e.last_line = line;
        if delta == 0 {
            return;
        }

        // Stride training.
        if delta == e.stride {
            e.stride_conf = (e.stride_conf + 1).min(3);
        } else {
            e.stride_conf = e.stride_conf.saturating_sub(1);
            if e.stride_conf == 0 {
                e.stride = delta;
            }
        }

        // CPLX training: signature → next delta.
        let small_delta = delta.clamp(-63, 63);
        let cslot = (e.sig as usize) % CPLX_TABLE;
        let c = &mut self.cplx[cslot];
        if c.delta == small_delta {
            c.conf = (c.conf + 1).min(3);
        } else if c.conf == 0 {
            c.delta = small_delta;
            c.conf = 1;
        } else {
            c.conf -= 1;
        }
        e.sig = ((e.sig << 4) ^ (small_delta as u16 & 0x3f)) & 0xfff;

        // Classification, GS > CS > CPLX.
        let new_class = if dense {
            IpClass::GlobalStream
        } else if e.stride_conf >= 2 {
            IpClass::ConstantStride
        } else if self.cplx[(e.sig as usize) % CPLX_TABLE].conf >= 2 {
            IpClass::Complex
        } else {
            IpClass::None
        };
        if new_class == e.class {
            e.class_conf = (e.class_conf + 1).min(3);
        } else {
            e.class_conf = e.class_conf.saturating_sub(1);
            if e.class_conf == 0 {
                e.class = new_class;
            }
        }

        let trigger = Ip::new(ip);
        match e.class {
            IpClass::GlobalStream => {
                // Deep stream in the region direction.
                for d in 1..=(self.degree as i64 * 2) {
                    out.push(PrefetchCandidate {
                        line: LineAddr::new(line.wrapping_add_signed(dir * d)),
                        trigger_ip: trigger,
                        fill_l1: d <= self.degree as i64,
                        engine: 0,
                    });
                }
            }
            IpClass::ConstantStride => {
                for d in 1..=self.degree as i64 {
                    out.push(PrefetchCandidate {
                        line: LineAddr::new(line.wrapping_add_signed(e.stride * d)),
                        trigger_ip: trigger,
                        fill_l1: true,
                        engine: 0,
                    });
                }
            }
            IpClass::Complex => {
                // Walk the delta-signature chain.
                let mut sig = e.sig;
                let mut l = line;
                for step in 0..self.degree {
                    let c = self.cplx[(sig as usize) % CPLX_TABLE];
                    if c.conf < 2 || c.delta == 0 {
                        break;
                    }
                    l = l.wrapping_add_signed(c.delta);
                    // A delta chain can loop back onto the trigger line
                    // (e.g. +3 then -3); such a candidate is pure waste.
                    if l != line {
                        out.push(PrefetchCandidate {
                            line: LineAddr::new(l),
                            trigger_ip: trigger,
                            fill_l1: step == 0,
                            engine: 0,
                        });
                    }
                    sig = ((sig << 4) ^ (c.delta as u16 & 0x3f)) & 0xfff;
                }
            }
            IpClass::None => {}
        }
    }

    fn set_level(&mut self, level: u8) {
        self.degree = degree_for_level(3, level);
    }

    fn name(&self) -> &'static str {
        "IPCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::Addr;

    fn access(ip: u64, line: u64, cycle: u64) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(line * 64),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    #[test]
    fn classifies_constant_stride() {
        let mut pf = Ipcp::new();
        let mut out = Vec::new();
        for i in 0..30u64 {
            out.clear();
            pf.on_access(&access(0x900, 100_000 + i * 5, i), &mut out);
        }
        assert!(!out.is_empty());
        // All candidates are multiples of the stride away.
        let base = 100_000 + 29 * 5;
        assert!(out
            .iter()
            .all(|c| (c.line.raw() as i64 - base as i64) % 5 == 0));
    }

    #[test]
    fn dense_region_triggers_stream_class() {
        let mut pf = Ipcp::new();
        let mut out = Vec::new();
        // Touch 30 of 32 region lines sequentially.
        for i in 0..30u64 {
            out.clear();
            pf.on_access(&access(0xA00, 32_000 + i, i), &mut out);
        }
        // Stream class prefetches deeper than stride degree.
        assert!(out.len() >= 3, "GS must be aggressive: {}", out.len());
    }

    #[test]
    fn quiet_on_first_touch() {
        let mut pf = Ipcp::new();
        let mut out = Vec::new();
        pf.on_access(&access(0xB00, 1, 0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn complex_pattern_learns_repeating_deltas() {
        let mut pf = Ipcp::new();
        let mut out = Vec::new();
        // Repeating delta pattern +1,+3,+1,+3... shifts stride confidence
        // but the signature table should learn it.
        let mut line = 500_000u64;
        let mut issued = 0;
        for i in 0..200u64 {
            line += if i % 2 == 0 { 1 } else { 3 };
            out.clear();
            pf.on_access(&access(0xC00, line, i), &mut out);
            issued += out.len();
        }
        assert!(issued > 0, "CPLX class should eventually fire");
    }
}
