//! Simple baseline prefetchers: next-line, IP-stride, and a POWER4-style
//! stream prefetcher. These are the hosts that classic throttlers (FDP,
//! HPAC) were designed for; the paper contrasts their modest accuracy with
//! Berti's.

use crate::{degree_for_level, AccessInfo, PrefetchCandidate, Prefetcher};
#[cfg(test)]
use clip_types::Ip;
use clip_types::{Cycle, LineAddr};

/// Prefetches the next `degree` sequential lines on every miss.
#[derive(Debug, Clone)]
pub struct NextLine {
    degree: usize,
}

impl NextLine {
    /// Creates a next-line prefetcher with degree 1.
    pub fn new() -> Self {
        NextLine { degree: 1 }
    }
}

impl Default for NextLine {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        if info.hit {
            return;
        }
        let line = info.addr.line();
        for d in 1..=self.degree as i64 {
            out.push(PrefetchCandidate {
                line: line.offset_by(d),
                trigger_ip: info.ip,
                fill_l1: true,
                engine: 0,
            });
        }
    }

    fn set_level(&mut self, level: u8) {
        self.degree = degree_for_level(1, level);
    }

    fn name(&self) -> &'static str {
        "Next-line"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    ip: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// Classic per-IP constant-stride prefetcher (Fu et al., MICRO '92).
#[derive(Debug, Clone)]
pub struct IpStride {
    table: Vec<StrideEntry>,
    degree: usize,
}

const STRIDE_TABLE: usize = 256;
const STRIDE_CONF_MAX: u8 = 3;

impl IpStride {
    /// Creates an IP-stride prefetcher with degree 2.
    pub fn new() -> Self {
        IpStride {
            table: vec![StrideEntry::default(); STRIDE_TABLE],
            degree: 2,
        }
    }
}

impl Default for IpStride {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for IpStride {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.addr.line().raw();
        let idx = (clip_types::hash64(info.ip.raw()) as usize) % STRIDE_TABLE;
        let e = &mut self.table[idx];
        if e.ip != info.ip.raw() {
            *e = StrideEntry {
                ip: info.ip.raw(),
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = line as i64 - e.last_line as i64;
        e.last_line = line;
        if stride == 0 {
            return;
        }
        if stride == e.stride {
            e.confidence = (e.confidence + 1).min(STRIDE_CONF_MAX);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
            return;
        }
        if e.confidence >= 2 {
            for d in 1..=self.degree as i64 {
                out.push(PrefetchCandidate {
                    line: info.addr.line().offset_by(e.stride * d),
                    trigger_ip: info.ip,
                    fill_l1: true,
                    engine: 0,
                });
            }
        }
    }

    fn set_level(&mut self, level: u8) {
        self.degree = degree_for_level(2, level);
    }

    fn name(&self) -> &'static str {
        "IP-stride"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    valid: bool,
    last_line: u64,
    direction: i64,
    confidence: u8,
    last_used: Cycle,
}

/// POWER4-style stream prefetcher: detects sequential miss streams within
/// aligned regions and runs ahead of them.
#[derive(Debug, Clone)]
pub struct Stream {
    streams: Vec<StreamEntry>,
    degree: usize,
    distance: usize,
}

const STREAM_ENTRIES: usize = 16;
/// Streams are confined to 4 KiB regions, like the hardware they model.
const REGION_LINES: u64 = 64;

impl Stream {
    /// Creates a stream prefetcher with degree 2, distance 4.
    pub fn new() -> Self {
        Stream {
            streams: vec![StreamEntry::default(); STREAM_ENTRIES],
            degree: 2,
            distance: 4,
        }
    }
}

impl Default for Stream {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Stream {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        if info.hit {
            return;
        }
        let line = info.addr.line().raw();
        // Match an existing stream whose head is within the window.
        for e in self.streams.iter_mut() {
            if !e.valid {
                continue;
            }
            let delta = line as i64 - e.last_line as i64;
            if delta != 0 && delta.signum() == e.direction.signum() && delta.abs() <= 4 {
                e.last_line = line;
                e.confidence = (e.confidence + 1).min(3);
                e.last_used = info.cycle;
                if e.confidence >= 2 {
                    for d in 1..=self.degree as i64 {
                        let target =
                            line as i64 + e.direction.signum() * (self.distance as i64 + d);
                        if target >= 0 && (target as u64) / REGION_LINES == line / REGION_LINES {
                            out.push(PrefetchCandidate {
                                line: LineAddr::new(target as u64),
                                trigger_ip: info.ip,
                                fill_l1: true,
                                engine: 0,
                            });
                        }
                    }
                }
                return;
            }
            // Allocation check: adjacent first-touch establishes direction.
            if delta.abs() == 1 && e.confidence == 0 {
                e.direction = delta;
                e.last_line = line;
                e.confidence = 1;
                e.last_used = info.cycle;
                return;
            }
        }
        // Allocate a new tracking entry (LRU).
        let victim = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.last_used } else { 0 })
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.streams[victim] = StreamEntry {
            valid: true,
            last_line: line,
            direction: 1,
            confidence: 0,
            last_used: info.cycle,
        };
    }

    fn set_level(&mut self, level: u8) {
        self.degree = degree_for_level(2, level);
        self.distance = degree_for_level(4, level);
    }

    fn name(&self) -> &'static str {
        "Stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::Addr;

    fn access(ip: u64, line: u64, cycle: Cycle) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(line * 64),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    #[test]
    fn next_line_prefetches_successor() {
        let mut pf = NextLine::new();
        let mut out = Vec::new();
        pf.on_access(&access(1, 100, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, LineAddr::new(101));
    }

    #[test]
    fn next_line_skips_hits() {
        let mut pf = NextLine::new();
        let mut out = Vec::new();
        let mut a = access(1, 100, 0);
        a.hit = true;
        pf.on_access(&a, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ip_stride_learns_stride_of_three() {
        let mut pf = IpStride::new();
        let mut out = Vec::new();
        for i in 0..10u64 {
            out.clear();
            pf.on_access(&access(7, 100 + i * 3, i), &mut out);
        }
        assert!(!out.is_empty());
        assert_eq!(out[0].line, LineAddr::new(100 + 9 * 3 + 3));
    }

    #[test]
    fn ip_stride_distrusts_changing_strides() {
        let mut pf = IpStride::new();
        let mut out = Vec::new();
        let pattern = [0u64, 5, 7, 20, 22, 90];
        for (i, l) in pattern.iter().enumerate() {
            pf.on_access(&access(9, *l, i as u64), &mut out);
        }
        assert!(out.is_empty(), "no stable stride, no prefetch");
    }

    #[test]
    fn stream_follows_sequential_misses() {
        let mut pf = Stream::new();
        let mut out = Vec::new();
        for i in 0..10u64 {
            out.clear();
            pf.on_access(&access(3, 1000 + i, i * 10), &mut out);
        }
        assert!(!out.is_empty(), "established stream must prefetch ahead");
        assert!(out.iter().all(|c| c.line.raw() > 1009));
    }

    #[test]
    fn stream_respects_region_boundary() {
        let mut pf = Stream::new();
        let mut out = Vec::new();
        // Approach the end of a 64-line region.
        for i in 0..8u64 {
            out.clear();
            pf.on_access(&access(3, 56 + i, i * 10), &mut out);
        }
        for c in &out {
            assert!(c.line.raw() < 64, "must not cross 4K region: {:?}", c.line);
        }
    }

    #[test]
    fn levels_scale_degree() {
        let mut pf = NextLine::new();
        let mut out = Vec::new();
        pf.set_level(5);
        pf.on_access(&access(1, 100, 0), &mut out);
        let aggressive = out.len();
        out.clear();
        pf.set_level(1);
        pf.on_access(&access(1, 200, 1), &mut out);
        let conservative = out.len();
        assert!(aggressive > conservative);
    }
}
