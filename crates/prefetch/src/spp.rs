//! SPP-PPF: signature path prefetching (Kim et al., MICRO '16) with
//! perceptron prefetch filtering (Bhatia et al., ISCA '19) — the paper's
//! state-of-the-art L2 prefetcher.
//!
//! SPP tracks, per 4 KiB page, a compressed *signature* of the recent
//! delta path and predicts the next delta from a pattern table, walking
//! the path speculatively (lookahead) while the product of per-step
//! confidences stays above a threshold. PPF lets the lookahead run deeper
//! regardless of confidence and gates each candidate with a perceptron
//! over features of the candidate, trained by prefetch-usefulness
//! feedback.

use crate::{AccessInfo, PrefetchCandidate, Prefetcher};
#[cfg(test)]
use clip_types::Ip;
use clip_types::LineAddr;

const PAGE_TABLE: usize = 256;
const PATTERN_TABLE: usize = 2048;
const DELTAS_PER_SIG: usize = 4;
const SIG_BITS: u16 = 12;
const LOOKAHEAD_MAX: usize = 8;
/// Confidence floor below which SPP alone would stop; PPF keeps walking
/// until `PPF_FLOOR`.
const SPP_CONF_FLOOR: f64 = 0.30;
const PPF_FLOOR: f64 = 0.10;
/// Lines per 4 KiB page.
const PAGE_LINES: i64 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct PageEntry {
    tag: u64,
    last_offset: i64,
    sig: u16,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternSlot {
    delta: i64,
    counter: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternEntry {
    slots: [PatternSlot; DELTAS_PER_SIG],
    total: u16,
}

/// Perceptron prefetch filter: one weight table per feature.
#[derive(Debug, Clone)]
struct Ppf {
    w_sig: Vec<i16>,
    w_ip: Vec<i16>,
    w_offset: Vec<i16>,
    w_depth: Vec<i16>,
    /// Recently issued prefetches awaiting a verdict: (line, features).
    pending: std::collections::VecDeque<(u64, [usize; 4])>,
}

const PPF_TABLE: usize = 1024;
const PPF_THRESHOLD: i32 = 0;
const PPF_WEIGHT_MAX: i16 = 31;
const PPF_WEIGHT_MIN: i16 = -32;
const PPF_PENDING: usize = 1024;

impl Ppf {
    fn new() -> Self {
        Ppf {
            w_sig: vec![0; PPF_TABLE],
            w_ip: vec![0; PPF_TABLE],
            w_offset: vec![0; 64],
            w_depth: vec![0; LOOKAHEAD_MAX + 1],
            pending: std::collections::VecDeque::with_capacity(PPF_PENDING),
        }
    }

    fn features(sig: u16, ip: u64, offset: i64, depth: usize) -> [usize; 4] {
        [
            (clip_types::hash64(sig as u64) as usize) % PPF_TABLE,
            (clip_types::hash64(ip) as usize) % PPF_TABLE,
            (offset.rem_euclid(64)) as usize,
            depth.min(LOOKAHEAD_MAX),
        ]
    }

    fn score(&self, f: [usize; 4]) -> i32 {
        self.w_sig[f[0]] as i32
            + self.w_ip[f[1]] as i32
            + self.w_offset[f[2]] as i32
            + self.w_depth[f[3]] as i32
    }

    fn record(&mut self, line: u64, f: [usize; 4]) {
        if self.pending.len() >= PPF_PENDING {
            self.pending.pop_front();
        }
        self.pending.push_back((line, f));
    }

    fn train(&mut self, line: u64, useful: bool) {
        let Some(pos) = self.pending.iter().position(|(l, _)| *l == line) else {
            return;
        };
        let (_, f) = self
            .pending
            .swap_remove_back(pos)
            .expect("position is valid");
        let d: i16 = if useful { 1 } else { -1 };
        for (w, i) in [
            (&mut self.w_sig, f[0]),
            (&mut self.w_ip, f[1]),
            (&mut self.w_offset, f[2]),
            (&mut self.w_depth, f[3]),
        ] {
            w[i] = (w[i] + d).clamp(PPF_WEIGHT_MIN, PPF_WEIGHT_MAX);
        }
    }
}

/// The SPP-PPF prefetcher.
#[derive(Debug, Clone)]
pub struct SppPpf {
    pages: Vec<PageEntry>,
    patterns: Vec<PatternEntry>,
    ppf: Ppf,
    lookahead_max: usize,
}

impl SppPpf {
    /// Creates SPP-PPF with default tuning.
    pub fn new() -> Self {
        SppPpf {
            pages: vec![PageEntry::default(); PAGE_TABLE],
            patterns: vec![PatternEntry::default(); PATTERN_TABLE],
            ppf: Ppf::new(),
            lookahead_max: LOOKAHEAD_MAX,
        }
    }

    fn sig_update(sig: u16, delta: i64) -> u16 {
        let d = (delta.rem_euclid(128)) as u16;
        ((sig << 3) ^ d) & ((1 << SIG_BITS) - 1)
    }

    fn pattern_update(&mut self, sig: u16, delta: i64) {
        let e = &mut self.patterns[(sig as usize) % PATTERN_TABLE];
        e.total = e.total.saturating_add(1);
        if let Some(s) = e
            .slots
            .iter_mut()
            .find(|s| s.delta == delta && s.counter > 0)
        {
            s.counter = s.counter.saturating_add(1);
        } else if let Some(s) = e.slots.iter_mut().min_by_key(|s| s.counter) {
            *s = PatternSlot { delta, counter: 1 };
        }
        if e.total >= 256 {
            e.total /= 2;
            for s in e.slots.iter_mut() {
                s.counter /= 2;
            }
        }
    }

    fn best_delta(&self, sig: u16) -> Option<(i64, f64)> {
        let e = &self.patterns[(sig as usize) % PATTERN_TABLE];
        if e.total == 0 {
            return None;
        }
        e.slots
            .iter()
            .filter(|s| s.counter > 0 && s.delta != 0)
            .max_by_key(|s| s.counter)
            .map(|s| (s.delta, s.counter as f64 / e.total as f64))
    }
}

impl Default for SppPpf {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for SppPpf {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.addr.line();
        let page = line.page();
        let offset = line.page_offset() as i64;
        let slot = (clip_types::hash64(page) as usize) % PAGE_TABLE;

        let (mut sig, known) = {
            let e = &self.pages[slot];
            if e.valid && e.tag == page {
                (e.sig, true)
            } else {
                (0u16, false)
            }
        };

        if known {
            let delta = offset - self.pages[slot].last_offset;
            if delta != 0 {
                self.pattern_update(sig, delta);
                sig = Self::sig_update(sig, delta);
            }
        }
        self.pages[slot] = PageEntry {
            tag: page,
            last_offset: offset,
            sig,
            valid: true,
        };
        if !known {
            return;
        }

        // Lookahead walk.
        let mut cur_sig = sig;
        let mut cur_off = offset;
        let mut conf = 1.0f64;
        let page_base = page * PAGE_LINES as u64;
        for depth in 1..=self.lookahead_max {
            let Some((delta, c)) = self.best_delta(cur_sig) else {
                break;
            };
            conf *= c;
            if conf < PPF_FLOOR {
                break;
            }
            cur_off += delta;
            if !(0..PAGE_LINES).contains(&cur_off) {
                break; // SPP does not cross pages
            }
            let target = LineAddr::new(page_base + cur_off as u64);
            let f = Ppf::features(cur_sig, info.ip.raw(), cur_off, depth);
            // PPF gates every candidate: SPP proposes (walking deeper than
            // its own confidence floor would allow), the perceptron
            // disposes. Candidates SPP itself is confident about still go
            // through the filter, so sustained uselessness feedback can
            // shut even them off.
            let _ = SPP_CONF_FLOOR; // retained for documentation parity
                                    // A delta path can revisit the trigger offset (deltas summing
                                    // to zero); prefetching it would be a self-prefetch.
            let issue = cur_off != offset && self.ppf.score(f) >= PPF_THRESHOLD;
            if issue {
                self.ppf.record(target.raw(), f);
                out.push(PrefetchCandidate {
                    line: target,
                    trigger_ip: info.ip,
                    fill_l1: false,
                    engine: 0,
                });
            }
            cur_sig = Self::sig_update(cur_sig, delta);
        }
    }

    fn on_prefetch_result(&mut self, line: LineAddr, useful: bool) {
        self.ppf.train(line.raw(), useful);
    }

    fn set_level(&mut self, level: u8) {
        self.lookahead_max = crate::degree_for_level(LOOKAHEAD_MAX, level).min(16);
    }

    fn name(&self) -> &'static str {
        "SPP-PPF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::Addr;

    fn access(ip: u64, line: u64, cycle: u64) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(line * 64),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    #[test]
    fn learns_unit_stride_within_page() {
        let mut pf = SppPpf::new();
        let mut out = Vec::new();
        for i in 0..40u64 {
            out.clear();
            pf.on_access(&access(0x400, 64 * 100 + i, i), &mut out);
        }
        assert!(!out.is_empty(), "stride path must prefetch");
        // All candidates stay in the page.
        assert!(out.iter().all(|c| c.line.page() == 100));
    }

    #[test]
    fn lookahead_goes_multiple_steps() {
        let mut pf = SppPpf::new();
        let mut out = Vec::new();
        // Strong unit-delta pattern across many pages builds confidence.
        for p in 0..20u64 {
            for i in 0..30u64 {
                out.clear();
                pf.on_access(&access(0x400, 64 * (200 + p) + i, p * 100 + i), &mut out);
            }
        }
        assert!(out.len() >= 2, "confident path walks ahead: {}", out.len());
    }

    #[test]
    fn ppf_training_suppresses_useless_paths() {
        let mut pf = SppPpf::new();
        let mut out = Vec::new();
        // Build a weak alternating pattern and mark everything useless.
        for round in 0..60u64 {
            for i in 0..20u64 {
                out.clear();
                let off = (i * 3) % 60;
                pf.on_access(
                    &access(0x500, 64 * (300 + round) + off, round * 100 + i),
                    &mut out,
                );
                for c in &out {
                    pf.on_prefetch_result(c.line, false);
                }
            }
        }
        // After sustained negative feedback, deep (low-confidence)
        // candidates should be rarer than at the start.
        let mut late = 0;
        for i in 0..20u64 {
            out.clear();
            let off = (i * 3) % 60;
            pf.on_access(&access(0x500, 64 * 999 + off, 1_000_000 + i), &mut out);
            late += out.len();
        }
        // Not a strict zero (SPP still fires at high confidence), but the
        // filter must bound the flood.
        assert!(late <= 40, "PPF must bound useless prefetching: {late}");
    }

    #[test]
    fn no_cross_page_prefetches() {
        let mut pf = SppPpf::new();
        let mut out = Vec::new();
        for i in 0..63u64 {
            out.clear();
            pf.on_access(&access(0x600, 64 * 50 + i, i), &mut out);
        }
        for c in &out {
            assert_eq!(c.line.page(), 50);
        }
    }
}
