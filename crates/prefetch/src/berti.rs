//! Berti: the accurate local-delta L1 prefetcher (Navarro-Torres et al.,
//! MICRO '22) — the paper's primary host prefetcher.
//!
//! Berti learns, per load IP, the set of *timely local deltas*: distances
//! `d` such that when the IP touches line `x`, it touched `x - d` long
//! enough ago that a prefetch issued then would have arrived in time. Each
//! delta's *local coverage* (fraction of the IP's accesses it would have
//! covered) is measured with per-delta counters over a rolling window, and
//! only deltas above a coverage watermark are used: high-coverage deltas
//! fill to L1, mid-coverage deltas to L2. This is what gives Berti its
//! >82.9% accuracy in the paper.

use crate::{degree_for_level, AccessInfo, PrefetchCandidate, Prefetcher};
use clip_types::{Cycle, LineAddr};

const IP_TABLE: usize = 64;
const HISTORY_DEPTH: usize = 16;
const MAX_DELTAS: usize = 8;
const MAX_DELTA_MAG: i64 = 512;
/// Coverage watermark for L1 fills.
const HIGH_WATERMARK: f64 = 0.60;
/// Coverage watermark for L2 fills.
const LOW_WATERMARK: f64 = 0.40;
/// Rolling-window size before counters are halved.
const WINDOW: u32 = 64;
/// Tracked in-flight misses for latency estimation.
const LATENCY_RING: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct DeltaStat {
    delta: i64,
    /// Occurrences where the delta matched *and* a prefetch issued at the
    /// earlier access would have arrived in time.
    timely: u32,
    /// Occurrences where the delta matched at all (timely or not).
    hits: u32,
    total: u32,
}

#[derive(Debug, Clone)]
struct IpEntry {
    tag: u64,
    history: [(u64, Cycle); HISTORY_DEPTH],
    hist_len: usize,
    hist_head: usize,
    deltas: Vec<DeltaStat>,
    accesses: u32,
}

impl IpEntry {
    fn new(tag: u64) -> Self {
        IpEntry {
            tag,
            history: [(0, 0); HISTORY_DEPTH],
            hist_len: 0,
            hist_head: 0,
            deltas: Vec::with_capacity(MAX_DELTAS),
            accesses: 0,
        }
    }

    fn push_history(&mut self, line: u64, cycle: Cycle) {
        self.history[self.hist_head] = (line, cycle);
        self.hist_head = (self.hist_head + 1) % HISTORY_DEPTH;
        self.hist_len = (self.hist_len + 1).min(HISTORY_DEPTH);
    }

    fn iter_history(&self) -> impl Iterator<Item = (u64, Cycle)> + '_ {
        self.history.iter().copied().take(self.hist_len)
    }
}

/// The Berti prefetcher. See the module docs.
///
/// # Examples
///
/// ```
/// use clip_prefetch::{AccessInfo, Berti, Prefetcher};
/// use clip_types::{Addr, Ip};
///
/// let mut berti = Berti::new();
/// let mut out = Vec::new();
/// // A slow unit-stride stream: the delta becomes timely and covered.
/// for i in 0..100u64 {
///     out.clear();
///     berti.on_access(
///         &AccessInfo {
///             ip: Ip::new(0x400),
///             addr: Addr::new((1000 + i) * 64),
///             hit: false,
///             is_store: false,
///             cycle: i * 300,
///         },
///         &mut out,
///     );
/// }
/// assert!(!out.is_empty(), "learned stream prefetches ahead");
/// ```
#[derive(Debug, Clone)]
pub struct Berti {
    table: Vec<Option<IpEntry>>,
    /// Recent demand misses awaiting fill, for latency measurement.
    inflight: [(u64, Cycle); LATENCY_RING],
    inflight_head: usize,
    /// EWMA of observed miss latency in cycles.
    latency_est: f64,
    degree: usize,
}

impl Berti {
    /// Creates a Berti prefetcher with the tuning used in the paper's
    /// 64-core experiments (degree 4 at level 3).
    pub fn new() -> Self {
        Berti {
            table: (0..IP_TABLE).map(|_| None).collect(),
            inflight: [(u64::MAX, 0); LATENCY_RING],
            inflight_head: 0,
            latency_est: 100.0,
            degree: 4,
        }
    }

    /// Current miss-latency estimate (cycles), used for timeliness.
    pub fn latency_estimate(&self) -> f64 {
        self.latency_est
    }

    fn slot(ip: u64) -> usize {
        (clip_types::hash64(ip) as usize) % IP_TABLE
    }
}

impl Default for Berti {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Berti {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let line = info.addr.line().raw();
        let ip = info.ip.raw();
        let slot = Self::slot(ip);

        if !info.hit {
            self.inflight[self.inflight_head] = (line, info.cycle);
            self.inflight_head = (self.inflight_head + 1) % LATENCY_RING;
        }

        let latency = self.latency_est as u64;
        let entry = match &mut self.table[slot] {
            Some(e) if e.tag == ip => e,
            e => {
                *e = Some(IpEntry::new(ip));
                e.as_mut().expect("just assigned")
            }
        };

        entry.accesses += 1;

        // Measure which known deltas would have covered this access, and
        // discover new deltas from the history.
        let hist: Vec<(u64, Cycle)> = entry.iter_history().collect();
        for d in entry.deltas.iter_mut() {
            d.total += 1;
            let wanted = line.wrapping_add_signed(-d.delta);
            if let Some(&(_, c)) = hist.iter().find(|(l, _)| *l == wanted) {
                d.hits += 1;
                if info.cycle.saturating_sub(c) >= latency {
                    d.timely += 1;
                }
            }
            if d.total >= WINDOW {
                d.total /= 2;
                d.timely /= 2;
                d.hits /= 2;
            }
        }
        for &(l, c) in &hist {
            let delta = line as i64 - l as i64;
            if delta == 0 || delta.abs() > MAX_DELTA_MAG {
                continue;
            }
            if entry.deltas.iter().any(|d| d.delta == delta) {
                continue;
            }
            let timely = u32::from(info.cycle.saturating_sub(c) >= latency);
            if entry.deltas.len() < MAX_DELTAS {
                entry.deltas.push(DeltaStat {
                    delta,
                    timely,
                    hits: 1,
                    total: 1,
                });
            } else if let Some(worst) = entry.deltas.iter_mut().min_by(|a, b| {
                let ca = a.hits as f64 / a.total.max(1) as f64;
                let cb = b.hits as f64 / b.total.max(1) as f64;
                ca.partial_cmp(&cb).expect("coverage is finite")
            }) {
                if (worst.hits as f64 / worst.total.max(1) as f64) < 0.1 {
                    *worst = DeltaStat {
                        delta,
                        timely,
                        hits: 1,
                        total: 1,
                    };
                }
            }
        }

        entry.push_history(line, info.cycle);

        // Issue from the best-coverage deltas: timely coverage above the
        // high watermark fills to L1; otherwise plain coverage above the
        // low watermark fills to L2 (Berti's fill-level watermarks).
        let mut ranked: Vec<&DeltaStat> = entry.deltas.iter().filter(|d| d.total >= 4).collect();
        ranked.sort_by(|a, b| {
            let ka = (a.timely as f64 * 2.0 + a.hits as f64) / a.total as f64;
            let kb = (b.timely as f64 * 2.0 + b.hits as f64) / b.total as f64;
            kb.partial_cmp(&ka).expect("coverage is finite")
        });
        let mut issued = 0;
        #[allow(clippy::explicit_counter_loop)]
        // `issued` counts emitted candidates, not iterations
        for d in ranked {
            if issued >= self.degree {
                break;
            }
            let cov_timely = d.timely as f64 / d.total as f64;
            let cov_all = d.hits as f64 / d.total as f64;
            if cov_all < LOW_WATERMARK {
                break;
            }
            let target = line.wrapping_add_signed(d.delta);
            out.push(PrefetchCandidate {
                line: LineAddr::new(target),
                trigger_ip: info.ip,
                fill_l1: cov_timely >= HIGH_WATERMARK,
                engine: 0,
            });
            issued += 1;
        }
    }

    fn on_fill(&mut self, line: LineAddr, cycle: Cycle) {
        let raw = line.raw();
        for (l, c) in self.inflight.iter_mut() {
            if *l == raw {
                let lat = cycle.saturating_sub(*c) as f64;
                self.latency_est = 0.9 * self.latency_est + 0.1 * lat;
                *l = u64::MAX;
                break;
            }
        }
    }

    fn set_level(&mut self, level: u8) {
        self.degree = degree_for_level(4, level);
    }

    fn name(&self) -> &'static str {
        "Berti"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::{Addr, Ip};

    fn access(ip: u64, line: u64, cycle: Cycle) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(line * 64),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    #[test]
    fn learns_unit_delta_with_l1_fill() {
        let mut pf = Berti::new();
        let mut out = Vec::new();
        for i in 0..100u64 {
            out.clear();
            // Accesses far apart in time: timely.
            pf.on_access(&access(0x400, 1000 + i, i * 300), &mut out);
        }
        assert!(!out.is_empty(), "unit stream must produce prefetches");
        assert!(out.iter().any(|c| c.fill_l1), "high coverage → L1 fill");
        assert_eq!(out[0].line, LineAddr::new(1000 + 99 + 1));
    }

    #[test]
    fn untimely_deltas_demote_to_l2_fill() {
        let mut pf = Berti::new();
        let mut out = Vec::new();
        // Accesses back-to-back (1 cycle apart): never timely vs ~100-cycle
        // latency estimate, so nothing may claim an L1 fill.
        for i in 0..200u64 {
            out.clear();
            pf.on_access(&access(0x400, 2000 + i, i), &mut out);
        }
        assert!(
            out.iter().all(|c| !c.fill_l1),
            "deltas that cannot be timely must not fill the L1: {out:?}"
        );
        assert!(
            !out.is_empty(),
            "high-coverage non-timely deltas still prefetch toward the L2"
        );
    }

    #[test]
    fn random_stream_stays_quiet() {
        let mut pf = Berti::new();
        let mut out = Vec::new();
        let mut total = 0;
        for i in 0..2000u64 {
            out.clear();
            pf.on_access(
                &access(0x400, clip_types::hash64(i) % (1 << 24), i * 200),
                &mut out,
            );
            total += out.len();
        }
        assert!(total < 200, "near-zero coverage on random: {total}");
    }

    #[test]
    fn latency_estimate_adapts() {
        let mut pf = Berti::new();
        let mut out = Vec::new();
        let start = pf.latency_estimate();
        for i in 0..50u64 {
            out.clear();
            pf.on_access(&access(0x500, 5000 + i, i * 1000), &mut out);
            // Fill arrives 400 cycles later.
            pf.on_fill(LineAddr::new(5000 + i), i * 1000 + 400);
        }
        assert!(
            pf.latency_estimate() > start,
            "estimate must move toward 400: {}",
            pf.latency_estimate()
        );
    }

    #[test]
    fn multiple_ips_do_not_interfere() {
        let mut pf = Berti::new();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for i in 0..80u64 {
            out_a.clear();
            out_b.clear();
            pf.on_access(&access(0xA00, 10_000 + i, i * 300), &mut out_a);
            pf.on_access(&access(0xB00, 90_000 + i * 4, i * 300 + 150), &mut out_b);
        }
        assert!(!out_a.is_empty());
        assert!(!out_b.is_empty());
        // The stride-4 IP prefetches multiples of 4 away.
        assert!(out_b
            .iter()
            .all(|c| (c.line.raw() as i64 - (90_000 + 79 * 4) as i64) % 4 == 0));
    }

    #[test]
    fn degree_bounds_candidates() {
        let mut pf = Berti::new();
        pf.set_level(1); // degree 1
        let mut out = Vec::new();
        for i in 0..100u64 {
            out.clear();
            pf.on_access(&access(0x400, 1000 + i, i * 300), &mut out);
        }
        assert!(out.len() <= 1);
    }
}
