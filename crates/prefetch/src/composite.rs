//! Composite prefetcher: 2–3 engines running concurrently behind one
//! [`Prefetcher`] surface, triage-style.
//!
//! Real deployments ensemble prefetchers (the triage-reeses design runs
//! BO + SMS + TableISB simultaneously under a shared `MAX_ALLOWED_DEGREE`
//! budget); the paper evaluates engines one at a time. [`Composite`] runs
//! Berti + SPP-PPF + next-line concurrently:
//!
//! * every candidate is tagged with its originating engine index, so
//!   downstream consumers (CLIP's utility buffer, the tile's pf-queue
//!   auditor) can account per engine;
//! * one shared degree budget ([`MAX_ALLOWED_DEGREE`]) caps the aggregate
//!   candidates per demand access, with engines drawing in fixed priority
//!   order and duplicate lines resolved to the earliest engine;
//! * throttling is two-level: the global FDP-style level (set by
//!   [`Prefetcher::set_level`]) combines with CLIP's per-engine levels
//!   (pushed via [`Prefetcher::set_engine_levels`]) by taking the
//!   minimum, so the criticality filter can starve one inaccurate engine
//!   down to a single line per access without touching the others.

use crate::{degree_for_level, AccessInfo, Berti, NextLine, PrefetchCandidate, Prefetcher, SppPpf};
use clip_types::{Cycle, LineAddr};

/// Engines inside the composite ensemble, in candidate priority order:
/// Berti (highest accuracy), SPP-PPF, next-line (cheapest, lowest
/// priority). Must stay `<= clip_types::MAX_PF_ENGINES`.
pub const COMPOSITE_ENGINES: usize = 3;

/// Shared per-access candidate budget across all engines, mirroring the
/// triage-reeses `MAX_ALLOWED_DEGREE` cap: no demand access may fan out
/// into more aggregate prefetches than this, no matter how many engines
/// fire.
pub const MAX_ALLOWED_DEGREE: usize = 8;

/// Baseline (level 3) per-engine degree the level scaling works from.
const ENGINE_BASE_DEGREE: usize = 4;

/// The composite ensemble. See the module docs for the arbitration rules.
pub struct Composite {
    engines: Vec<Box<dyn Prefetcher>>,
    /// Global FDP-style throttle level (1..=5), applied to every engine.
    global_level: u8,
    /// CLIP-provided per-engine levels (1..=5); the effective level of
    /// engine `e` is `min(global_level, engine_levels[e])`.
    engine_levels: [u8; COMPOSITE_ENGINES],
    /// Candidates admitted through the shared budget, per engine. Test
    /// and report surface for the starvation rule.
    issued: [u64; COMPOSITE_ENGINES],
    scratch: Vec<PrefetchCandidate>,
}

impl Composite {
    /// Builds the default Berti + SPP-PPF + next-line ensemble at level 3.
    pub fn new() -> Self {
        Composite {
            engines: vec![
                Box::new(Berti::new()),
                Box::new(SppPpf::new()),
                Box::new(NextLine::new()),
            ],
            global_level: 3,
            engine_levels: [5; COMPOSITE_ENGINES],
            issued: [0; COMPOSITE_ENGINES],
            scratch: Vec::new(),
        }
    }

    /// Short names of the member engines, in engine-index order.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Candidates each engine has pushed through the shared budget so far.
    pub fn issued_per_engine(&self) -> [u64; COMPOSITE_ENGINES] {
        self.issued
    }

    /// The level engine `e` actually runs at: the tighter of the global
    /// throttle and CLIP's per-engine arbitration level.
    fn effective_level(&self, e: usize) -> u8 {
        self.global_level.min(self.engine_levels[e])
    }

    /// Per-access candidate cap for one engine at its effective level,
    /// never exceeding the shared budget.
    fn engine_cap(&self, e: usize) -> usize {
        degree_for_level(ENGINE_BASE_DEGREE, self.effective_level(e)).min(MAX_ALLOWED_DEGREE)
    }

    /// Re-pushes the combined levels down into the member engines so
    /// their internal degrees (lookahead, stream distance) scale too.
    fn push_levels(&mut self) {
        for e in 0..COMPOSITE_ENGINES {
            let level = self.effective_level(e);
            self.engines[e].set_level(level);
        }
    }
}

impl Default for Composite {
    fn default() -> Self {
        Composite::new()
    }
}

impl Prefetcher for Composite {
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<PrefetchCandidate>) {
        let start = out.len();
        let mut budget = MAX_ALLOWED_DEGREE;
        for e in 0..self.engines.len() {
            if budget == 0 {
                break;
            }
            self.scratch.clear();
            self.engines[e].on_access(info, &mut self.scratch);
            let cap = self.engine_cap(e).min(budget);
            let mut taken = 0usize;
            for c in &self.scratch {
                if taken >= cap {
                    break;
                }
                // Duplicate lines resolve to the earliest engine: the
                // first proposer owns the tag and the budget slot.
                if out[start..].iter().any(|q| q.line == c.line) {
                    continue;
                }
                out.push(PrefetchCandidate {
                    engine: e as u8,
                    ..*c
                });
                taken += 1;
            }
            self.issued[e] += taken as u64;
            budget -= taken;
        }
    }

    fn on_fill(&mut self, line: LineAddr, cycle: Cycle) {
        for e in &mut self.engines {
            e.on_fill(line, cycle);
        }
    }

    fn on_prefetch_result(&mut self, line: LineAddr, useful: bool) {
        for e in &mut self.engines {
            e.on_prefetch_result(line, useful);
        }
    }

    fn set_level(&mut self, level: u8) {
        self.global_level = level.clamp(1, 5);
        self.push_levels();
    }

    fn set_engine_levels(&mut self, levels: &[u8]) {
        for (slot, &level) in self.engine_levels.iter_mut().zip(levels) {
            *slot = level.clamp(1, 5);
        }
        self.push_levels();
    }

    fn name(&self) -> &'static str {
        "Composite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::{Addr, Ip};

    fn access(ip: u64, addr: u64, cycle: Cycle) -> AccessInfo {
        AccessInfo {
            ip: Ip::new(ip),
            addr: Addr::new(addr),
            hit: false,
            is_store: false,
            cycle,
        }
    }

    fn drive_stream(pf: &mut Composite, n: u64) -> Vec<PrefetchCandidate> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            out.clear();
            pf.on_access(&access(0x400, 0x20_0000 + i * 64, i * 20), &mut out);
            assert!(
                out.len() <= MAX_ALLOWED_DEGREE,
                "shared budget exceeded: {} candidates",
                out.len()
            );
            for c in &out {
                pf.on_fill(c.line, i * 20 + 80);
            }
            all.extend_from_slice(&out);
        }
        all
    }

    #[test]
    fn candidates_carry_engine_tags_within_bounds() {
        let mut pf = Composite::new();
        let all = drive_stream(&mut pf, 400);
        assert!(!all.is_empty());
        assert!(all.iter().all(|c| (c.engine as usize) < COMPOSITE_ENGINES));
        // On a plain sequential stream at least two engines contribute.
        let engines: std::collections::HashSet<u8> = all.iter().map(|c| c.engine).collect();
        assert!(engines.len() >= 2, "only engines {engines:?} fired");
    }

    #[test]
    fn one_access_never_exceeds_the_shared_budget() {
        let mut pf = Composite::new();
        pf.set_level(5);
        let mut out = Vec::new();
        for i in 0..400u64 {
            out.clear();
            pf.on_access(&access(0x400, 0x20_0000 + i * 64, i * 20), &mut out);
            assert!(
                out.len() <= MAX_ALLOWED_DEGREE,
                "{} at access {i}",
                out.len()
            );
            let lines: std::collections::HashSet<u64> = out.iter().map(|c| c.line.raw()).collect();
            assert_eq!(lines.len(), out.len(), "duplicate lines within one access");
        }
    }

    #[test]
    fn per_engine_level_starves_only_the_demoted_engine() {
        // Demote Berti (engine 0, the dominant proposer on a sequential
        // stream) to level 1 and compare its admitted share against an
        // undemoted run over the identical stream.
        let mut free = Composite::new();
        drive_stream(&mut free, 400);
        let baseline = free.issued_per_engine();

        let mut starved = Composite::new();
        starved.set_engine_levels(&[1, 5, 5]);
        drive_stream(&mut starved, 400);
        let after = starved.issued_per_engine();

        assert!(
            after[0] < baseline[0] / 2,
            "demoted engine share must shrink: {after:?} vs {baseline:?}"
        );
        assert!(
            after[1] >= baseline[1],
            "engine 1 must not lose budget when engine 0 is starved: {after:?} vs {baseline:?}"
        );
    }

    #[test]
    fn global_level_tightens_every_engine() {
        let mut pf = Composite::new();
        pf.set_level(1);
        let all = drive_stream(&mut pf, 200);
        // Each engine is capped at one line per access at level 1, and
        // the aggregate can never exceed the engine count.
        let total = pf.issued_per_engine().iter().sum::<u64>();
        assert_eq!(total as usize, all.len());
        for chunk_total in pf.issued_per_engine() {
            assert!(chunk_total <= 200, "level 1 caps each engine to 1/access");
        }
    }

    #[test]
    fn broadcast_feedback_reaches_members_without_panicking() {
        let mut pf = Composite::new();
        let all = drive_stream(&mut pf, 100);
        for c in all.iter().take(32) {
            pf.on_prefetch_result(c.line, c.engine == 0);
        }
        assert_eq!(pf.engine_names().len(), COMPOSITE_ENGINES);
    }
}
