//! Randomized invariant tests over the whole prefetcher bouquet:
//! interface invariants every implementation must uphold for any access
//! stream, with streams drawn from the workspace's deterministic
//! [`SimRng`].

use clip_prefetch::{build, AccessInfo, PrefetcherKind};
use clip_types::{Addr, Ip, SimRng};

const ALL_KINDS: [PrefetcherKind; 7] = [
    PrefetcherKind::Berti,
    PrefetcherKind::Ipcp,
    PrefetcherKind::Bingo,
    PrefetcherKind::SppPpf,
    PrefetcherKind::IpStride,
    PrefetcherKind::Stream,
    PrefetcherKind::NextLine,
];

fn stream_of(seed: u64, n: usize) -> Vec<AccessInfo> {
    // A blend of a few strided IPs and a noisy one.
    (0..n)
        .map(|i| {
            let h = clip_types::hash64(seed ^ i as u64);
            let ip_sel = h % 4;
            let line = match ip_sel {
                0 => 10_000 + i as u64,         // unit stream
                1 => 50_000 + i as u64 * 5,     // stride 5
                2 => 90_000 + (h >> 8) % 4096,  // noise
                _ => 130_000 + (i as u64 % 64), // hot set
            };
            AccessInfo {
                ip: Ip::new(0x400 + ip_sel * 16),
                addr: Addr::new(line * 64),
                hit: h & 0x10 != 0,
                is_store: false,
                cycle: i as u64 * 25,
            }
        })
        .collect()
}

/// No prefetcher may emit the line currently being accessed (a
/// self-prefetch is always wasted) and degree stays bounded.
#[test]
fn no_self_prefetch_and_bounded_degree() {
    let mut rng = SimRng::seed_from_u64(0x9F1);
    for _ in 0..24 {
        let seed = rng.next_u64();
        for kind in ALL_KINDS {
            let mut pf = build(kind);
            let mut out = Vec::new();
            for a in stream_of(seed, 800) {
                out.clear();
                pf.on_access(&a, &mut out);
                for c in &out {
                    assert_ne!(c.line, a.addr.line(), "{} self-prefetched", pf.name());
                }
                assert!(out.len() <= 64, "{} flooded: {}", pf.name(), out.len());
            }
        }
    }
}

/// Determinism: identical access streams produce identical candidates.
#[test]
fn prefetchers_are_deterministic() {
    let mut rng = SimRng::seed_from_u64(0x9F2);
    for _ in 0..24 {
        let seed = rng.next_u64();
        for kind in ALL_KINDS {
            let run = || {
                let mut pf = build(kind);
                let mut all = Vec::new();
                let mut out = Vec::new();
                for a in stream_of(seed, 500) {
                    out.clear();
                    pf.on_access(&a, &mut out);
                    all.extend(out.iter().map(|c| (c.line, c.trigger_ip, c.fill_l1)));
                }
                all
            };
            assert_eq!(run(), run());
        }
    }
}

/// Trigger attribution: every candidate carries the IP of the access
/// that produced it (CLIP's attribution requirement).
#[test]
fn candidates_attribute_their_trigger() {
    let mut rng = SimRng::seed_from_u64(0x9F3);
    for _ in 0..24 {
        let seed = rng.next_u64();
        for kind in ALL_KINDS {
            let mut pf = build(kind);
            let mut out = Vec::new();
            for a in stream_of(seed, 600) {
                out.clear();
                pf.on_access(&a, &mut out);
                for c in &out {
                    assert_eq!(c.trigger_ip, a.ip, "{} mis-attributed", pf.name());
                }
            }
        }
    }
}

/// Aggressiveness levels never panic and level 5 emits at least as many
/// candidates as level 1 over the same stream.
#[test]
fn levels_scale_monotonically() {
    let mut rng = SimRng::seed_from_u64(0x9F4);
    for _ in 0..24 {
        let seed = rng.next_u64();
        for kind in ALL_KINDS {
            let volume = |level: u8| {
                let mut pf = build(kind);
                pf.set_level(level);
                let mut out = Vec::new();
                let mut total = 0usize;
                for a in stream_of(seed, 600) {
                    out.clear();
                    pf.on_access(&a, &mut out);
                    total += out.len();
                }
                total
            };
            let lo = volume(1);
            let hi = volume(5);
            assert!(hi >= lo, "{kind:?}: level 5 ({hi}) below level 1 ({lo})");
        }
    }
}
