//! Related-work mechanisms the paper compares against (§5.3): **Hermes**
//! (perceptron-based off-chip load prediction, MICRO '22) and **DSPatch**
//! (dual spatial patterns, MICRO '19).
//!
//! * [`Hermes`] predicts, at load issue, whether a load will be serviced
//!   by DRAM; predicted off-chip loads get a *speculative direct DRAM
//!   probe* issued in parallel with the cache walk, hiding the on-chip
//!   lookup latency. Hermes does **not** reduce DRAM traffic — the
//!   paper's reason it loses to CLIP under constrained bandwidth.
//! * [`DsPatch`] modulates a host prefetcher between a coverage-biased
//!   and an accuracy-biased spatial pattern per trigger, choosing by
//!   *per-controller* DRAM bandwidth utilization. Under constrained
//!   bandwidth, each controller individually looks underutilised (queues,
//!   not busses, are the bottleneck), so DSPatch picks coverage mode —
//!   the pathology §5.3 describes.

use clip_prefetch::PrefetchCandidate;
use clip_types::{Ip, LineAddr};

const HERMES_TABLE: usize = 1024;
const HERMES_THRESHOLD: i32 = 0;
const W_MAX: i16 = 31;
const W_MIN: i16 = -32;

/// Perceptron-based off-chip load predictor (Hermes, MICRO '22).
///
/// Features: load IP, page, line-within-page, and IP⊕page — a subset of
/// the POPET feature set sufficient for the trace-level model.
///
/// # Examples
///
/// ```
/// use clip_offchip::Hermes;
/// use clip_types::{Ip, LineAddr};
///
/// let mut hermes = Hermes::new();
/// for _ in 0..100 {
///     hermes.train(Ip::new(0x400), LineAddr::new(0x9000), true); // off-chip
/// }
/// assert!(hermes.predict_offchip(Ip::new(0x400), LineAddr::new(0x9000)));
/// ```
#[derive(Debug, Clone)]
pub struct Hermes {
    w_ip: Vec<i16>,
    w_page: Vec<i16>,
    w_offset: Vec<i16>,
    w_cross: Vec<i16>,
    predictions: u64,
    predicted_offchip: u64,
}

impl Hermes {
    /// Creates a zero-initialised predictor.
    pub fn new() -> Self {
        Hermes {
            w_ip: vec![0; HERMES_TABLE],
            w_page: vec![0; HERMES_TABLE],
            w_offset: vec![0; 64],
            w_cross: vec![0; HERMES_TABLE],
            predictions: 0,
            predicted_offchip: 0,
        }
    }

    fn features(ip: Ip, line: LineAddr) -> [usize; 4] {
        [
            (clip_types::hash64(ip.raw()) as usize) % HERMES_TABLE,
            (clip_types::hash64(line.page()) as usize) % HERMES_TABLE,
            line.page_offset() as usize,
            (clip_types::hash64(ip.raw() ^ line.page().rotate_left(21)) as usize) % HERMES_TABLE,
        ]
    }

    fn score(&self, f: [usize; 4]) -> i32 {
        self.w_ip[f[0]] as i32
            + self.w_page[f[1]] as i32
            + self.w_offset[f[2]] as i32
            + self.w_cross[f[3]] as i32
    }

    /// Predicts whether a load to `line` by `ip` will be serviced off-chip.
    pub fn predict_offchip(&mut self, ip: Ip, line: LineAddr) -> bool {
        self.predictions += 1;
        let off = self.score(Self::features(ip, line)) > HERMES_THRESHOLD;
        if off {
            self.predicted_offchip += 1;
        }
        off
    }

    /// Trains on the resolved service level.
    pub fn train(&mut self, ip: Ip, line: LineAddr, went_offchip: bool) {
        let f = Self::features(ip, line);
        let predicted = self.score(f) > HERMES_THRESHOLD;
        if predicted == went_offchip {
            return;
        }
        let d: i16 = if went_offchip { 1 } else { -1 };
        for (w, i) in [
            (&mut self.w_ip, f[0]),
            (&mut self.w_page, f[1]),
            (&mut self.w_offset, f[2]),
            (&mut self.w_cross, f[3]),
        ] {
            w[i] = (w[i] + d).clamp(W_MIN, W_MAX);
        }
    }

    /// Fraction of loads predicted off-chip so far.
    pub fn offchip_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.predicted_offchip as f64 / self.predictions as f64
        }
    }
}

impl Default for Hermes {
    fn default() -> Self {
        Self::new()
    }
}

/// The bandwidth-mode DSPatch operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsPatchMode {
    /// Bandwidth looks free → maximise coverage (expand patterns).
    Coverage,
    /// Bandwidth saturated → maximise accuracy (shrink patterns).
    Accuracy,
}

/// Dual-spatial-pattern modulation (DSPatch, MICRO '19), applied to a host
/// prefetcher's candidate stream.
///
/// # Examples
///
/// ```
/// use clip_offchip::{DsPatch, DsPatchMode};
///
/// let mut dspatch = DsPatch::new();
/// dspatch.set_bandwidth(0.95); // one controller looks saturated
/// assert_eq!(dspatch.mode(), DsPatchMode::Accuracy);
/// ```
#[derive(Debug, Clone)]
pub struct DsPatch {
    /// Latest per-controller utilization sample in [0,1]. DSPatch samples
    /// each DRAM controller independently (the myopia the paper calls
    /// out); callers pass the *maximum* single-controller utilization.
    per_ctrl_util: f64,
    /// Utilization above which DSPatch switches to accuracy mode.
    switch_threshold: f64,
    mode_switches: u64,
    last_mode: DsPatchMode,
}

impl DsPatch {
    /// Creates DSPatch with the default 7/8 switch threshold.
    pub fn new() -> Self {
        DsPatch {
            per_ctrl_util: 0.0,
            switch_threshold: 0.875,
            mode_switches: 0,
            last_mode: DsPatchMode::Coverage,
        }
    }

    /// Feeds the per-controller bandwidth utilization sample.
    pub fn set_bandwidth(&mut self, per_controller_util: f64) {
        self.per_ctrl_util = per_controller_util.clamp(0.0, 1.0);
        let mode = self.mode();
        if mode != self.last_mode {
            self.mode_switches += 1;
            self.last_mode = mode;
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> DsPatchMode {
        if self.per_ctrl_util >= self.switch_threshold {
            DsPatchMode::Accuracy
        } else {
            DsPatchMode::Coverage
        }
    }

    /// Times the mode flipped.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// Modulates a host prefetcher's candidates in place:
    ///
    /// * **Coverage mode** — passes everything and adds the spatial
    ///   neighbour of each candidate (CovP bit expansion).
    /// * **Accuracy mode** — keeps only the high-confidence (L1-fill)
    ///   candidates (AccP intersection).
    pub fn modulate(&mut self, candidates: &mut Vec<PrefetchCandidate>) {
        match self.mode() {
            DsPatchMode::Coverage => {
                let extra: Vec<PrefetchCandidate> = candidates
                    .iter()
                    .map(|c| PrefetchCandidate {
                        line: c.line.offset_by(1),
                        trigger_ip: c.trigger_ip,
                        fill_l1: false,
                        engine: c.engine,
                    })
                    .collect();
                candidates.extend(extra);
            }
            DsPatchMode::Accuracy => {
                candidates.retain(|c| c.fill_l1);
            }
        }
    }
}

impl Default for DsPatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermes_learns_offchip_pages() {
        let mut h = Hermes::new();
        let hot_page = LineAddr::new(64 * 10); // page 10: always on-chip
        let cold_page = LineAddr::new(64 * 999); // page 999: always off-chip
        for _ in 0..200 {
            h.train(Ip::new(0x400), cold_page, true);
            h.train(Ip::new(0x400), hot_page, false);
        }
        assert!(h.predict_offchip(Ip::new(0x400), cold_page));
        assert!(!h.predict_offchip(Ip::new(0x400), hot_page));
    }

    #[test]
    fn hermes_untrained_predicts_onchip() {
        let mut h = Hermes::new();
        assert!(!h.predict_offchip(Ip::new(0x1), LineAddr::new(5)));
        assert_eq!(h.offchip_rate(), 0.0);
    }

    #[test]
    fn dspatch_mode_switches_at_threshold() {
        let mut d = DsPatch::new();
        assert_eq!(d.mode(), DsPatchMode::Coverage);
        d.set_bandwidth(0.9);
        assert_eq!(d.mode(), DsPatchMode::Accuracy);
        d.set_bandwidth(0.2);
        assert_eq!(d.mode(), DsPatchMode::Coverage);
        assert_eq!(d.mode_switches(), 2);
    }

    #[test]
    fn coverage_mode_expands_candidates() {
        let mut d = DsPatch::new();
        d.set_bandwidth(0.1);
        let mut v = vec![PrefetchCandidate {
            line: LineAddr::new(100),
            trigger_ip: Ip::new(0x4),
            fill_l1: true,
            engine: 0,
        }];
        d.modulate(&mut v);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|c| c.line == LineAddr::new(101)));
    }

    #[test]
    fn hermes_offchip_rate_tracks_predictions() {
        let mut h = Hermes::new();
        for _ in 0..100 {
            h.train(Ip::new(0x7), LineAddr::new(64 * 5), true);
        }
        let mut off = 0;
        for i in 0..50u64 {
            if h.predict_offchip(Ip::new(0x7), LineAddr::new(64 * 5 + i % 2)) {
                off += 1;
            }
        }
        assert!(off > 0);
        assert!(h.offchip_rate() > 0.0 && h.offchip_rate() <= 1.0);
    }

    #[test]
    fn hermes_weights_stay_clamped() {
        let mut h = Hermes::new();
        for _ in 0..10_000 {
            h.train(Ip::new(0x9), LineAddr::new(640), true);
        }
        // Saturated training must not overflow; prediction stays stable.
        assert!(h.predict_offchip(Ip::new(0x9), LineAddr::new(640)));
    }

    #[test]
    fn dspatch_modulate_empty_is_noop() {
        let mut d = DsPatch::new();
        let mut v: Vec<PrefetchCandidate> = Vec::new();
        d.modulate(&mut v);
        assert!(v.is_empty());
        d.set_bandwidth(1.5); // clamped
        assert_eq!(d.mode(), DsPatchMode::Accuracy);
        d.set_bandwidth(-1.0); // clamped
        assert_eq!(d.mode(), DsPatchMode::Coverage);
    }

    #[test]
    fn accuracy_mode_prunes_low_confidence() {
        let mut d = DsPatch::new();
        d.set_bandwidth(0.95);
        let mut v = vec![
            PrefetchCandidate {
                line: LineAddr::new(1),
                trigger_ip: Ip::new(0x4),
                fill_l1: true,
                engine: 0,
            },
            PrefetchCandidate {
                line: LineAddr::new(2),
                trigger_ip: Ip::new(0x4),
                fill_l1: false,
                engine: 0,
            },
        ];
        d.modulate(&mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].fill_l1);
    }
}
