//! Randomized invariant tests for the metrics and energy model, driven
//! by the workspace's deterministic [`SimRng`].

use clip_stats::energy::{EnergyCounts, EnergyModel};
use clip_stats::{geomean, normalized_weighted_speedup, weighted_speedup, SampleSummary};
use clip_types::SimRng;

fn positive_vec(rng: &mut SimRng, n: std::ops::Range<usize>) -> Vec<f64> {
    let len = rng.gen_range(n);
    (0..len).map(|_| rng.gen_range(0.01f64..100.0)).collect()
}

/// Weighted speedup of a system against itself is the core count.
#[test]
fn ws_identity() {
    let mut rng = SimRng::seed_from_u64(0x51);
    for _ in 0..256 {
        let ipc = positive_vec(&mut rng, 1..32);
        let ws = weighted_speedup(&ipc, &ipc);
        assert!((ws - ipc.len() as f64).abs() < 1e-6);
        assert!((normalized_weighted_speedup(&ipc, &ipc) - 1.0).abs() < 1e-9);
    }
}

/// Scaling every core's IPC by k scales the normalized WS by k.
#[test]
fn ws_linearity() {
    let mut rng = SimRng::seed_from_u64(0x52);
    for _ in 0..256 {
        let base = positive_vec(&mut rng, 1..32);
        let k = rng.gen_range(0.1f64..10.0);
        let scaled: Vec<f64> = base.iter().map(|&x| x * k).collect();
        let ws = normalized_weighted_speedup(&scaled, &base);
        assert!((ws - k).abs() < 1e-6, "ws {ws} vs k {k}");
    }
}

/// The geometric mean lies between min and max and is monotone under
/// uniform scaling.
#[test]
fn geomean_bounds() {
    let mut rng = SimRng::seed_from_u64(0x53);
    for _ in 0..256 {
        let xs = positive_vec(&mut rng, 1..64);
        let k = rng.gen_range(0.1f64..10.0);
        let g = geomean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        assert!(g >= min - 1e-9 && g <= max + 1e-9);
        let scaled: Vec<f64> = xs.iter().map(|&x| x * k).collect();
        assert!((geomean(&scaled) - g * k).abs() < 1e-6 * g.max(1.0) * k.max(1.0));
    }
}

/// Sample summaries are internally consistent.
#[test]
fn summary_consistency() {
    let mut rng = SimRng::seed_from_u64(0x54);
    for _ in 0..256 {
        let xs = positive_vec(&mut rng, 1..64);
        let s = SampleSummary::of(&xs).expect("non-empty");
        assert_eq!(s.count, xs.len());
        assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        assert!(s.geomean <= s.mean + 1e-9, "AM-GM inequality");
        assert!(s.stddev >= 0.0);
    }
}

/// Energy is additive and monotone in every counter.
#[test]
fn energy_monotone() {
    let mut rng = SimRng::seed_from_u64(0x55);
    let m = EnergyModel::new();
    for _ in 0..256 {
        let l1 = rng.gen_range(0u64..10_000);
        let dramh = rng.gen_range(0u64..10_000);
        let dramm = rng.gen_range(0u64..10_000);
        let noc = rng.gen_range(0u64..10_000);
        let base = EnergyCounts {
            l1_reads: l1,
            dram_row_hits: dramh,
            dram_row_misses: dramm,
            noc_flit_hops: noc,
            ..EnergyCounts::default()
        };
        let more = EnergyCounts {
            l1_reads: l1 + 1,
            dram_row_hits: dramh + 1,
            dram_row_misses: dramm + 1,
            noc_flit_hops: noc + 1,
            ..EnergyCounts::default()
        };
        let e0 = m.evaluate(&base).total_nj();
        let e1 = m.evaluate(&more).total_nj();
        assert!(e1 > e0);
    }
    // Row misses always cost at least as much as row hits.
    let hit_heavy = m.evaluate(&EnergyCounts {
        dram_row_hits: 100,
        ..Default::default()
    });
    let miss_heavy = m.evaluate(&EnergyCounts {
        dram_row_misses: 100,
        ..Default::default()
    });
    assert!(miss_heavy.total_nj() >= hit_heavy.total_nj());
}
