//! Property-based tests for the metrics and energy model.

use clip_stats::energy::{EnergyCounts, EnergyModel};
use clip_stats::{geomean, normalized_weighted_speedup, weighted_speedup, SampleSummary};
use proptest::prelude::*;

fn positive_vec(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..100.0, n)
}

proptest! {
    /// Weighted speedup of a system against itself is the core count.
    #[test]
    fn ws_identity(ipc in positive_vec(1..32)) {
        let ws = weighted_speedup(&ipc, &ipc);
        prop_assert!((ws - ipc.len() as f64).abs() < 1e-6);
        prop_assert!((normalized_weighted_speedup(&ipc, &ipc) - 1.0).abs() < 1e-9);
    }

    /// Scaling every core's IPC by k scales the normalized WS by k.
    #[test]
    fn ws_linearity(base in positive_vec(1..32), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = base.iter().map(|&x| x * k).collect();
        let ws = normalized_weighted_speedup(&scaled, &base);
        prop_assert!((ws - k).abs() < 1e-6, "ws {ws} vs k {k}");
    }

    /// The geometric mean lies between min and max and is monotone under
    /// uniform scaling.
    #[test]
    fn geomean_bounds(xs in positive_vec(1..64), k in 0.1f64..10.0) {
        let g = geomean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        let scaled: Vec<f64> = xs.iter().map(|&x| x * k).collect();
        prop_assert!((geomean(&scaled) - g * k).abs() < 1e-6 * g.max(1.0) * k.max(1.0));
    }

    /// Sample summaries are internally consistent.
    #[test]
    fn summary_consistency(xs in positive_vec(1..64)) {
        let s = SampleSummary::of(&xs).expect("non-empty");
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.geomean <= s.mean + 1e-9, "AM-GM inequality");
        prop_assert!(s.stddev >= 0.0);
    }

    /// Energy is additive and monotone in every counter.
    #[test]
    fn energy_monotone(
        l1 in 0u64..10_000,
        dramh in 0u64..10_000,
        dramm in 0u64..10_000,
        noc in 0u64..10_000,
    ) {
        let m = EnergyModel::new();
        let base = EnergyCounts {
            l1_reads: l1,
            dram_row_hits: dramh,
            dram_row_misses: dramm,
            noc_flit_hops: noc,
            ..EnergyCounts::default()
        };
        let more = EnergyCounts {
            l1_reads: l1 + 1,
            dram_row_hits: dramh + 1,
            dram_row_misses: dramm + 1,
            noc_flit_hops: noc + 1,
            ..EnergyCounts::default()
        };
        let e0 = m.evaluate(&base).total_nj();
        let e1 = m.evaluate(&more).total_nj();
        prop_assert!(e1 > e0);
        // Row misses always cost at least as much as row hits.
        let hit_heavy = m.evaluate(&EnergyCounts { dram_row_hits: 100, ..Default::default() });
        let miss_heavy = m.evaluate(&EnergyCounts { dram_row_misses: 100, ..Default::default() });
        prop_assert!(miss_heavy.total_nj() >= hit_heavy.total_nj());
    }
}
