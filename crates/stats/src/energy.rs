//! Dynamic-energy model of the memory hierarchy (§5's energy results).
//!
//! The paper obtains per-access energies from CACTI-P (7 nm) and the
//! Micron DRAM power calculator; neither tool is redistributable, so the
//! constants below are representative 7 nm-class values with the right
//! *ratios* (DRAM access ≈ three orders of magnitude above an L1 read),
//! which is what the relative-improvement results depend on.

/// Per-access dynamic energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// L1D tag+data read.
    pub l1_read_pj: f64,
    /// L1D write/fill.
    pub l1_write_pj: f64,
    /// L2 read.
    pub l2_read_pj: f64,
    /// L2 write/fill.
    pub l2_write_pj: f64,
    /// LLC slice read.
    pub llc_read_pj: f64,
    /// LLC write/fill.
    pub llc_write_pj: f64,
    /// One 64-byte DRAM access with a row-buffer hit.
    pub dram_row_hit_pj: f64,
    /// One 64-byte DRAM access requiring activate+precharge.
    pub dram_row_miss_pj: f64,
    /// One flit-hop of NoC traversal.
    pub noc_flit_hop_pj: f64,
    /// One lookup of a CLIP structure (filter / predictor / CAM probe).
    pub clip_lookup_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            l1_read_pj: 12.0,
            l1_write_pj: 14.0,
            l2_read_pj: 42.0,
            l2_write_pj: 48.0,
            llc_read_pj: 140.0,
            llc_write_pj: 160.0,
            dram_row_hit_pj: 8_000.0,
            dram_row_miss_pj: 14_000.0,
            noc_flit_hop_pj: 4.5,
            clip_lookup_pj: 0.8,
        }
    }
}

/// Event counts fed by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounts {
    /// L1D lookups.
    pub l1_reads: u64,
    /// L1D fills/writes.
    pub l1_writes: u64,
    /// L2 lookups.
    pub l2_reads: u64,
    /// L2 fills/writes.
    pub l2_writes: u64,
    /// LLC lookups.
    pub llc_reads: u64,
    /// LLC fills/writes.
    pub llc_writes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row misses/conflicts.
    pub dram_row_misses: u64,
    /// NoC flit-hops.
    pub noc_flit_hops: u64,
    /// CLIP structure lookups (candidates + CAM probes + training).
    pub clip_lookups: u64,
}

/// Itemised dynamic energy in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 total.
    pub l1_nj: f64,
    /// L2 total.
    pub l2_nj: f64,
    /// LLC total.
    pub llc_nj: f64,
    /// DRAM total.
    pub dram_nj: f64,
    /// NoC total.
    pub noc_nj: f64,
    /// CLIP structures total.
    pub clip_nj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.l1_nj + self.l2_nj + self.llc_nj + self.dram_nj + self.noc_nj + self.clip_nj
    }
}

/// Static (leakage) power of the memory hierarchy in watts, used to turn
/// runtime improvements into static-energy improvements (§5.1's "CLIP
/// improves run-time that directly leads to improvement in static
/// energy").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPower {
    /// Leakage of all cache arrays per core, in watts.
    pub caches_per_core_w: f64,
    /// DRAM background power per channel, in watts.
    pub dram_per_channel_w: f64,
}

impl Default for StaticPower {
    fn default() -> Self {
        StaticPower {
            caches_per_core_w: 0.25,
            dram_per_channel_w: 0.9,
        }
    }
}

impl StaticPower {
    /// Static energy in nanojoules for a run of `cycles` core cycles at
    /// `ghz` on `cores` cores and `channels` DRAM channels.
    pub fn energy_nj(&self, cycles: u64, ghz: f64, cores: usize, channels: usize) -> f64 {
        let seconds = cycles as f64 / (ghz * 1e9);
        let watts =
            self.caches_per_core_w * cores as f64 + self.dram_per_channel_w * channels as f64;
        watts * seconds * 1e9
    }
}

/// Energy-delay product in nanojoule-cycles: the combined metric that
/// rewards mechanisms improving both energy and runtime.
pub fn energy_delay_product(total_nj: f64, cycles: u64) -> f64 {
    total_nj * cycles as f64
}

/// The energy model: parameters + accumulation.
#[derive(Debug, Clone, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates the model with default 7 nm-class parameters.
    pub fn new() -> Self {
        EnergyModel {
            params: EnergyParams::default(),
        }
    }

    /// Creates the model with custom parameters.
    pub fn with_params(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// Computes the itemised energy for a set of counts.
    pub fn evaluate(&self, c: &EnergyCounts) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            l1_nj: (c.l1_reads as f64 * p.l1_read_pj + c.l1_writes as f64 * p.l1_write_pj) / 1000.0,
            l2_nj: (c.l2_reads as f64 * p.l2_read_pj + c.l2_writes as f64 * p.l2_write_pj) / 1000.0,
            llc_nj: (c.llc_reads as f64 * p.llc_read_pj + c.llc_writes as f64 * p.llc_write_pj)
                / 1000.0,
            dram_nj: (c.dram_row_hits as f64 * p.dram_row_hit_pj
                + c.dram_row_misses as f64 * p.dram_row_miss_pj)
                / 1000.0,
            noc_nj: c.noc_flit_hops as f64 * p.noc_flit_hop_pj / 1000.0,
            clip_nj: c.clip_lookups as f64 * p.clip_lookup_pj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_when_traffic_is_comparable() {
        let m = EnergyModel::new();
        let b = m.evaluate(&EnergyCounts {
            l1_reads: 1000,
            l2_reads: 1000,
            llc_reads: 1000,
            dram_row_misses: 1000,
            ..EnergyCounts::default()
        });
        assert!(b.dram_nj > b.l1_nj + b.l2_nj + b.llc_nj);
    }

    #[test]
    fn halving_dram_traffic_halves_dram_energy() {
        let m = EnergyModel::new();
        let full = m.evaluate(&EnergyCounts {
            dram_row_misses: 2000,
            ..Default::default()
        });
        let half = m.evaluate(&EnergyCounts {
            dram_row_misses: 1000,
            ..Default::default()
        });
        assert!((full.dram_nj - 2.0 * half.dram_nj).abs() < 1e-9);
    }

    #[test]
    fn clip_overhead_is_tiny() {
        // The CLIP structures' energy must be negligible vs the DRAM
        // traffic it eliminates (the paper includes it and still reports
        // 18.21% savings).
        let m = EnergyModel::new();
        let b = m.evaluate(&EnergyCounts {
            clip_lookups: 1_000_000,
            dram_row_misses: 10_000,
            ..Default::default()
        });
        assert!(b.clip_nj < b.dram_nj / 10.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = EnergyModel::new();
        let b = m.evaluate(&EnergyCounts {
            l1_reads: 10,
            l1_writes: 10,
            l2_reads: 10,
            l2_writes: 10,
            llc_reads: 10,
            llc_writes: 10,
            dram_row_hits: 10,
            dram_row_misses: 10,
            noc_flit_hops: 10,
            clip_lookups: 10,
        });
        let sum = b.l1_nj + b.l2_nj + b.llc_nj + b.dram_nj + b.noc_nj + b.clip_nj;
        assert!((b.total_nj() - sum).abs() < 1e-12);
        assert!(b.total_nj() > 0.0);
    }

    #[test]
    fn static_energy_scales_with_time_and_resources() {
        let p = StaticPower::default();
        let short = p.energy_nj(1_000_000, 4.0, 64, 8);
        let long = p.energy_nj(2_000_000, 4.0, 64, 8);
        assert!((long - 2.0 * short).abs() < 1e-6);
        let fewer = p.energy_nj(1_000_000, 4.0, 32, 8);
        assert!(fewer < short);
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let fast_efficient = energy_delay_product(100.0, 1_000);
        let slow_efficient = energy_delay_product(100.0, 2_000);
        let fast_hungry = energy_delay_product(200.0, 1_000);
        assert!(fast_efficient < slow_efficient);
        assert!(fast_efficient < fast_hungry);
    }

    #[test]
    fn row_hits_cost_less_than_misses() {
        let p = EnergyParams::default();
        assert!(p.dram_row_hit_pj < p.dram_row_miss_pj);
    }
}
