//! Metrics and the memory-hierarchy dynamic-energy model.
//!
//! * [`metrics`] — weighted speedup (Snavely & Tullsen), the
//!   normalisation against no-prefetching the paper reports, latency
//!   averages, and coverage/accuracy helpers.
//! * [`energy`] — per-access dynamic-energy accounting with 7 nm-class
//!   constants standing in for CACTI-P and the Micron DRAM power
//!   calculator (see `DESIGN.md` §3).
//! * [`json`] — a dependency-free JSON emitter (and test parser) for
//!   machine-readable experiment artifacts.

pub mod energy;
pub mod json;
pub mod metrics;

pub use energy::{energy_delay_product, EnergyBreakdown, EnergyModel, StaticPower};
pub use json::{Json, JsonError};
pub use metrics::{
    geomean, normalized_weighted_speedup, weighted_speedup, LatencyStat, SampleSummary,
};
