//! Performance metrics: weighted speedup and latency aggregation.

/// Weighted speedup (Snavely & Tullsen, ASPLOS '00):
/// `Σ_i IPC_together_i / IPC_alone_i`.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn weighted_speedup(ipc_together: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(
        ipc_together.len(),
        ipc_alone.len(),
        "per-core IPC vectors must align"
    );
    ipc_together
        .iter()
        .zip(ipc_alone)
        .map(|(&t, &a)| if a > 0.0 { t / a } else { 0.0 })
        .sum()
}

/// The paper's headline metric: weighted speedup of a scheme normalised to
/// the no-prefetching system with the same resources. Using the
/// no-prefetching run as the `alone` baseline, this reduces to the mean of
/// per-core IPC ratios.
///
/// # Panics
///
/// Panics when the slices differ in length or are empty.
pub fn normalized_weighted_speedup(ipc_scheme: &[f64], ipc_nopf: &[f64]) -> f64 {
    assert!(!ipc_scheme.is_empty(), "need at least one core");
    weighted_speedup(ipc_scheme, ipc_nopf) / ipc_scheme.len() as f64
}

/// Geometric mean of positive values (zero-length input → 1.0).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Five-number-ish summary of a sample of values (used when aggregating
/// per-mix results: means hide the outliers figures 10-16 care about).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (values clamped to a tiny positive floor).
    pub geomean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SampleSummary {
    /// Summarises a sample. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<SampleSummary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Some(SampleSummary {
            count: xs.len(),
            mean,
            geomean: geomean(xs),
            stddev: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

impl std::fmt::Display for SampleSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} geomean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count, self.mean, self.geomean, self.stddev, self.min, self.max
        )
    }
}

/// Incremental latency average.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Events observed.
    pub count: u64,
    /// Sum of latencies.
    pub total: u64,
}

impl LatencyStat {
    /// Records one latency observation.
    #[inline]
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total += latency;
    }

    /// Average latency (0.0 when empty).
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Merges another stat into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.count += other.count;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipc, &ipc) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_ws_is_mean_ratio() {
        let scheme = [2.0, 1.0];
        let base = [1.0, 1.0];
        assert!((normalized_weighted_speedup(&scheme, &base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_ws_below_one_means_slowdown() {
        let scheme = [0.8, 0.8];
        let base = [1.0, 1.0];
        assert!(normalized_weighted_speedup(&scheme, &base) < 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = weighted_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zero_baseline_contributes_zero() {
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn sample_summary_basics() {
        let s = SampleSummary::of(&[1.0, 2.0, 3.0]).expect("non-empty");
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!(s.stddev > 0.0);
        assert!(SampleSummary::of(&[]).is_none());
    }

    #[test]
    fn sample_summary_display() {
        let s = SampleSummary::of(&[2.0, 2.0]).expect("non-empty");
        assert!(s.to_string().contains("mean=2.000"));
        assert!((s.stddev - 0.0).abs() < 1e-12);
    }

    #[test]
    fn latency_stat_accumulates_and_merges() {
        let mut a = LatencyStat::default();
        a.record(10);
        a.record(30);
        assert!((a.avg() - 20.0).abs() < 1e-12);
        let mut b = LatencyStat::default();
        b.record(60);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.avg() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_latency_avg_is_zero() {
        assert_eq!(LatencyStat::default().avg(), 0.0);
    }
}
