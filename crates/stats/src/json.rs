//! Minimal JSON value tree: an emitter for experiment artifacts and a
//! parser good enough to round-trip them in tests.
//!
//! The workspace is hermetic (no serde), but the figure pipeline's
//! downstream consumers (`scripts/make_experiments.py`) expect standard
//! JSON. [`Json`] renders exactly that: object keys in insertion order,
//! strings escaped per RFC 8259, non-finite floats as `null` (JSON has no
//! NaN/Inf). Integers and floats are kept as distinct variants so `u64`
//! counters render without a fractional part.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer (renders without a fraction).
    Int(i64),
    /// Unsigned integer (renders without a fraction; covers the
    /// simulator's `u64` counters beyond `i64::MAX`).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key-value pairs, rendered in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a fractional marker so the value reads back as a
                    // float (`1.0`, not `1`), matching conventional emitters.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null", "expected null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.literal("true", "expected true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by this emitter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("bad number"))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::UInt(42), "42"),
            (Json::Int(-7), "-7"),
            (Json::Float(1.5), "1.5"),
            (Json::Float(2.0), "2.0"),
        ] {
            assert_eq!(v.render(), s);
            assert_eq!(Json::parse(s).expect("parses"), v);
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".to_owned());
        let rendered = s.render();
        assert_eq!(rendered, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&rendered).expect("parses"), s);
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Json::object([
            ("label", Json::from("berti/mix0")),
            (
                "ipc",
                Json::array([Json::Float(1.25), Json::Float(0.5), Json::Float(3.0)]),
            ),
            (
                "misses",
                Json::object([("l1", Json::UInt(100)), ("l2", Json::UInt(40))]),
            ),
            ("clip", Json::Null),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(
            back.get("misses").and_then(|m| m.get("l2")),
            Some(&Json::UInt(40))
        );
        assert_eq!(back.keys(), vec!["label", "ipc", "misses", "clip"]);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"\\u00e9é\" ] } ").expect("parses");
        let arr = v.get("k").and_then(|a| a.as_array()).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("éé"));
    }
}
