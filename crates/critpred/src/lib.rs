//! Baseline load criticality predictors: CATCH, FP, FVP, CBP, ROBO, and
//! CRISP (Section 2.2 / Table 1 of the paper), plus the evaluation
//! machinery that measures their prediction accuracy and coverage
//! (Figure 4).
//!
//! Each predictor observes completed loads ([`clip_cpu::LoadOutcome`]) and
//! answers "is the *next* dynamic instance of this load critical?". The
//! paper's ground truth: a load is critical when it stalls the head of the
//! ROB while being serviced by L2, LLC, or DRAM. The baselines share a
//! structural weakness CLIP exploits — they key on the IP alone, so an IP
//! whose criticality is *dynamic* (follows control flow) is misclassified
//! roughly half the time.
//!
//! # Examples
//!
//! ```
//! use clip_crit::{build, BaselineKind, CriticalityPredictor};
//! use clip_types::{Addr, Ip};
//!
//! let pred = build(BaselineKind::Fp);
//! // An untrained predictor has no critical IPs.
//! assert!(!pred.predict(Ip::new(0x400), Addr::new(0x1000)));
//! ```

pub mod evaluate;

pub use evaluate::{EvalCounts, PredictorEvaluator};

use clip_cpu::LoadOutcome;
use clip_types::{Addr, Ip, MemLevel};
use std::collections::HashMap;

/// The interface every load criticality predictor implements.
pub trait CriticalityPredictor {
    /// Observes a completed load (training).
    fn on_load_complete(&mut self, outcome: &LoadOutcome);

    /// Predicts whether the next dynamic instance of `ip` accessing `addr`
    /// will be critical. The baselines ignore `addr`; CLIP does not.
    fn predict(&self, ip: Ip, addr: Addr) -> bool;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Resets learned state (e.g. on a phase change).
    fn reset(&mut self);
}

/// Selector for the baseline predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Criticality-aware tiered cache hierarchy (ISCA '18) — DDG critical
    /// path enumeration; over-predicts (100% coverage, low accuracy).
    Catch,
    /// Focused prefetching / LIMCOS (ICS '08) — commit-stall ranking.
    Fp,
    /// Focused value prediction (ISCA '20) — dependence-root tagging;
    /// over-predicts.
    Fvp,
    /// Commit block predictor (SIGARCH '13) — stall-time thresholds,
    /// static per IP.
    Cbp,
    /// ROB-occupancy criticality (CAL '21) — static per IP.
    Robo,
    /// Critical slice prefetching (ASPLOS '22) — LLC-miss + low-MLP
    /// thresholds.
    Crisp,
}

impl BaselineKind {
    /// All baseline kinds, in the order of Figure 4.
    pub fn all() -> [BaselineKind; 6] {
        [
            BaselineKind::Crisp,
            BaselineKind::Catch,
            BaselineKind::Fp,
            BaselineKind::Fvp,
            BaselineKind::Cbp,
            BaselineKind::Robo,
        ]
    }
}

/// Builds a boxed baseline predictor.
pub fn build(kind: BaselineKind) -> Box<dyn CriticalityPredictor> {
    match kind {
        BaselineKind::Catch => Box::new(Catch::new()),
        BaselineKind::Fp => Box::new(Fp::new()),
        BaselineKind::Fvp => Box::new(Fvp::new()),
        BaselineKind::Cbp => Box::new(Cbp::new()),
        BaselineKind::Robo => Box::new(Robo::new()),
        BaselineKind::Crisp => Box::new(Crisp::new()),
    }
}

/// CATCH: enumerates the costliest path through the data dependence graph
/// and tags load IPs on it as critical, with a confidence mechanism.
///
/// Approximation: without full register dataflow in a trace-driven model,
/// we tag an IP critical when its observed latency rivals the costliest
/// recent load (it would lie on the costliest path) *or* it ever stalls
/// the head. The resulting behaviour matches Table 1: blind to MLP, tags
/// low-latency loads masked by high-latency ones, near-total coverage
/// with poor accuracy.
#[derive(Debug, Clone)]
pub struct Catch {
    tagged: HashMap<u64, u8>,
    max_latency_ewma: f64,
}

impl Catch {
    /// Creates an empty CATCH predictor.
    pub fn new() -> Self {
        Catch {
            tagged: HashMap::new(),
            max_latency_ewma: 0.0,
        }
    }
}

impl Default for Catch {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityPredictor for Catch {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        self.max_latency_ewma = (self.max_latency_ewma * 0.99).max(o.latency as f64);
        // On the costliest path: latency within 4x of the recent maximum,
        // or an observed head stall.
        let on_path = o.stalled_head
            || (o.level.is_beyond_l1() && o.latency as f64 * 4.0 >= self.max_latency_ewma);
        let conf = self.tagged.entry(o.ip.raw()).or_insert(0);
        if on_path {
            *conf = (*conf + 1).min(3);
        } else if *conf > 0 && !o.level.is_beyond_l1() {
            *conf -= 1;
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.tagged.get(&ip.raw()).copied().unwrap_or(0) >= 1
    }

    fn name(&self) -> &'static str {
        "CATCH"
    }

    fn reset(&mut self) {
        self.tagged.clear();
        self.max_latency_ewma = 0.0;
    }
}

/// FP / LIMCOS: ranks IPs by accumulated commit-stall cycles; an IP that
/// contributes any significant stalls is focused. Tends to mark most L3
/// misses critical (Table 1).
#[derive(Debug, Clone)]
pub struct Fp {
    stall_cycles: HashMap<u64, u64>,
    threshold: u64,
}

impl Fp {
    /// Creates FP with the default focus threshold.
    pub fn new() -> Self {
        Fp {
            stall_cycles: HashMap::new(),
            threshold: 16,
        }
    }
}

impl Default for Fp {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityPredictor for Fp {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        if o.stalled_head {
            *self.stall_cycles.entry(o.ip.raw()).or_insert(0) += o.stall_cycles;
        } else if o.level == MemLevel::Dram {
            // L3 misses accrue implicit stall credit even when overlapped —
            // the over-marking Table 1 describes.
            *self.stall_cycles.entry(o.ip.raw()).or_insert(0) += 1;
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.stall_cycles.get(&ip.raw()).copied().unwrap_or(0) >= self.threshold
    }

    fn name(&self) -> &'static str {
        "FP"
    }

    fn reset(&mut self) {
        self.stall_cycles.clear();
    }
}

/// FVP: identifies roots of dependence chains; ends up tagging any load
/// that produces values for nearby instructions — effectively every load
/// that leaves the L1 (Table 1: excessive tagging, low accuracy).
#[derive(Debug, Clone, Default)]
pub struct Fvp {
    tagged: HashMap<u64, ()>,
}

impl Fvp {
    /// Creates an empty FVP predictor.
    pub fn new() -> Self {
        Fvp::default()
    }
}

impl CriticalityPredictor for Fvp {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        // Nearly every load feeds something in its retire-width vicinity.
        if o.level.is_beyond_l1() || o.latency > 5 {
            self.tagged.insert(o.ip.raw(), ());
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.tagged.contains_key(&ip.raw())
    }

    fn name(&self) -> &'static str {
        "FVP"
    }

    fn reset(&mut self) {
        self.tagged.clear();
    }
}

/// CBP: thresholds on maximum or total stall time; once an IP crosses the
/// threshold it stays critical (static, like ROBO — Table 1).
#[derive(Debug, Clone)]
pub struct Cbp {
    total_stall: HashMap<u64, u64>,
    max_stall: HashMap<u64, u64>,
    total_threshold: u64,
    max_threshold: u64,
}

impl Cbp {
    /// Creates CBP with default thresholds.
    pub fn new() -> Self {
        Cbp {
            total_stall: HashMap::new(),
            max_stall: HashMap::new(),
            total_threshold: 64,
            max_threshold: 24,
        }
    }
}

impl Default for Cbp {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityPredictor for Cbp {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        if o.stalled_head {
            let t = self.total_stall.entry(o.ip.raw()).or_insert(0);
            *t += o.stall_cycles;
            let m = self.max_stall.entry(o.ip.raw()).or_insert(0);
            *m = (*m).max(o.stall_cycles);
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.total_stall.get(&ip.raw()).copied().unwrap_or(0) >= self.total_threshold
            || self.max_stall.get(&ip.raw()).copied().unwrap_or(0) >= self.max_threshold
    }

    fn name(&self) -> &'static str {
        "CBP"
    }

    fn reset(&mut self) {
        self.total_stall.clear();
        self.max_stall.clear();
    }
}

/// ROBO: flags an IP critical when a retirement stall coincides with high
/// ROB occupancy; the flag is sticky for the rest of execution (Table 1:
/// blind to dynamic criticality).
#[derive(Debug, Clone)]
pub struct Robo {
    flagged: HashMap<u64, ()>,
    occupancy_threshold: usize,
}

impl Robo {
    /// Creates ROBO with the default occupancy threshold (half the ROB).
    pub fn new() -> Self {
        Robo {
            flagged: HashMap::new(),
            occupancy_threshold: 256,
        }
    }
}

impl Default for Robo {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityPredictor for Robo {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        if o.stalled_head && o.rob_occupancy >= self.occupancy_threshold {
            self.flagged.insert(o.ip.raw(), ());
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.flagged.contains_key(&ip.raw())
    }

    fn name(&self) -> &'static str {
        "ROBO"
    }

    fn reset(&mut self) {
        self.flagged.clear();
    }
}

/// CRISP: loads with many LLC misses and low memory-level parallelism are
/// critical; thresholds are pre-defined per workload set. Ignores L1/L2
/// misses that stall the head (Table 1).
#[derive(Debug, Clone)]
pub struct Crisp {
    llc_misses: HashMap<u64, u32>,
    miss_threshold: u32,
    mlp_threshold: usize,
}

impl Crisp {
    /// Creates CRISP with the thresholds used in our experiments.
    pub fn new() -> Self {
        Crisp {
            llc_misses: HashMap::new(),
            miss_threshold: 8,
            mlp_threshold: 3,
        }
    }
}

impl Default for Crisp {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityPredictor for Crisp {
    fn on_load_complete(&mut self, o: &LoadOutcome) {
        if o.level == MemLevel::Dram && o.outstanding_loads <= self.mlp_threshold {
            *self.llc_misses.entry(o.ip.raw()).or_insert(0) += 1;
        }
    }

    fn predict(&self, ip: Ip, _addr: Addr) -> bool {
        self.llc_misses.get(&ip.raw()).copied().unwrap_or(0) >= self.miss_threshold
    }

    fn name(&self) -> &'static str {
        "CRISP"
    }

    fn reset(&mut self) {
        self.llc_misses.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ip: u64, level: MemLevel, stalled: bool, stall: u64) -> LoadOutcome {
        LoadOutcome {
            ip: Ip::new(ip),
            addr: Addr::new(0x1000),
            level,
            stalled_head: stalled,
            stall_cycles: stall,
            rob_occupancy: 300,
            outstanding_loads: 1,
            done_cycle: 100,
            latency: if level.is_beyond_l1() { 200 } else { 4 },
        }
    }

    #[test]
    fn fp_focuses_heavy_stallers() {
        let mut p = Fp::new();
        for _ in 0..4 {
            p.on_load_complete(&outcome(0xA, MemLevel::Dram, true, 50));
        }
        p.on_load_complete(&outcome(0xB, MemLevel::L2, false, 0));
        assert!(p.predict(Ip::new(0xA), Addr::new(0)));
        assert!(!p.predict(Ip::new(0xB), Addr::new(0)));
    }

    #[test]
    fn fvp_overtags_everything_beyond_l1() {
        let mut p = Fvp::new();
        p.on_load_complete(&outcome(0xC, MemLevel::L2, false, 0));
        assert!(
            p.predict(Ip::new(0xC), Addr::new(0)),
            "FVP tags non-stalling loads"
        );
    }

    #[test]
    fn cbp_static_once_thresholded() {
        let mut p = Cbp::new();
        p.on_load_complete(&outcome(0xD, MemLevel::Dram, true, 100));
        assert!(p.predict(Ip::new(0xD), Addr::new(0)));
        // Subsequent non-stalling instances do not clear the flag.
        for _ in 0..100 {
            p.on_load_complete(&outcome(0xD, MemLevel::L1, false, 0));
        }
        assert!(p.predict(Ip::new(0xD), Addr::new(0)), "CBP is static");
    }

    #[test]
    fn robo_requires_high_occupancy() {
        let mut p = Robo::new();
        let mut low = outcome(0xE, MemLevel::Dram, true, 40);
        low.rob_occupancy = 10;
        p.on_load_complete(&low);
        assert!(!p.predict(Ip::new(0xE), Addr::new(0)));
        p.on_load_complete(&outcome(0xE, MemLevel::Dram, true, 40));
        assert!(p.predict(Ip::new(0xE), Addr::new(0)));
    }

    #[test]
    fn crisp_needs_llc_misses_and_low_mlp() {
        let mut p = Crisp::new();
        // High-MLP DRAM loads: not critical for CRISP.
        let mut high_mlp = outcome(0xF, MemLevel::Dram, true, 90);
        high_mlp.outstanding_loads = 20;
        for _ in 0..20 {
            p.on_load_complete(&high_mlp);
        }
        assert!(!p.predict(Ip::new(0xF), Addr::new(0)));
        // Low-MLP DRAM loads cross the threshold.
        for _ in 0..8 {
            p.on_load_complete(&outcome(0x10, MemLevel::Dram, true, 90));
        }
        assert!(p.predict(Ip::new(0x10), Addr::new(0)));
        // L2 stalls are invisible to CRISP (Table 1).
        for _ in 0..20 {
            p.on_load_complete(&outcome(0x11, MemLevel::L2, true, 90));
        }
        assert!(!p.predict(Ip::new(0x11), Addr::new(0)));
    }

    #[test]
    fn catch_covers_stalling_ips() {
        let mut p = Catch::new();
        p.on_load_complete(&outcome(0x12, MemLevel::Llc, true, 30));
        assert!(p.predict(Ip::new(0x12), Addr::new(0)));
    }

    #[test]
    fn reset_clears_state() {
        for kind in BaselineKind::all() {
            let mut p = build(kind);
            for _ in 0..20 {
                p.on_load_complete(&outcome(0x13, MemLevel::Dram, true, 100));
            }
            p.reset();
            assert!(
                !p.predict(Ip::new(0x13), Addr::new(0)),
                "{} must forget after reset",
                p.name()
            );
        }
    }

    #[test]
    fn build_names_match() {
        assert_eq!(build(BaselineKind::Catch).name(), "CATCH");
        assert_eq!(build(BaselineKind::Crisp).name(), "CRISP");
        assert_eq!(build(BaselineKind::Robo).name(), "ROBO");
    }
}
