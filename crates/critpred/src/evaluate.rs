//! Prediction accuracy / coverage evaluation (Figure 4's metrics).
//!
//! For every completed load serviced beyond the L1, the evaluator samples
//! the predictor *before* training it, then scores:
//!
//! * **accuracy** — of the instances predicted critical, how many truly
//!   stalled the ROB head (TP / (TP + FP));
//! * **coverage** — of the truly critical instances, how many were
//!   predicted (TP / (TP + FN)).

use crate::CriticalityPredictor;
use clip_cpu::LoadOutcome;

/// Confusion counts over dynamic load instances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Predicted critical, was critical.
    pub true_positive: u64,
    /// Predicted critical, was not.
    pub false_positive: u64,
    /// Not predicted, was critical.
    pub false_negative: u64,
    /// Not predicted, was not critical.
    pub true_negative: u64,
}

impl EvalCounts {
    /// Prediction accuracy (precision). 1.0 when nothing was predicted.
    pub fn accuracy(&self) -> f64 {
        let p = self.true_positive + self.false_positive;
        if p == 0 {
            1.0
        } else {
            self.true_positive as f64 / p as f64
        }
    }

    /// Prediction coverage (recall). 1.0 when nothing was critical.
    pub fn coverage(&self) -> f64 {
        let c = self.true_positive + self.false_negative;
        if c == 0 {
            1.0
        } else {
            self.true_positive as f64 / c as f64
        }
    }

    /// Total events scored.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.false_negative + self.true_negative
    }
}

/// Wraps a predictor, scoring each event before training on it.
///
/// Two granularities are tracked:
///
/// * **instance-level** ([`PredictorEvaluator::counts`]) — every dynamic
///   load beyond the L1 is scored;
/// * **IP-set level** ([`PredictorEvaluator::ip_counts`]) — the paper's
///   Figure 4 metric: the set of IPs ever predicted critical against the
///   set of IPs that ever stalled the ROB head while serviced beyond L1.
pub struct PredictorEvaluator {
    predictor: Box<dyn CriticalityPredictor>,
    counts: EvalCounts,
    /// Per-IP record: (head-stall count, predicted-critical at least once).
    ips: std::collections::HashMap<u64, (u32, bool)>,
}

/// Head-of-ROB stalls before an IP counts as *actually* critical at the
/// IP-set granularity — aligned with CLIP's own criticality-count
/// threshold (§4.2), so rare incidental stallers do not make every
/// over-tagging predictor look accurate.
pub const IP_CRITICAL_STALLS: u32 = 4;

impl std::fmt::Debug for PredictorEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorEvaluator")
            .field("predictor", &self.predictor.name())
            .field("counts", &self.counts)
            .finish()
    }
}

impl PredictorEvaluator {
    /// Wraps `predictor` for evaluation.
    pub fn new(predictor: Box<dyn CriticalityPredictor>) -> Self {
        PredictorEvaluator {
            predictor,
            counts: EvalCounts::default(),
            ips: std::collections::HashMap::new(),
        }
    }

    /// Scores and then trains on a completed load. Only loads serviced
    /// beyond the L1 are scored (an L1 prefetcher cannot help L1 hits —
    /// §4 of the paper).
    pub fn observe(&mut self, outcome: &LoadOutcome) {
        if outcome.level.is_beyond_l1() {
            let predicted = self.predictor.predict(outcome.ip, outcome.addr);
            let actual = outcome.stalled_head;
            match (predicted, actual) {
                (true, true) => self.counts.true_positive += 1,
                (true, false) => self.counts.false_positive += 1,
                (false, true) => self.counts.false_negative += 1,
                (false, false) => self.counts.true_negative += 1,
            }
            let rec = self.ips.entry(outcome.ip.raw()).or_insert((0, false));
            if actual {
                rec.0 += 1;
            }
            if predicted {
                rec.1 = true;
            }
        }
        self.predictor.on_load_complete(outcome);
    }

    /// IP-set confusion counts (the Figure 4 granularity): an IP is
    /// *actually* critical when it stalled the ROB head at least
    /// [`IP_CRITICAL_STALLS`] times.
    pub fn ip_counts(&self) -> EvalCounts {
        let mut c = EvalCounts::default();
        for &(stalls, predicted) in self.ips.values() {
            match (predicted, stalls >= IP_CRITICAL_STALLS) {
                (true, true) => c.true_positive += 1,
                (true, false) => c.false_positive += 1,
                (false, true) => c.false_negative += 1,
                (false, false) => c.true_negative += 1,
            }
        }
        c
    }

    /// The wrapped predictor's name.
    pub fn name(&self) -> &'static str {
        self.predictor.name()
    }

    /// Scores so far.
    pub fn counts(&self) -> EvalCounts {
        self.counts
    }

    /// Direct access to the wrapped predictor (e.g. to gate prefetching).
    pub fn predictor(&self) -> &dyn CriticalityPredictor {
        self.predictor.as_ref()
    }

    /// Mutable access to the wrapped predictor.
    pub fn predictor_mut(&mut self) -> &mut dyn CriticalityPredictor {
        self.predictor.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, BaselineKind};
    use clip_types::{Addr, Ip, MemLevel};

    fn outcome(ip: u64, level: MemLevel, stalled: bool) -> LoadOutcome {
        LoadOutcome {
            ip: Ip::new(ip),
            addr: Addr::new(0x40),
            level,
            stalled_head: stalled,
            stall_cycles: if stalled { 50 } else { 0 },
            rob_occupancy: 400,
            outstanding_loads: 1,
            done_cycle: 0,
            latency: 150,
        }
    }

    #[test]
    fn counts_partition_events() {
        let mut ev = PredictorEvaluator::new(build(BaselineKind::Fvp));
        for i in 0..100u64 {
            ev.observe(&outcome(0x20, MemLevel::Dram, i % 2 == 0));
        }
        assert_eq!(ev.counts().total(), 100);
    }

    #[test]
    fn static_overpredictor_has_high_coverage_low_accuracy() {
        // FVP tags the IP after the first event; afterwards every instance
        // is predicted critical even though only half are.
        let mut ev = PredictorEvaluator::new(build(BaselineKind::Fvp));
        for i in 0..1000u64 {
            ev.observe(&outcome(0x30, MemLevel::Dram, i % 2 == 0));
        }
        let c = ev.counts();
        assert!(c.coverage() > 0.95, "coverage {}", c.coverage());
        assert!(c.accuracy() < 0.6, "accuracy {}", c.accuracy());
    }

    #[test]
    fn l1_hits_are_not_scored() {
        let mut ev = PredictorEvaluator::new(build(BaselineKind::Fp));
        for _ in 0..50 {
            ev.observe(&outcome(0x40, MemLevel::L1, false));
        }
        assert_eq!(ev.counts().total(), 0);
    }

    #[test]
    fn empty_counts_have_unit_metrics() {
        let c = EvalCounts::default();
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.coverage(), 1.0);
    }
}
