//! Randomized invariant tests over the baseline criticality predictors,
//! driven by the workspace's deterministic [`SimRng`].

use clip_cpu::LoadOutcome;
use clip_crit::{build, BaselineKind, PredictorEvaluator};
use clip_types::{Addr, Ip, MemLevel, SimRng};

fn outcome(seed: u64, i: u64) -> LoadOutcome {
    let h = clip_types::hash64(seed ^ i);
    let level = match h % 4 {
        0 => MemLevel::L1,
        1 => MemLevel::L2,
        2 => MemLevel::Llc,
        _ => MemLevel::Dram,
    };
    let stalled = level.is_beyond_l1() && h & 0x30 == 0x30;
    LoadOutcome {
        ip: Ip::new(0x400 + (h % 24) * 8),
        addr: Addr::new((h >> 12) % (1 << 30)),
        level,
        stalled_head: stalled,
        stall_cycles: if stalled { 20 + h % 100 } else { 0 },
        rob_occupancy: (h % 512) as usize,
        outstanding_loads: (h % 16) as usize,
        done_cycle: i,
        latency: 10 + h % 400,
    }
}

/// Predictions never panic and reset always clears every predictor, for
/// arbitrary training streams.
#[test]
fn predictors_are_total_and_resettable() {
    let mut rng = SimRng::seed_from_u64(0xC217);
    for _ in 0..32 {
        let seed = rng.next_u64();
        let n = rng.gen_range(1u64..500);
        for kind in BaselineKind::all() {
            let mut p = build(kind);
            for i in 0..n {
                p.on_load_complete(&outcome(seed, i));
                let _ = p.predict(Ip::new(0x400), Addr::new(0x1000));
            }
            p.reset();
            // After reset, no IP may be predicted critical.
            for i in 0..24u64 {
                assert!(
                    !p.predict(Ip::new(0x400 + i * 8), Addr::new(0)),
                    "{} predicts after reset",
                    p.name()
                );
            }
        }
    }
}

/// The evaluator's confusion counts always partition the scored events
/// and its metrics stay within [0, 1].
#[test]
fn evaluator_counts_partition() {
    let mut rng = SimRng::seed_from_u64(0xC218);
    for _ in 0..32 {
        let seed = rng.next_u64();
        let n = rng.gen_range(1u64..400);
        for kind in BaselineKind::all() {
            let mut ev = PredictorEvaluator::new(build(kind));
            let mut beyond = 0u64;
            for i in 0..n {
                let o = outcome(seed, i);
                if o.level.is_beyond_l1() {
                    beyond += 1;
                }
                ev.observe(&o);
            }
            let c = ev.counts();
            assert_eq!(c.total(), beyond);
            assert!((0.0..=1.0).contains(&c.accuracy()));
            assert!((0.0..=1.0).contains(&c.coverage()));
            let ip = ev.ip_counts();
            assert!((0.0..=1.0).contains(&ip.accuracy()));
            assert!((0.0..=1.0).contains(&ip.coverage()));
        }
    }
}

/// Monotone training: an IP that stalls on every DRAM access must end up
/// predicted critical by every stall-driven baseline.
#[test]
fn persistent_staller_gets_flagged() {
    let mut rng = SimRng::seed_from_u64(0xC219);
    for _ in 0..32 {
        let ip_raw = rng.gen_range(1u64..(1 << 40));
        for kind in [
            BaselineKind::Fp,
            BaselineKind::Cbp,
            BaselineKind::Robo,
            BaselineKind::Fvp,
        ] {
            let mut p = build(kind);
            for i in 0..64u64 {
                p.on_load_complete(&LoadOutcome {
                    ip: Ip::new(ip_raw),
                    addr: Addr::new(i * 64),
                    level: MemLevel::Dram,
                    stalled_head: true,
                    stall_cycles: 80,
                    rob_occupancy: 400,
                    outstanding_loads: 1,
                    done_cycle: i,
                    latency: 300,
                });
            }
            assert!(
                p.predict(Ip::new(ip_raw), Addr::new(0)),
                "{} must flag a persistent staller",
                p.name()
            );
        }
    }
}
