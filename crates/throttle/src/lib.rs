//! Prefetch throttlers: FDP, HPAC, SPAC, and NST (Section 3 / Figure 6).
//!
//! All four operate at epoch granularity on coarse feedback metrics —
//! exactly the property the paper criticises: within an epoch some loads
//! prefetch accurately even when the aggregate accuracy is poor, and vice
//! versa, so epoch-level decisions cannot separate them.
//!
//! A throttler consumes one [`EpochFeedback`] per epoch and returns the
//! aggressiveness level (1..=5) that the simulator applies through the
//! prefetcher's `set_level` hook.

use std::fmt;

/// Aggregate feedback for one epoch of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochFeedback {
    /// Prefetch accuracy in \[0,1\]: useful / resolved.
    pub accuracy: f64,
    /// Prefetch lateness in \[0,1\]: late-but-useful / useful.
    pub lateness: f64,
    /// Cache-pollution estimate in \[0,1\]: demand misses to lines evicted
    /// by prefetches / demand misses.
    pub pollution: f64,
    /// Overall DRAM bandwidth utilization in \[0,1\].
    pub bandwidth_util: f64,
    /// This core's share of DRAM traffic in \[0,1\].
    pub traffic_share: f64,
    /// Estimated per-core prefetch utility (miss-latency saved per unit of
    /// bandwidth consumed), normalised to \[0,1\]. Used by SPAC.
    pub utility: f64,
}

impl Default for EpochFeedback {
    fn default() -> Self {
        EpochFeedback {
            accuracy: 1.0,
            lateness: 0.0,
            pollution: 0.0,
            bandwidth_util: 0.0,
            traffic_share: 0.0,
            utility: 1.0,
        }
    }
}

/// Interface of an epoch-level prefetch aggressiveness controller.
pub trait Throttler {
    /// Consumes one epoch of feedback; returns the new level (1..=5).
    fn on_epoch(&mut self, fb: &EpochFeedback) -> u8;

    /// Current level.
    fn level(&self) -> u8;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Which throttler to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThrottlerKind {
    /// Feedback-directed prefetching (HPCA '07).
    Fdp,
    /// Hierarchical prefetcher aggressiveness control (MICRO '09).
    Hpac,
    /// Synergistic prefetcher aggressiveness controller (TC '16).
    Spac,
    /// Near-side prefetch throttling (PACT '18).
    Nst,
}

impl ThrottlerKind {
    /// All throttlers in Figure 6's order.
    pub fn all() -> [ThrottlerKind; 4] {
        [
            ThrottlerKind::Fdp,
            ThrottlerKind::Hpac,
            ThrottlerKind::Spac,
            ThrottlerKind::Nst,
        ]
    }
}

impl fmt::Display for ThrottlerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThrottlerKind::Fdp => "FDP",
            ThrottlerKind::Hpac => "HPAC",
            ThrottlerKind::Spac => "SPAC",
            ThrottlerKind::Nst => "NST",
        })
    }
}

/// Builds a boxed throttler with default tuning (level 3 start).
pub fn build(kind: ThrottlerKind) -> Box<dyn Throttler> {
    match kind {
        ThrottlerKind::Fdp => Box::new(Fdp::new()),
        ThrottlerKind::Hpac => Box::new(Hpac::new()),
        ThrottlerKind::Spac => Box::new(Spac::new()),
        ThrottlerKind::Nst => Box::new(Nst::new()),
    }
}

const LEVEL_MIN: u8 = 1;
const LEVEL_MAX: u8 = 5;

fn clamp_level(l: i16) -> u8 {
    l.clamp(LEVEL_MIN as i16, LEVEL_MAX as i16) as u8
}

/// FDP: the classic accuracy/lateness/pollution decision table.
///
/// # Examples
///
/// ```
/// use clip_throttle::{EpochFeedback, Fdp, Throttler};
///
/// let mut fdp = Fdp::new();
/// // Accurate but late prefetching: FDP ramps the degree up.
/// let level = fdp.on_epoch(&EpochFeedback {
///     accuracy: 0.9,
///     lateness: 0.3,
///     ..EpochFeedback::default()
/// });
/// assert!(level > 3);
/// ```
#[derive(Debug, Clone)]
pub struct Fdp {
    level: u8,
    acc_high: f64,
    acc_low: f64,
    late_high: f64,
    poll_high: f64,
}

impl Fdp {
    /// Creates FDP with the thresholds of the original paper.
    pub fn new() -> Self {
        Fdp {
            level: 3,
            acc_high: 0.75,
            acc_low: 0.40,
            late_high: 0.10,
            poll_high: 0.05,
        }
    }

    fn decide(&self, fb: &EpochFeedback) -> i16 {
        let acc_high = fb.accuracy >= self.acc_high;
        let acc_low = fb.accuracy < self.acc_low;
        let late = fb.lateness >= self.late_high;
        let poll = fb.pollution >= self.poll_high;
        match (acc_high, acc_low, late, poll) {
            // High accuracy, late → run further ahead.
            (true, _, true, _) => 1,
            // High accuracy, timely, clean → keep.
            (true, _, false, false) => 0,
            // High accuracy but polluting → back off one.
            (true, _, false, true) => -1,
            // Low accuracy and polluting → back off hard.
            (_, true, _, true) => -2,
            // Low accuracy → back off.
            (_, true, _, false) => -1,
            // Mid accuracy: nudge by lateness.
            (false, false, true, _) => 1,
            (false, false, false, _) => 0,
        }
    }
}

impl Default for Fdp {
    fn default() -> Self {
        Self::new()
    }
}

impl Throttler for Fdp {
    fn on_epoch(&mut self, fb: &EpochFeedback) -> u8 {
        self.level = clamp_level(self.level as i16 + self.decide(fb));
        self.level
    }

    fn level(&self) -> u8 {
        self.level
    }

    fn name(&self) -> &'static str {
        "FDP"
    }
}

/// HPAC: per-core FDP plus a global layer that overrides local decisions
/// when the shared memory system is congested and the core is hurting
/// others (low accuracy + high bandwidth share).
#[derive(Debug, Clone)]
pub struct Hpac {
    local: Fdp,
    bw_high: f64,
    share_high: f64,
}

impl Hpac {
    /// Creates HPAC with default global thresholds.
    pub fn new() -> Self {
        Hpac {
            local: Fdp::new(),
            bw_high: 0.75,
            share_high: 0.04, // 1/64 would be fair in a 64-core system
        }
    }
}

impl Default for Hpac {
    fn default() -> Self {
        Self::new()
    }
}

impl Throttler for Hpac {
    fn on_epoch(&mut self, fb: &EpochFeedback) -> u8 {
        let mut level = clamp_level(self.local.level as i16 + self.local.decide(fb));
        // Global override: congested bus + this core over-consuming with
        // mediocre accuracy → force down.
        if fb.bandwidth_util >= self.bw_high
            && fb.traffic_share >= self.share_high
            && fb.accuracy < 0.9
        {
            level = clamp_level(level as i16 - 2);
        }
        self.local.level = level;
        level
    }

    fn level(&self) -> u8 {
        self.local.level
    }

    fn name(&self) -> &'static str {
        "HPAC"
    }
}

/// SPAC: drives each prefetcher toward the aggressiveness that maximises
/// system-wide fair speedup, approximated by per-core prefetch *utility*
/// (latency saved per unit bandwidth). Under congestion, low-utility
/// cores throttle first.
#[derive(Debug, Clone)]
pub struct Spac {
    level: u8,
}

impl Spac {
    /// Creates SPAC at the default level.
    pub fn new() -> Self {
        Spac { level: 3 }
    }
}

impl Default for Spac {
    fn default() -> Self {
        Self::new()
    }
}

impl Throttler for Spac {
    fn on_epoch(&mut self, fb: &EpochFeedback) -> u8 {
        let target = if fb.bandwidth_util >= 0.8 {
            // Congested: level proportional to utility.
            1.0 + fb.utility * 3.0
        } else if fb.bandwidth_util >= 0.5 {
            2.0 + fb.utility * 3.0
        } else {
            // Plenty of headroom: be aggressive if at all useful.
            if fb.utility > 0.2 {
                5.0
            } else {
                3.0
            }
        };
        let target = target.round() as i16;
        // Move one step toward the target per epoch (stability).
        let step = (target - self.level as i16).signum();
        self.level = clamp_level(self.level as i16 + step);
        self.level
    }

    fn level(&self) -> u8 {
        self.level
    }

    fn name(&self) -> &'static str {
        "SPAC"
    }
}

/// NST: near-side throttling — keeps the far-side (distance) aggressive
/// but cuts issue rate near the core when accuracy drops; recovers fast
/// when accuracy is restored.
#[derive(Debug, Clone)]
pub struct Nst {
    level: u8,
    bad_epochs: u8,
}

impl Nst {
    /// Creates NST at the default level.
    pub fn new() -> Self {
        Nst {
            level: 3,
            bad_epochs: 0,
        }
    }
}

impl Default for Nst {
    fn default() -> Self {
        Self::new()
    }
}

impl Throttler for Nst {
    fn on_epoch(&mut self, fb: &EpochFeedback) -> u8 {
        if fb.accuracy < 0.60 {
            self.bad_epochs = self.bad_epochs.saturating_add(1);
            if self.bad_epochs >= 2 {
                self.level = clamp_level(self.level as i16 - 1);
            }
        } else {
            self.bad_epochs = 0;
            if fb.accuracy > 0.85 {
                self.level = clamp_level(self.level as i16 + 1);
            }
        }
        self.level
    }

    fn level(&self) -> u8 {
        self.level
    }

    fn name(&self) -> &'static str {
        "NST"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(accuracy: f64, lateness: f64, pollution: f64, bw: f64) -> EpochFeedback {
        EpochFeedback {
            accuracy,
            lateness,
            pollution,
            bandwidth_util: bw,
            traffic_share: 1.0 / 64.0,
            utility: accuracy,
        }
    }

    #[test]
    fn fdp_ramps_up_on_accurate_late() {
        let mut t = Fdp::new();
        for _ in 0..5 {
            t.on_epoch(&fb(0.9, 0.3, 0.0, 0.5));
        }
        assert_eq!(t.level(), 5);
    }

    #[test]
    fn fdp_backs_off_on_inaccuracy() {
        let mut t = Fdp::new();
        for _ in 0..5 {
            t.on_epoch(&fb(0.2, 0.0, 0.1, 0.5));
        }
        assert_eq!(t.level(), 1);
    }

    #[test]
    fn fdp_holds_on_accurate_timely() {
        let mut t = Fdp::new();
        let l0 = t.level();
        t.on_epoch(&fb(0.9, 0.0, 0.0, 0.3));
        assert_eq!(t.level(), l0);
    }

    #[test]
    fn hpac_overrides_under_congestion() {
        let mut fdp = Fdp::new();
        let mut hpac = Hpac::new();
        let feedback = EpochFeedback {
            accuracy: 0.7,
            lateness: 0.2,
            pollution: 0.0,
            bandwidth_util: 0.95,
            traffic_share: 0.1,
            utility: 0.5,
        };
        let lf = fdp.on_epoch(&feedback);
        let lh = hpac.on_epoch(&feedback);
        assert!(
            lh < lf,
            "HPAC's global stage must throttle harder: {lh} vs {lf}"
        );
    }

    #[test]
    fn spac_tracks_utility_under_congestion() {
        let mut high = Spac::new();
        let mut low = Spac::new();
        for _ in 0..6 {
            high.on_epoch(&EpochFeedback {
                bandwidth_util: 0.9,
                utility: 1.0,
                ..EpochFeedback::default()
            });
            low.on_epoch(&EpochFeedback {
                bandwidth_util: 0.9,
                utility: 0.0,
                ..EpochFeedback::default()
            });
        }
        assert!(high.level() > low.level());
        assert_eq!(low.level(), 1);
    }

    #[test]
    fn spac_aggressive_with_headroom() {
        let mut t = Spac::new();
        for _ in 0..4 {
            t.on_epoch(&EpochFeedback {
                bandwidth_util: 0.2,
                utility: 0.9,
                ..EpochFeedback::default()
            });
        }
        assert_eq!(t.level(), 5);
    }

    #[test]
    fn nst_needs_sustained_inaccuracy() {
        let mut t = Nst::new();
        t.on_epoch(&fb(0.3, 0.0, 0.0, 0.5));
        assert_eq!(t.level(), 3, "one bad epoch is tolerated");
        t.on_epoch(&fb(0.3, 0.0, 0.0, 0.5));
        assert!(t.level() < 3);
        // Recovery.
        for _ in 0..5 {
            t.on_epoch(&fb(0.95, 0.0, 0.0, 0.5));
        }
        assert_eq!(t.level(), 5);
    }

    #[test]
    fn display_names_match_builders() {
        for kind in ThrottlerKind::all() {
            let t = build(kind);
            assert_eq!(t.name(), kind.to_string());
            assert_eq!(t.level(), 3, "all throttlers start at the default level");
        }
    }

    #[test]
    fn default_feedback_is_benign() {
        // A perfect epoch (accuracy 1.0, no lateness/pollution, idle bus)
        // must never throttle below the default.
        for kind in ThrottlerKind::all() {
            let mut t = build(kind);
            for _ in 0..10 {
                t.on_epoch(&EpochFeedback::default());
            }
            assert!(
                t.level() >= 3,
                "{} throttled a perfect prefetcher",
                t.name()
            );
        }
    }

    #[test]
    fn levels_stay_in_range_under_fuzz() {
        for kind in ThrottlerKind::all() {
            let mut t = build(kind);
            for i in 0..200u64 {
                let h = clip_types::hash64(i);
                let level = t.on_epoch(&fb(
                    (h & 0xff) as f64 / 255.0,
                    ((h >> 8) & 0xff) as f64 / 255.0,
                    ((h >> 16) & 0xff) as f64 / 255.0,
                    ((h >> 24) & 0xff) as f64 / 255.0,
                ));
                assert!((1..=5).contains(&level), "{}", t.name());
            }
        }
    }
}
