//! Hashed perceptron branch predictor (Jiménez & Lin, HPCA '01), the
//! baseline predictor of Table 3.
//!
//! Each branch IP hashes to a weight vector; the prediction is the sign of
//! the dot product of the weights with the global history bits (plus a bias
//! weight). Training uses the standard threshold rule.

use clip_types::{BitHistory, Ip};

const TABLE_SIZE: usize = 1024;
const HISTORY_BITS: usize = 16;
const WEIGHT_MAX: i16 = 63;
const WEIGHT_MIN: i16 = -64;
/// Training threshold θ ≈ 1.93 * h + 14 for h = 16.
const THETA: i32 = 45;

/// A hashed perceptron branch direction predictor.
///
/// # Examples
///
/// ```
/// use clip_cpu::PerceptronPredictor;
/// use clip_types::{BitHistory, Ip};
///
/// let mut predictor = PerceptronPredictor::new();
/// let mut history = BitHistory::new(32);
/// for _ in 0..64 {
///     predictor.update(Ip::new(0x400), history, true);
///     history.push(true);
/// }
/// assert!(predictor.predict(Ip::new(0x400), history));
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// `TABLE_SIZE` rows of `HISTORY_BITS + 1` weights (bias first).
    weights: Vec<[i16; HISTORY_BITS + 1]>,
}

impl PerceptronPredictor {
    /// Creates a zero-initialised predictor.
    pub fn new() -> Self {
        PerceptronPredictor {
            weights: vec![[0; HISTORY_BITS + 1]; TABLE_SIZE],
        }
    }

    #[inline]
    fn row(&self, ip: Ip) -> usize {
        (clip_types::hash64(ip.raw()) as usize) % TABLE_SIZE
    }

    #[inline]
    fn dot(&self, row: usize, history: BitHistory) -> i32 {
        let w = &self.weights[row];
        let mut y = w[0] as i32; // bias
        let bits = history.bits();
        for (i, wi) in w.iter().skip(1).enumerate() {
            let x = if (bits >> i) & 1 == 1 { 1 } else { -1 };
            y += *wi as i32 * x;
        }
        y
    }

    /// Predicts the direction of `ip` under the global `history`.
    pub fn predict(&self, ip: Ip, history: BitHistory) -> bool {
        self.dot(self.row(ip), history) >= 0
    }

    /// Trains on the resolved outcome. Standard perceptron rule: update on
    /// a misprediction or when |y| ≤ θ.
    pub fn update(&mut self, ip: Ip, history: BitHistory, taken: bool) {
        let row = self.row(ip);
        let y = self.dot(row, history);
        let predicted = y >= 0;
        if predicted == taken && y.abs() > THETA {
            return;
        }
        let t = if taken { 1i16 } else { -1 };
        let bits = history.bits();
        let w = &mut self.weights[row];
        w[0] = (w[0] + t).clamp(WEIGHT_MIN, WEIGHT_MAX);
        for i in 0..HISTORY_BITS {
            let x = if (bits >> i) & 1 == 1 { 1i16 } else { -1 };
            w[i + 1] = (w[i + 1] + t * x).clamp(WEIGHT_MIN, WEIGHT_MAX);
        }
    }
}

impl Default for PerceptronPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = PerceptronPredictor::new();
        let ip = Ip::new(0x4000);
        let mut h = BitHistory::new(32);
        let mut correct = 0;
        for i in 0..200 {
            let pred = p.predict(ip, h);
            if pred && i > 20 {
                correct += 1;
            }
            p.update(ip, h, true);
            h.push(true);
        }
        assert!(correct > 170, "must converge to always-taken: {correct}");
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // Outcome = previous outcome (runs): perfectly history-predictable.
        let mut p = PerceptronPredictor::new();
        let ip = Ip::new(0x5000);
        let mut h = BitHistory::new(32);
        let mut outcome = false;
        let mut wrong_late = 0;
        for i in 0..2000u32 {
            if i % 7 == 0 {
                outcome = !outcome;
            }
            let pred = p.predict(ip, h);
            if pred != outcome && i > 1000 {
                wrong_late += 1;
            }
            p.update(ip, h, outcome);
            h.push(outcome);
        }
        // Only transition points (1 in 7) should miss; allow slack.
        assert!(wrong_late < 300, "history pattern learnable: {wrong_late}");
    }

    #[test]
    fn random_outcomes_stay_near_chance() {
        let mut p = PerceptronPredictor::new();
        let ip = Ip::new(0x6000);
        let mut h = BitHistory::new(32);
        let mut wrong = 0u32;
        let n = 4000u32;
        for i in 0..n {
            let outcome = clip_types::hash64(i as u64) & 1 == 1;
            if p.predict(ip, h) != outcome {
                wrong += 1;
            }
            p.update(ip, h, outcome);
            h.push(outcome);
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.3, "random branches are not predictable: {rate}");
    }

    #[test]
    fn weights_stay_clamped() {
        let mut p = PerceptronPredictor::new();
        let ip = Ip::new(0x7000);
        let h = BitHistory::new(32);
        for _ in 0..10_000 {
            p.update(ip, h, true);
        }
        let row = p.row(ip);
        for w in p.weights[row] {
            assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&w));
        }
    }
}
