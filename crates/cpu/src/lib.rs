//! Out-of-order core model: ROB, dispatch/retire, branch prediction, and
//! the ROB-stall bookkeeping that defines load criticality.
//!
//! The model is trace-driven, like the ChampSim cores of the paper: it
//! consumes [`clip_trace::Instr`]s, dispatches up to `issue_width` per
//! cycle into a `rob_entries`-deep reorder buffer, issues loads to the
//! memory hierarchy through a [`MemIssuePort`], and retires in order up to
//! `retire_width` per cycle. A load that is incomplete at the ROB head
//! blocks retirement — the paper's ROB-stall flag — and when its response
//! arrives from beyond the L1 (the miss-level flag), a [`LoadOutcome`] with
//! `stalled_head = true` is produced: the ground truth every criticality
//! predictor in this workspace trains against.
//!
//! # Examples
//!
//! ```
//! use clip_cpu::{Core, MemIssuePort};
//! use clip_types::{Addr, CoreConfig, Cycle, Ip, ReqId};
//!
//! struct AlwaysHit(u64);
//! impl MemIssuePort for AlwaysHit {
//!     fn issue_load(&mut self, _: Ip, _: Addr, _: Cycle) -> Option<ReqId> {
//!         self.0 += 1;
//!         Some(ReqId(self.0))
//!     }
//!     fn issue_store(&mut self, _: Ip, _: Addr, _: Cycle) -> bool { true }
//! }
//!
//! let mut core = Core::new(&CoreConfig::default());
//! assert_eq!(core.retired(), 0);
//! ```

pub mod perceptron;

pub use perceptron::PerceptronPredictor;

use clip_trace::{Instr, InstrKind};
use clip_types::{Addr, BitHistory, CoreConfig, Cycle, Fnv64, Ip, MemLevel, ReqId};
use std::collections::VecDeque;

/// The interface a core uses to issue memory operations.
///
/// Implemented by the simulator's per-core L1D front end. Returning `None`
/// (or `false`) signals structural back-pressure (MSHRs or queues full);
/// the core retries the same instruction next cycle.
pub trait MemIssuePort {
    /// Attempts to issue a demand load; returns its request id on success.
    fn issue_load(&mut self, ip: Ip, addr: Addr, now: Cycle) -> Option<ReqId>;
    /// Attempts to issue a demand store; returns success.
    fn issue_store(&mut self, ip: Ip, addr: Addr, now: Cycle) -> bool;
}

/// The completion record of one demand load, produced by
/// [`Core::complete_load`]. This is the training event for CLIP and for
/// every baseline criticality predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Load instruction pointer.
    pub ip: Ip,
    /// Byte address loaded.
    pub addr: Addr,
    /// Deepest level that serviced the load (the miss-level flag).
    pub level: MemLevel,
    /// True when the load was blocking the ROB head while the response was
    /// outstanding — the paper's criticality ground truth.
    pub stalled_head: bool,
    /// Cycles the ROB head was blocked by this load.
    pub stall_cycles: u64,
    /// ROB occupancy when the response arrived (used by ROBO).
    pub rob_occupancy: usize,
    /// Loads still outstanding when this one completed — the MLP proxy
    /// CRISP thresholds on.
    pub outstanding_loads: usize,
    /// Completion cycle.
    pub done_cycle: Cycle,
    /// Round-trip latency of the load in cycles.
    pub latency: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Waiting for execution to finish at `Cycle`.
    DoneAt(Cycle),
    /// Load in flight in the memory hierarchy.
    InFlight(ReqId),
    /// Completed.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    ip: Ip,
    is_load: bool,
    addr: Addr,
    state: EntryState,
    /// Filled when the load response arrives.
    level: MemLevel,
}

/// Aggregate statistics of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles retirement was blocked by an incomplete head.
    pub head_stall_cycles: u64,
    /// Head stalls caused by loads serviced beyond L1.
    pub head_stall_cycles_beyond_l1: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Cycles dispatch was blocked by memory back-pressure.
    pub dispatch_blocked_mem: u64,
    /// Sum of load round-trip latencies (for averages).
    pub total_load_latency: u64,
    /// Loads serviced beyond the L1.
    pub loads_beyond_l1: u64,
}

impl CoreStats {
    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// One out-of-order core.
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    rob: VecDeque<RobEntry>,
    predictor: PerceptronPredictor,
    branch_history: BitHistory,
    fetch_stall_until: Cycle,
    pending: Option<Instr>,
    outstanding_loads: usize,
    serialized_inflight: bool,
    pending_serialized: bool,
    head_stall_started: Option<Cycle>,
    stats: CoreStats,
    /// Instructions pushed into the ROB (audit counter: the ROB balance
    /// proves `dispatched - retired - squashed == rob.len()`).
    dispatched: u64,
    /// Instructions squashed out of the ROB. The current model never
    /// squashes (mispredicts only stall fetch), so this stays 0 in clean
    /// runs; the counter exists so the balance equation survives a future
    /// squash path and so injected corruption has nowhere to hide.
    squashed: u64,
    /// Load completions accepted by [`Core::complete_load`] (audit
    /// counter: `stats.loads - load_completions == outstanding_loads`).
    load_completions: u64,
}

impl Core {
    /// Creates a core with the given configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        Core {
            cfg: *cfg,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            predictor: PerceptronPredictor::default(),
            branch_history: BitHistory::new(32),
            fetch_stall_until: 0,
            pending: None,
            outstanding_loads: 0,
            serialized_inflight: false,
            pending_serialized: false,
            head_stall_started: None,
            stats: CoreStats::default(),
            dispatched: 0,
            squashed: 0,
            load_completions: 0,
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Demand loads currently in flight (load-queue occupancy).
    pub fn loads_in_flight(&self) -> usize {
        self.outstanding_loads
    }

    /// The architectural global history of the last 32 conditional branch
    /// outcomes — one of CLIP's critical-signature inputs.
    pub fn branch_history(&self) -> BitHistory {
        self.branch_history
    }

    /// True when retirement is currently blocked by an incomplete head —
    /// the paper's ROB stall flag.
    pub fn rob_stalled(&self) -> bool {
        self.head_stall_started.is_some()
    }

    /// Advances one cycle: retire, then dispatch from `fetch` through
    /// `port`. `fetch` is polled only when the core actually needs a new
    /// instruction.
    pub fn tick<F>(&mut self, now: Cycle, fetch: &mut F, port: &mut dyn MemIssuePort)
    where
        F: FnMut() -> Instr,
    {
        self.stats.cycles += 1;
        self.retire(now);
        self.dispatch(now, fetch, port);
    }

    fn retire(&mut self, now: Cycle) {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(head) = self.rob.front() else {
                self.head_stall_started = None;
                return;
            };
            let done = match head.state {
                EntryState::Done => true,
                EntryState::DoneAt(t) => t <= now,
                EntryState::InFlight(_) => false,
            };
            if done {
                self.rob.pop_front();
                self.stats.retired += 1;
                retired += 1;
                self.head_stall_started = None;
            } else {
                // ROB stall flag set: head incomplete.
                if self.head_stall_started.is_none() {
                    self.head_stall_started = Some(now);
                }
                self.stats.head_stall_cycles += 1;
                if head.is_load && matches!(head.state, EntryState::InFlight(_)) {
                    self.stats.head_stall_cycles_beyond_l1 += 1;
                }
                return;
            }
        }
    }

    fn dispatch<F>(&mut self, now: Cycle, fetch: &mut F, port: &mut dyn MemIssuePort)
    where
        F: FnMut() -> Instr,
    {
        if now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.issue_width {
            if self.rob.len() >= self.cfg.rob_entries {
                return;
            }
            let instr = match self.pending.take() {
                Some(i) => i,
                None => fetch(),
            };
            match instr.kind {
                InstrKind::Alu { latency } => {
                    self.dispatched += 1;
                    self.rob.push_back(RobEntry {
                        ip: instr.ip,
                        is_load: false,
                        addr: Addr::new(0),
                        state: EntryState::DoneAt(now + latency as Cycle),
                        level: MemLevel::L1,
                    });
                }
                InstrKind::Branch { taken } => {
                    self.stats.branches += 1;
                    let predicted = self.predictor.predict(instr.ip, self.branch_history);
                    self.predictor.update(instr.ip, self.branch_history, taken);
                    self.branch_history.push(taken);
                    self.dispatched += 1;
                    self.rob.push_back(RobEntry {
                        ip: instr.ip,
                        is_load: false,
                        addr: Addr::new(0),
                        state: EntryState::DoneAt(now + 1),
                        level: MemLevel::L1,
                    });
                    if predicted != taken {
                        self.stats.mispredicts += 1;
                        // Decoupled-front-end redirect: no further dispatch
                        // until the pipeline refills.
                        self.fetch_stall_until = now + 1 + self.cfg.mispredict_penalty;
                        return;
                    }
                }
                InstrKind::Store { addr } => {
                    if !port.issue_store(instr.ip, addr, now) {
                        self.stats.dispatch_blocked_mem += 1;
                        self.pending = Some(instr);
                        return;
                    }
                    self.stats.stores += 1;
                    // Stores retire without waiting for memory (post-commit
                    // store buffer).
                    self.dispatched += 1;
                    self.rob.push_back(RobEntry {
                        ip: instr.ip,
                        is_load: false,
                        addr,
                        state: EntryState::DoneAt(now + 1),
                        level: MemLevel::L1,
                    });
                }
                InstrKind::Load { addr, serialized } => {
                    if self.outstanding_loads >= self.cfg.load_queue {
                        self.stats.dispatch_blocked_mem += 1;
                        self.pending = Some(instr);
                        return;
                    }
                    if serialized && self.serialized_inflight {
                        // Dependent pointer chase: the address is not ready
                        // until the previous chase load returns.
                        self.stats.dispatch_blocked_mem += 1;
                        self.pending = Some(instr);
                        return;
                    }
                    let Some(req) = port.issue_load(instr.ip, addr, now) else {
                        self.stats.dispatch_blocked_mem += 1;
                        self.pending = Some(instr);
                        return;
                    };
                    self.stats.loads += 1;
                    self.outstanding_loads += 1;
                    if serialized {
                        self.serialized_inflight = true;
                        self.pending_serialized = true;
                    }
                    self.dispatched += 1;
                    self.rob.push_back(RobEntry {
                        ip: instr.ip,
                        is_load: true,
                        addr,
                        state: EntryState::InFlight(req),
                        level: MemLevel::L1,
                    });
                }
            }
        }
    }

    /// Audits the core's conservation invariants; `full` adds the per-entry
    /// ROB scan. Read-only. Returns a diagnostic naming the broken counters
    /// on failure.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a human-readable string.
    pub fn audit(&self, full: bool) -> Result<(), String> {
        if self.rob.len() > self.cfg.rob_entries {
            return Err(format!(
                "rob over capacity: {} entries but rob_entries={}",
                self.rob.len(),
                self.cfg.rob_entries
            ));
        }
        let live = self.dispatched - self.stats.retired - self.squashed;
        if live != self.rob.len() as u64 {
            return Err(format!(
                "rob balance broken: dispatched={} retired={} squashed={} \
                 but {} entries live (leaked {})",
                self.dispatched,
                self.stats.retired,
                self.squashed,
                self.rob.len(),
                live as i64 - self.rob.len() as i64,
            ));
        }
        if self.outstanding_loads > self.cfg.load_queue {
            return Err(format!(
                "load queue over capacity: {} outstanding but load_queue={}",
                self.outstanding_loads, self.cfg.load_queue
            ));
        }
        let lq = self.stats.loads - self.load_completions;
        if lq != self.outstanding_loads as u64 {
            return Err(format!(
                "load queue balance broken: issued={} completed={} but {} \
                 outstanding (leaked {})",
                self.stats.loads,
                self.load_completions,
                self.outstanding_loads,
                lq as i64 - self.outstanding_loads as i64,
            ));
        }
        if full {
            // Per-entry scan: every in-flight ROB load must be backed by a
            // load-queue slot; a Done load whose slot was freed twice (a
            // duplicated wakeup) shows up here as a stale in-flight count.
            let inflight = self
                .rob
                .iter()
                .filter(|e| matches!(e.state, EntryState::InFlight(_)))
                .count();
            if inflight != self.outstanding_loads {
                return Err(format!(
                    "stale load-queue accounting: {} rob entries in flight \
                     but {} outstanding loads tracked",
                    inflight, self.outstanding_loads
                ));
            }
        }
        Ok(())
    }

    /// Folds the core's architectural + queue state into a fingerprint:
    /// retired count, branch history, load-queue occupancy, and every ROB
    /// entry in program order. Deterministic for a deterministic run.
    pub fn fingerprint(&self, h: &mut Fnv64) {
        h.write_u64(self.stats.retired)
            .write_u64(self.branch_history.bits())
            .write_usize(self.outstanding_loads)
            .write_usize(self.rob.len());
        for e in &self.rob {
            let (tag, word) = match e.state {
                EntryState::DoneAt(t) => (1u64, t),
                EntryState::InFlight(r) => (2, r.0),
                EntryState::Done => (3, 0),
            };
            h.write_u64(e.ip.raw())
                .write_bool(e.is_load)
                .write_u64(tag)
                .write_u64(word)
                .write_u64(e.level as u64);
        }
    }

    /// Fault injection: pops the ROB head without crediting the retired
    /// counter — a "stale retire" that breaks the ROB balance equation.
    /// Returns false when the ROB is empty (nothing to corrupt).
    pub fn inject_stale_retire(&mut self) -> bool {
        self.rob.pop_front().is_some()
    }

    /// Fault injection: marks the `sel`-th in-flight load as done without
    /// recording a completion — the duplicated-delivery corruption. The
    /// real completion later misses (unknown request) and the load-queue
    /// balance stays broken by one. Returns false when no load is in
    /// flight.
    pub fn inject_duplicate_wakeup(&mut self, sel: u64) -> bool {
        let inflight: Vec<usize> = self
            .rob
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.state, EntryState::InFlight(_)))
            .map(|(i, _)| i)
            .collect();
        if inflight.is_empty() {
            return false;
        }
        let victim = inflight[(sel % inflight.len() as u64) as usize];
        self.rob[victim].state = EntryState::Done;
        self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
        true
    }

    /// Delivers a load response. Returns the [`LoadOutcome`] used to train
    /// criticality predictors, or `None` if the request is unknown (e.g.
    /// duplicated completion).
    pub fn complete_load(
        &mut self,
        req: ReqId,
        level: MemLevel,
        now: Cycle,
    ) -> Option<LoadOutcome> {
        let mut found = None;
        for (i, e) in self.rob.iter_mut().enumerate() {
            if let EntryState::InFlight(r) = e.state {
                if r == req {
                    e.state = EntryState::Done;
                    e.level = level;
                    found = Some(i);
                    break;
                }
            }
        }
        let i = found?;
        self.load_completions += 1;
        self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
        // Any returning serialized load unblocks the chain; we do not track
        // which request was the serialized one to keep the model simple —
        // chases are the dominant in-flight loads in chase phases.
        if self.pending_serialized {
            self.serialized_inflight = false;
            self.pending_serialized = false;
        }
        let at_head = i == 0;
        let stalled_head = at_head && self.head_stall_started.is_some();
        let stall_cycles = if stalled_head {
            now.saturating_sub(self.head_stall_started.unwrap_or(now))
        } else {
            0
        };
        let e = self.rob[i];
        if level.is_beyond_l1() {
            self.stats.loads_beyond_l1 += 1;
        }
        Some(LoadOutcome {
            ip: e.ip,
            addr: e.addr,
            level,
            stalled_head,
            stall_cycles,
            rob_occupancy: self.rob.len(),
            outstanding_loads: self.outstanding_loads,
            done_cycle: now,
            latency: 0, // filled by the caller, which knows the issue cycle
        })
    }

    /// Quiescence hook (see `clip_types::engine::Tick::next_activity`):
    /// the earliest cycle `>= now` at which ticking this core does
    /// anything beyond the bulk-accountable stall counters that
    /// [`Core::skip_stalled`] settles, or `None` when only an external
    /// load completion can wake it.
    ///
    /// The retire side is gated by the ROB head: `Done` (or a due
    /// `DoneAt`) retires now, a future `DoneAt(t)` wakes at `t`, and
    /// `InFlight` waits on the memory hierarchy. The dispatch side is
    /// active now unless fetch is redirecting (`fetch_stall_until`), the
    /// ROB is full, or the pending instruction is a load blocked purely
    /// by core-local state (a full load queue, or a serialized pointer
    /// chase waiting on the previous link) — a load or store blocked by
    /// *port* back-pressure keeps the core active, since only the memory
    /// side knows when the port frees up.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let retire_side = match self.rob.front() {
            None => {
                // Retiring into an empty ROB clears the stall flag; only
                // then is the retire side truly inert.
                if self.head_stall_started.is_some() {
                    Some(now)
                } else {
                    None
                }
            }
            Some(head) => match head.state {
                EntryState::Done => Some(now),
                EntryState::DoneAt(t) => Some(t.max(now)),
                EntryState::InFlight(_) => None,
            },
        };
        let dispatch_side = if now < self.fetch_stall_until {
            Some(self.fetch_stall_until)
        } else if self.rob.len() >= self.cfg.rob_entries {
            None
        } else {
            match &self.pending {
                Some(i) => match i.kind {
                    InstrKind::Load { serialized, .. }
                        if self.outstanding_loads >= self.cfg.load_queue
                            || (serialized && self.serialized_inflight) =>
                    {
                        None
                    }
                    _ => Some(now),
                },
                None => Some(now),
            }
        };
        match (retire_side, dispatch_side) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Bulk accounting for a skipped span of `n` cycles starting at
    /// `first`, during which [`Core::next_activity`] reported nothing to
    /// do: the per-cycle counters a stalled tick would have bumped —
    /// `cycles` always, `head_stall_cycles` (and `_beyond_l1` for an
    /// in-flight load head) while the head blocks retirement, and
    /// `dispatch_blocked_mem` while a pure-blocked pending load re-polls
    /// the load queue. After this, core state is bit-identical to having
    /// ticked every cycle of the span.
    ///
    /// The caller guarantees the whole span is quiescent: no cycle in
    /// `first..first + n` reaches the activity cycle `next_activity`
    /// reported, and no load completion arrives inside the span.
    pub fn skip_stalled(&mut self, first: Cycle, n: u64) {
        self.stats.cycles += n;
        if n == 0 {
            return;
        }
        if let Some(head) = self.rob.front() {
            let stalled = match head.state {
                EntryState::InFlight(_) => true,
                // The caller never skips past `t`, so a future DoneAt
                // head blocks retirement for the whole span.
                EntryState::DoneAt(t) => t > first,
                EntryState::Done => false,
            };
            if stalled {
                if self.head_stall_started.is_none() {
                    self.head_stall_started = Some(first);
                }
                self.stats.head_stall_cycles += n;
                if head.is_load && matches!(head.state, EntryState::InFlight(_)) {
                    self.stats.head_stall_cycles_beyond_l1 += n;
                }
            }
        }
        // Dispatch re-polls a pure-blocked pending load every cycle (the
        // rob-full and fetch-redirect returns happen before any counter).
        if first >= self.fetch_stall_until
            && self.rob.len() < self.cfg.rob_entries
            && matches!(
                self.pending,
                Some(Instr {
                    kind: InstrKind::Load { .. },
                    ..
                })
            )
        {
            self.stats.dispatch_blocked_mem += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::CoreConfig;

    /// A scriptable memory port.
    struct TestPort {
        next: u64,
        accept: bool,
        issued: Vec<(Ip, Addr)>,
    }

    impl TestPort {
        fn new() -> Self {
            TestPort {
                next: 0,
                accept: true,
                issued: Vec::new(),
            }
        }
    }

    impl MemIssuePort for TestPort {
        fn issue_load(&mut self, ip: Ip, addr: Addr, _now: Cycle) -> Option<ReqId> {
            if !self.accept {
                return None;
            }
            self.next += 1;
            self.issued.push((ip, addr));
            Some(ReqId(self.next))
        }
        fn issue_store(&mut self, _ip: Ip, _addr: Addr, _now: Cycle) -> bool {
            self.accept
        }
    }

    fn alu() -> Instr {
        Instr {
            ip: Ip::new(0x100),
            kind: InstrKind::Alu { latency: 1 },
        }
    }

    fn load(ip: u64, addr: u64) -> Instr {
        Instr {
            ip: Ip::new(ip),
            kind: InstrKind::Load {
                addr: Addr::new(addr),
                serialized: false,
            },
        }
    }

    #[test]
    fn alu_stream_retires_at_width() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut fetch = || alu();
        for now in 0..100 {
            core.tick(now, &mut fetch, &mut port);
        }
        // Retire width 4 bounds IPC at 4.
        let ipc = core.stats().ipc();
        assert!(ipc > 3.0 && ipc <= 4.0, "ipc={ipc}");
    }

    #[test]
    fn load_blocks_head_until_completion() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut first = true;
        let mut fetch = || {
            if first {
                first = false;
                load(0x400, 0x1000)
            } else {
                alu()
            }
        };
        for now in 0..10 {
            core.tick(now, &mut fetch, &mut port);
        }
        // The load is in flight; nothing can retire past it.
        assert_eq!(core.retired(), 0);
        assert!(core.rob_stalled());
        let out = core
            .complete_load(ReqId(1), MemLevel::Dram, 10)
            .expect("known request");
        assert!(out.stalled_head);
        assert!(out.level.is_beyond_l1());
        assert!(out.stall_cycles > 0);
        for now in 11..14 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.retired() > 0);
        assert!(!core.rob_stalled() || core.rob_occupancy() > 0);
    }

    #[test]
    fn l1_hit_like_completion_is_not_beyond_l1() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut n = 0;
        let mut fetch = || {
            n += 1;
            if n == 1 {
                load(0x400, 0x40)
            } else {
                alu()
            }
        };
        core.tick(0, &mut fetch, &mut port);
        let out = core.complete_load(ReqId(1), MemLevel::L1, 1).unwrap();
        assert!(!out.level.is_beyond_l1());
    }

    #[test]
    fn mem_backpressure_blocks_dispatch() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        port.accept = false;
        let mut fetch = || load(0x400, 0x1000);
        for now in 0..10 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert_eq!(core.stats().loads, 0);
        assert!(core.stats().dispatch_blocked_mem > 0);
        // Unblock; the same pending instruction issues exactly once.
        port.accept = true;
        core.tick(10, &mut fetch, &mut port);
        assert!(core.stats().loads >= 1);
        assert_eq!(port.issued[0].1, Addr::new(0x1000));
    }

    #[test]
    fn quiescence_follows_rob_head_and_pending_state() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        // A fresh core wants to fetch: active now.
        assert_eq!(core.next_activity(0), Some(0));
        // Serialized chase: first load in flight, second pure-blocked on
        // it — only a completion can wake the core.
        let mut n = 0u64;
        let mut fetch = || {
            n += 1;
            Instr {
                ip: Ip::new(0x400 + n),
                kind: InstrKind::Load {
                    addr: Addr::new(0x1000 + 64 * n),
                    serialized: true,
                },
            }
        };
        core.tick(0, &mut fetch, &mut port);
        assert_eq!(
            core.next_activity(1),
            None,
            "chase stall is externally gated"
        );
        core.complete_load(ReqId(1), MemLevel::Dram, 40).unwrap();
        assert_eq!(
            core.next_activity(41),
            Some(41),
            "completion wakes the core"
        );
    }

    #[test]
    fn quiescence_reports_done_at_and_fetch_redirect_cycles() {
        let cfg = CoreConfig {
            rob_entries: 4,
            ..CoreConfig::default()
        };
        let mut core = Core::new(&cfg);
        let mut port = TestPort::new();
        let mut fetch = || Instr {
            ip: Ip::new(0x200),
            kind: InstrKind::Alu { latency: 30 },
        };
        core.tick(0, &mut fetch, &mut port);
        // ROB is now full of DoneAt entries; the head completes at 30 and
        // the full ROB gates dispatch, so 30 is the next interesting cycle.
        let next = core.next_activity(1).expect("a DoneAt head wakes itself");
        assert_eq!(next, 30);
        assert_eq!(core.next_activity(31), Some(31), "a due head retires now");
    }

    #[test]
    fn skip_stalled_matches_ticked_pointer_chase_stall() {
        // Two identical cores enter a serialized-load stall; one ticks
        // through 100 dead cycles, the other settles them in bulk. Stats
        // and fingerprints must agree bit-for-bit, before and after the
        // load completes.
        let mut cores: Vec<Core> = Vec::new();
        for _ in 0..2 {
            let mut core = Core::new(&CoreConfig::default());
            let mut port = TestPort::new();
            let mut n = 0u64;
            let mut fetch = || {
                n += 1;
                Instr {
                    ip: Ip::new(0x400 + n),
                    kind: InstrKind::Load {
                        addr: Addr::new(0x1000 + 64 * n),
                        serialized: true,
                    },
                }
            };
            core.tick(0, &mut fetch, &mut port);
            assert_eq!(core.next_activity(1), None);
            cores.push(core);
        }
        let (mut stepped, mut skipped) = (cores.remove(0), cores.remove(0));
        let mut port = TestPort::new();
        let mut fetch = || unreachable!("a blocked core never fetches");
        for now in 1..=100u64 {
            stepped.tick(now, &mut fetch, &mut port);
        }
        skipped.skip_stalled(1, 100);
        assert_eq!(stepped.stats(), skipped.stats());
        let fp = |c: &Core| {
            let mut h = Fnv64::new();
            c.fingerprint(&mut h);
            h.finish()
        };
        assert_eq!(fp(&stepped), fp(&skipped));
        for c in [&mut stepped, &mut skipped] {
            c.complete_load(ReqId(1), MemLevel::Dram, 101).unwrap();
            let mut resume_port = TestPort::new();
            resume_port.next = 1;
            let mut n = 100u64;
            let mut fetch = || {
                n += 1;
                Instr {
                    ip: Ip::new(0x400 + n),
                    kind: InstrKind::Load {
                        addr: Addr::new(0x1000 + 64 * n),
                        serialized: true,
                    },
                }
            };
            c.tick(101, &mut fetch, &mut resume_port);
        }
        assert_eq!(stepped.stats(), skipped.stats());
        assert_eq!(fp(&stepped), fp(&skipped));
        assert!(stepped.retired() > 0, "the chase resumed");
    }

    #[test]
    fn rob_capacity_limits_inflight_window() {
        let cfg = CoreConfig {
            rob_entries: 8,
            ..CoreConfig::default()
        };
        let mut core = Core::new(&cfg);
        let mut port = TestPort::new();
        let mut i = 0u64;
        let mut fetch = || {
            i += 1;
            load(0x400 + i, 0x1000 + 64 * i)
        };
        for now in 0..50 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.rob_occupancy() <= 8);
        // No load completed → retires zero; dispatch stops at ROB size.
        assert_eq!(core.stats().loads, 8);
    }

    #[test]
    fn serialized_loads_do_not_overlap() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut i = 0u64;
        let mut fetch = || {
            i += 1;
            Instr {
                ip: Ip::new(0x500),
                kind: InstrKind::Load {
                    addr: Addr::new(64 * i),
                    serialized: true,
                },
            }
        };
        for now in 0..20 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert_eq!(
            core.stats().loads,
            1,
            "second chase blocked until first returns"
        );
        core.complete_load(ReqId(1), MemLevel::Dram, 20);
        for now in 21..25 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert_eq!(core.stats().loads, 2);
    }

    #[test]
    fn branch_history_records_outcomes() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut outcomes = [true, false, true, true].iter().cycle();
        let mut fetch = || Instr {
            ip: Ip::new(0x600),
            kind: InstrKind::Branch {
                taken: *outcomes.next().unwrap(),
            },
        };
        for now in 0..200 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.stats().branches > 10);
        assert!(!core.branch_history().is_empty());
    }

    #[test]
    fn mispredicts_create_fetch_bubbles() {
        // Random-ish outcomes: perceptron cannot learn pattern from a
        // counter-based pseudo sequence with long period.
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut k = 0u64;
        let mut fetch = || {
            k += 1;
            Instr {
                ip: Ip::new(0x700),
                kind: InstrKind::Branch {
                    taken: clip_types::hash64(k) & 1 == 1,
                },
            }
        };
        for now in 0..2000 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.stats().mispredicts > 0);
        // Bubbles cap throughput below width.
        assert!(core.stats().ipc() < 4.0);
    }

    #[test]
    fn complete_unknown_request_is_none() {
        let mut core = Core::new(&CoreConfig::default());
        assert!(core.complete_load(ReqId(77), MemLevel::L2, 0).is_none());
    }

    #[test]
    fn load_queue_caps_outstanding_loads() {
        let cfg = CoreConfig {
            load_queue: 4,
            ..CoreConfig::default()
        };
        let mut core = Core::new(&cfg);
        let mut port = TestPort::new();
        let mut i = 0u64;
        let mut fetch = || {
            i += 1;
            load(0x400 + i, 0x1000 + 64 * i)
        };
        for now in 0..50 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert_eq!(core.stats().loads, 4, "load queue must cap issue");
        core.complete_load(ReqId(1), MemLevel::L2, 50);
        for now in 51..55 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert_eq!(core.stats().loads, 5, "a completion frees one slot");
    }

    #[test]
    fn mispredict_penalty_scales_with_config() {
        let run = |penalty: u64| {
            let cfg = CoreConfig {
                mispredict_penalty: penalty,
                ..CoreConfig::default()
            };
            let mut core = Core::new(&cfg);
            let mut port = TestPort::new();
            let mut k = 0u64;
            let mut fetch = || {
                k += 1;
                Instr {
                    ip: Ip::new(0x900),
                    kind: InstrKind::Branch {
                        taken: clip_types::hash64(k) & 1 == 1,
                    },
                }
            };
            for now in 0..3000 {
                core.tick(now, &mut fetch, &mut port);
            }
            core.stats().retired
        };
        let fast = run(1);
        let slow = run(40);
        assert!(
            fast > slow,
            "larger redirect penalty must retire fewer instructions: {fast} vs {slow}"
        );
    }

    #[test]
    fn head_stall_accounting_matches_levels() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut n = 0;
        let mut fetch = || {
            n += 1;
            if n == 1 {
                load(0x400, 0x1000)
            } else {
                alu()
            }
        };
        for now in 0..20 {
            core.tick(now, &mut fetch, &mut port);
        }
        let s = *core.stats();
        assert!(s.head_stall_cycles > 0);
        assert!(s.head_stall_cycles_beyond_l1 > 0);
        assert!(s.head_stall_cycles_beyond_l1 <= s.head_stall_cycles);
    }

    #[test]
    fn audit_passes_on_clean_run_and_pseudo_completions() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut i = 0u64;
        let mut fetch = || {
            i += 1;
            match i % 3 {
                0 => alu(),
                1 => load(0x400 + i, 0x1000 + 64 * i),
                _ => Instr {
                    ip: Ip::new(0x500),
                    kind: InstrKind::Store {
                        addr: Addr::new(64 * i),
                    },
                },
            }
        };
        for now in 0..200 {
            core.tick(now, &mut fetch, &mut port);
            if now % 7 == 0 {
                // Complete an arbitrary prefix of issued loads; also fire a
                // pseudo-completion for an unknown request, which the tile
                // layer does routinely for store/prefetch MSHR waiters.
                core.complete_load(ReqId(now / 7 + 1), MemLevel::L2, now);
                core.complete_load(ReqId(9_999), MemLevel::Dram, now);
            }
            core.audit(true).expect("clean run must audit clean");
        }
    }

    #[test]
    fn stale_retire_breaks_rob_balance() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut fetch = || alu();
        for now in 0..5 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.inject_stale_retire());
        let e = core.audit(false).expect_err("audit must catch");
        assert!(e.contains("rob balance broken"), "{e}");
    }

    #[test]
    fn duplicate_wakeup_breaks_load_queue_balance() {
        let mut core = Core::new(&CoreConfig::default());
        let mut port = TestPort::new();
        let mut i = 0u64;
        let mut fetch = || {
            i += 1;
            load(0x400 + i, 0x1000 + 64 * i)
        };
        for now in 0..5 {
            core.tick(now, &mut fetch, &mut port);
        }
        assert!(core.inject_duplicate_wakeup(3));
        let e = core.audit(false).expect_err("audit must catch");
        assert!(e.contains("load queue balance broken"), "{e}");
        // The real completion for the corrupted request misses (the entry is
        // already Done) and must not repair the balance.
        core.complete_load(ReqId(1), MemLevel::L2, 6);
        core.complete_load(ReqId(2), MemLevel::L2, 6);
        core.complete_load(ReqId(3), MemLevel::L2, 6);
        core.complete_load(ReqId(4), MemLevel::L2, 6);
        assert!(core.audit(false).is_err(), "retry must not mask the fault");
    }

    #[test]
    fn fingerprint_tracks_architectural_state() {
        let run = |cycles: u64| {
            let mut core = Core::new(&CoreConfig::default());
            let mut port = TestPort::new();
            let mut i = 0u64;
            let mut fetch = || {
                i += 1;
                load(0x400 + i, 0x1000 + 64 * i)
            };
            for now in 0..cycles {
                core.tick(now, &mut fetch, &mut port);
            }
            let mut h = Fnv64::new();
            core.fingerprint(&mut h);
            h.finish()
        };
        assert_eq!(run(5), run(5), "same run, same fingerprint");
        assert_ne!(run(5), run(6), "different state, different fingerprint");
    }

    #[test]
    fn predictable_branches_beat_random() {
        let run = |pattern: fn(u64) -> bool| {
            let mut core = Core::new(&CoreConfig::default());
            let mut port = TestPort::new();
            let mut k = 0u64;
            let mut fetch = || {
                k += 1;
                Instr {
                    ip: Ip::new(0x800),
                    kind: InstrKind::Branch { taken: pattern(k) },
                }
            };
            for now in 0..3000 {
                core.tick(now, &mut fetch, &mut port);
            }
            core.stats().mispredicts as f64 / core.stats().branches as f64
        };
        let periodic = run(|k| k % 4 == 0);
        let random = run(|k| clip_types::hash64(k) & 1 == 1);
        assert!(
            periodic < random * 0.5,
            "periodic {periodic} should be far below random {random}"
        );
    }
}
