//! Randomized invariant tests: ROB invariants under arbitrary
//! instruction streams and memory-latency schedules, driven by the
//! workspace's deterministic [`SimRng`].

use clip_cpu::{Core, MemIssuePort};
use clip_trace::{Instr, InstrKind};
use clip_types::{Addr, CoreConfig, Cycle, Ip, MemLevel, ReqId, SimRng};
use std::collections::VecDeque;

/// A port that completes loads after a scripted latency.
struct DelayPort {
    next: u64,
    latency: u64,
    inflight: VecDeque<(ReqId, Cycle)>,
    accept_every: u64,
    calls: u64,
}

impl MemIssuePort for DelayPort {
    fn issue_load(&mut self, _ip: Ip, _addr: Addr, now: Cycle) -> Option<ReqId> {
        self.calls += 1;
        if self.accept_every > 1 && !self.calls.is_multiple_of(self.accept_every) {
            return None; // structural back-pressure
        }
        self.next += 1;
        let id = ReqId(self.next);
        self.inflight.push_back((id, now + self.latency));
        Some(id)
    }

    fn issue_store(&mut self, _ip: Ip, _addr: Addr, _now: Cycle) -> bool {
        true
    }
}

fn random_instr(rng: &mut SimRng) -> Instr {
    match rng.gen_range(0u32..4) {
        0 => Instr {
            ip: Ip::new(0x400 + rng.gen_range(0u64..16) * 8),
            kind: InstrKind::Load {
                addr: Addr::new(rng.gen_range(0u64..(1 << 20)) * 64),
                serialized: rng.gen_bool(0.5),
            },
        },
        1 => Instr {
            ip: Ip::new(0x800 + rng.gen_range(0u64..8) * 8),
            kind: InstrKind::Store {
                addr: Addr::new(rng.gen_range(0u64..(1 << 20)) * 64),
            },
        },
        2 => Instr {
            ip: Ip::new(0xc00 + rng.gen_range(0u64..8) * 8),
            kind: InstrKind::Branch {
                taken: rng.gen_bool(0.5),
            },
        },
        _ => Instr {
            ip: Ip::new(0x100),
            kind: InstrKind::Alu {
                latency: rng.gen_range(1u8..4),
            },
        },
    }
}

/// For any instruction mix, latency, and back-pressure pattern: the ROB
/// never overflows, retirement never exceeds the machine width, and
/// every issued load eventually completes exactly once.
#[test]
fn rob_invariants() {
    let mut rng = SimRng::seed_from_u64(0xC0DE1);
    for _ in 0..48 {
        let n = rng.gen_range(16usize..400);
        let instrs: Vec<Instr> = (0..n).map(|_| random_instr(&mut rng)).collect();
        let latency = rng.gen_range(1u64..300);
        let accept_every = rng.gen_range(1u64..4);
        let rob_entries = rng.gen_range(8usize..256);
        let cfg = CoreConfig {
            rob_entries,
            ..CoreConfig::default()
        };
        let mut core = Core::new(&cfg);
        let mut port = DelayPort {
            next: 0,
            latency,
            inflight: VecDeque::new(),
            accept_every,
            calls: 0,
        };
        let mut stream = instrs.iter().cycle();
        let cycles = 3_000u64;
        for now in 0..cycles {
            // Deliver due responses.
            while let Some(&(id, due)) = port.inflight.front() {
                if due <= now {
                    port.inflight.pop_front();
                    let out = core.complete_load(id, MemLevel::L2, now);
                    assert!(out.is_some(), "every live request maps to a ROB entry");
                } else {
                    break;
                }
            }
            let mut fetch = || *stream.next().expect("infinite stream");
            core.tick(now, &mut fetch, &mut port);
            assert!(core.rob_occupancy() <= rob_entries);
        }
        let s = core.stats();
        assert!(s.retired <= cycles * cfg.retire_width as u64);
        assert!(s.ipc() <= cfg.retire_width as f64 + 1e-9);
        // Conservation: issued loads = completed + still in flight + in ROB.
        assert!(s.loads >= port.inflight.len() as u64);
    }
}

/// Completing the same request twice is rejected.
#[test]
fn duplicate_completion_rejected() {
    let mut rng = SimRng::seed_from_u64(0xC0DE2);
    for _ in 0..16 {
        let latency = rng.gen_range(5u64..50);
        let cfg = CoreConfig::default();
        let mut core = Core::new(&cfg);
        let mut port = DelayPort {
            next: 0,
            latency,
            inflight: VecDeque::new(),
            accept_every: 1,
            calls: 0,
        };
        let mut n = 0u64;
        let mut fetch = || {
            n += 1;
            Instr {
                ip: Ip::new(0x400),
                kind: InstrKind::Load {
                    addr: Addr::new(n * 64),
                    serialized: false,
                },
            }
        };
        core.tick(0, &mut fetch, &mut port);
        let first = core.complete_load(ReqId(1), MemLevel::Dram, latency);
        assert!(first.is_some());
        let second = core.complete_load(ReqId(1), MemLevel::Dram, latency + 1);
        assert!(second.is_none(), "double completion must be ignored");
    }
}
