//! Miss-status holding registers.
//!
//! An [`MshrFile`] tracks outstanding misses at one cache level. Requests
//! to a line already in flight merge into the existing entry (including the
//! demand-merges-into-prefetch case that defines a *late* prefetch, which
//! the paper's lateness statistic counts). A full MSHR file back-pressures
//! the requestor — the mechanism by which constrained DRAM bandwidth
//! inflates on-chip latencies in Figure 3.

use clip_types::{Cycle, Fnv64, LineAddr, ReqId};
use std::collections::HashMap;
use std::fmt;

/// An outstanding miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrEntry {
    /// Line being fetched.
    pub line: LineAddr,
    /// The request that allocated the entry.
    pub primary: ReqId,
    /// True if the allocation was a prefetch.
    pub is_prefetch: bool,
    /// True once a demand merged into a prefetch allocation (late
    /// prefetch).
    pub demand_merged: bool,
    /// Requests merged into this entry (excluding the primary).
    pub waiters: Vec<ReqId>,
    /// Allocation time.
    pub alloc_cycle: Cycle,
}

/// Outcome of an allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// A new entry was created; the miss must be sent down the hierarchy.
    New,
    /// Merged into an in-flight entry. `into_prefetch` is true when the
    /// in-flight entry was allocated by a prefetch (and this merge is a
    /// demand): a *late but useful* prefetch.
    Merged {
        /// True when a demand merged into a prefetch-allocated entry.
        into_prefetch: bool,
    },
}

/// Error returned when the MSHR file is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFullError;

impl fmt::Display for MshrFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("mshr file is full")
    }
}

impl std::error::Error for MshrFullError {}

/// A fixed-capacity file of [`MshrEntry`]s indexed by line address.
///
/// # Examples
///
/// ```
/// use clip_cache::{AllocOutcome, MshrFile};
/// use clip_types::{LineAddr, ReqId};
///
/// let mut mshrs = MshrFile::new(8);
/// let line = LineAddr::new(0x40);
/// assert_eq!(mshrs.alloc(line, ReqId(1), false, 0), Ok(AllocOutcome::New));
/// // A second request to the same line merges instead of refetching.
/// assert!(matches!(
///     mshrs.alloc(line, ReqId(2), false, 5),
///     Ok(AllocOutcome::Merged { .. })
/// ));
/// let entry = mshrs.complete(line).expect("in flight");
/// assert_eq!(entry.waiters, vec![ReqId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: HashMap<LineAddr, MshrEntry>,
    /// Count of demand-into-prefetch merges (late prefetches).
    late_prefetch_merges: u64,
    /// Entries ever allocated (conservation audit).
    allocated: u64,
    /// Entries ever completed (conservation audit).
    completed: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: HashMap::with_capacity(capacity),
            late_prefetch_merges: 0,
            allocated: 0,
            completed: 0,
        }
    }

    /// Entries outstanding.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new (non-merging) allocation can succeed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total demand-into-prefetch merges observed (late prefetches).
    pub fn late_prefetch_merges(&self) -> u64 {
        self.late_prefetch_merges
    }

    /// True if `line` is currently in flight.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Attempts to allocate or merge a miss on `line`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFullError`] when the line is not in flight and the
    /// file is full; the caller must retry later (back-pressure).
    pub fn alloc(
        &mut self,
        line: LineAddr,
        req: ReqId,
        is_prefetch: bool,
        now: Cycle,
    ) -> Result<AllocOutcome, MshrFullError> {
        if let Some(e) = self.entries.get_mut(&line) {
            let into_prefetch = e.is_prefetch && !e.demand_merged && !is_prefetch;
            if into_prefetch {
                e.demand_merged = true;
                self.late_prefetch_merges += 1;
            }
            e.waiters.push(req);
            return Ok(AllocOutcome::Merged { into_prefetch });
        }
        if self.is_full() {
            return Err(MshrFullError);
        }
        self.entries.insert(
            line,
            MshrEntry {
                line,
                primary: req,
                is_prefetch,
                demand_merged: false,
                waiters: Vec::new(),
                alloc_cycle: now,
            },
        );
        self.allocated += 1;
        Ok(AllocOutcome::New)
    }

    /// Completes the miss on `line`, removing and returning its entry.
    /// Returns `None` if the line was not in flight.
    pub fn complete(&mut self, line: LineAddr) -> Option<MshrEntry> {
        let e = self.entries.remove(&line);
        if e.is_some() {
            self.completed += 1;
        }
        e
    }

    /// Iterates over outstanding entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.entries.values()
    }

    /// Conservation + legality audit: every allocation must either still
    /// be outstanding or have completed, and occupancy must respect the
    /// capacity. With `full`, also scans entry timestamps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        let len = self.entries.len() as u64;
        if self.allocated - self.completed != len {
            return Err(format!(
                "mshr balance broken: allocated={} completed={} but {} outstanding (leaked {})",
                self.allocated,
                self.completed,
                len,
                (self.allocated - self.completed) as i64 - len as i64
            ));
        }
        if self.entries.len() > self.capacity {
            return Err(format!(
                "mshr over capacity: {} entries in a {}-entry file",
                self.entries.len(),
                self.capacity
            ));
        }
        if full {
            for e in self.entries.values() {
                if e.alloc_cycle > now {
                    return Err(format!(
                        "mshr entry for line {:#x} allocated in the future (cycle {} > now {})",
                        e.line.raw(),
                        e.alloc_cycle,
                        now
                    ));
                }
            }
        }
        Ok(())
    }

    /// Folds the file's outstanding entries into a state fingerprint, in
    /// sorted line-address order: `HashMap` iteration order is per-instance
    /// random, so sorting is what makes the hash comparable across runs.
    pub fn fingerprint(&self, h: &mut Fnv64) {
        let mut lines: Vec<LineAddr> = self.entries.keys().copied().collect();
        lines.sort_unstable_by_key(|l| l.raw());
        h.write_u64(self.allocated)
            .write_u64(self.completed)
            .write_usize(lines.len());
        for line in lines {
            let e = &self.entries[&line];
            h.write_u64(e.line.raw())
                .write_u64(e.primary.0)
                .write_bool(e.is_prefetch)
                .write_bool(e.demand_merged)
                .write_usize(e.waiters.len())
                .write_u64(e.alloc_cycle);
        }
    }

    /// Fault injection: silently discards one outstanding entry *without*
    /// counting a completion, as a hardware release-path bug would. The
    /// victim is the `selector % len`-th entry in line-address order
    /// (deterministic regardless of hash order). Returns the leaked line,
    /// or `None` when the file is empty.
    pub fn leak_one(&mut self, selector: u64) -> Option<LineAddr> {
        if self.entries.is_empty() {
            return None;
        }
        let mut lines: Vec<LineAddr> = self.entries.keys().copied().collect();
        lines.sort_unstable_by_key(|l| l.raw());
        let victim = lines[(selector % lines.len() as u64) as usize];
        self.entries.remove(&victim);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_complete_roundtrip() {
        let mut m = MshrFile::new(2);
        let l = LineAddr::new(5);
        assert_eq!(m.alloc(l, ReqId(1), false, 0), Ok(AllocOutcome::New));
        assert!(m.contains(l));
        let e = m.complete(l).expect("entry");
        assert_eq!(e.primary, ReqId(1));
        assert!(m.is_empty());
    }

    #[test]
    fn merge_into_inflight() {
        let mut m = MshrFile::new(2);
        let l = LineAddr::new(5);
        m.alloc(l, ReqId(1), false, 0).unwrap();
        let out = m.alloc(l, ReqId(2), false, 1).unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                into_prefetch: false
            }
        );
        let e = m.complete(l).unwrap();
        assert_eq!(e.waiters, vec![ReqId(2)]);
    }

    #[test]
    fn demand_merging_into_prefetch_counts_late() {
        let mut m = MshrFile::new(2);
        let l = LineAddr::new(9);
        m.alloc(l, ReqId(1), true, 0).unwrap();
        let out = m.alloc(l, ReqId(2), false, 5).unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                into_prefetch: true
            }
        );
        assert_eq!(m.late_prefetch_merges(), 1);
        // A second demand merge does not double count.
        let out2 = m.alloc(l, ReqId(3), false, 6).unwrap();
        assert_eq!(
            out2,
            AllocOutcome::Merged {
                into_prefetch: false
            }
        );
        assert_eq!(m.late_prefetch_merges(), 1);
    }

    #[test]
    fn prefetch_merging_into_prefetch_is_not_late() {
        let mut m = MshrFile::new(2);
        let l = LineAddr::new(9);
        m.alloc(l, ReqId(1), true, 0).unwrap();
        let out = m.alloc(l, ReqId(2), true, 1).unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                into_prefetch: false
            }
        );
        assert_eq!(m.late_prefetch_merges(), 0);
    }

    #[test]
    fn full_file_rejects_new_but_accepts_merges() {
        let mut m = MshrFile::new(1);
        m.alloc(LineAddr::new(1), ReqId(1), false, 0).unwrap();
        assert!(m.is_full());
        assert_eq!(
            m.alloc(LineAddr::new(2), ReqId(2), false, 1),
            Err(MshrFullError)
        );
        assert!(m.alloc(LineAddr::new(1), ReqId(3), false, 1).is_ok());
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(LineAddr::new(42)).is_none());
    }

    #[test]
    fn audit_passes_through_normal_traffic() {
        let mut m = MshrFile::new(4);
        for i in 0..4u64 {
            m.alloc(LineAddr::new(i), ReqId(i), false, i).unwrap();
        }
        m.complete(LineAddr::new(1));
        assert_eq!(m.audit(10, true), Ok(()));
    }

    #[test]
    fn leak_breaks_the_balance_audit() {
        let mut m = MshrFile::new(4);
        m.alloc(LineAddr::new(7), ReqId(1), false, 0).unwrap();
        m.alloc(LineAddr::new(3), ReqId(2), false, 0).unwrap();
        // selector 0 picks the lowest line address.
        assert_eq!(m.leak_one(0), Some(LineAddr::new(3)));
        let err = m.audit(5, false).unwrap_err();
        assert!(err.contains("balance broken"), "{err}");
    }

    #[test]
    fn fingerprint_is_hash_order_independent() {
        // Build the same logical contents through different insertion
        // orders (and thus different HashMap layouts); the fingerprint
        // must agree because it folds in sorted line order.
        let build = |order: &[u64]| {
            let mut m = MshrFile::new(8);
            for &l in order {
                m.alloc(LineAddr::new(l), ReqId(l), l % 2 == 0, l).unwrap();
            }
            let mut h = Fnv64::new();
            m.fingerprint(&mut h);
            h.finish()
        };
        assert_eq!(build(&[5, 1, 9, 3]), build(&[5, 1, 9, 3]));
        let mut a = MshrFile::new(8);
        let mut b = MshrFile::new(8);
        for &l in &[5u64, 1, 9, 3] {
            a.alloc(LineAddr::new(l), ReqId(l), false, 0).unwrap();
        }
        for &l in &[3u64, 9, 1, 5] {
            b.alloc(LineAddr::new(l), ReqId(l), false, 0).unwrap();
        }
        let (mut ha, mut hb) = (Fnv64::new(), Fnv64::new());
        a.fingerprint(&mut ha);
        b.fingerprint(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // And a leaked entry changes the hash.
        a.leak_one(0);
        let mut hl = Fnv64::new();
        a.fingerprint(&mut hl);
        assert_ne!(ha.finish(), hl.finish());
    }

    #[test]
    fn leak_on_empty_file_is_none() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.leak_one(9), None);
        assert_eq!(m.audit(0, true), Ok(()));
    }
}
