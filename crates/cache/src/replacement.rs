//! Replacement policies: LRU, SRRIP, a sampled Mockingjay reuse predictor,
//! and NRU.
//!
//! The paper's baseline uses SRRIP at the L2 and Mockingjay at the LLC
//! (Table 3). Mockingjay (Shah et al., HPCA '22) mimics Belady's MIN by
//! predicting each line's next-use time; we implement the practical core of
//! it — a sampled reuse-interval predictor plus estimated-time-of-access
//! (ETA) victim selection — which is what minimizes prefetch-caused
//! pollution in the paper's baseline.

use clip_types::{Cycle, LineAddr, ReplacementKind};

/// Per-cache replacement state, dispatched over [`ReplacementKind`].
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// Timestamp LRU.
    Lru {
        /// Last-touch time per (set, way).
        stamp: Vec<Cycle>,
        ways: usize,
    },
    /// 2-bit static RRIP.
    Srrip {
        /// Re-reference prediction value per (set, way).
        rrpv: Vec<u8>,
        ways: usize,
    },
    /// Sampled Mockingjay: ETA-based Belady mimic.
    Mockingjay {
        /// Predicted next access time per (set, way).
        eta: Vec<Cycle>,
        /// Last access time per (set, way), to learn reuse intervals.
        last: Vec<Cycle>,
        /// Sampled reuse-interval predictor, direct-mapped by line hash:
        /// (tag, predicted interval).
        predictor: Vec<(u32, u32)>,
        ways: usize,
    },
    /// Not-recently-used single bit.
    Nru {
        /// NRU bit per (set, way): 1 = candidate for eviction.
        bits: Vec<bool>,
        ways: usize,
    },
    /// Dynamic insertion policy (Qureshi et al., ISCA '07): LRU timestamps
    /// with set-dueling between standard MRU insertion and bimodal (mostly
    /// LRU-position) insertion; the PSEL counter picks the winner for
    /// follower sets.
    Dip {
        /// Last-touch time per (set, way).
        stamp: Vec<Cycle>,
        /// Policy-selection counter: high favours bimodal insertion.
        psel: i32,
        /// Deterministic counter driving the bimodal epsilon.
        bip_tick: u32,
        sets: usize,
        ways: usize,
    },
}

const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;
/// DIP: one in `BIP_EPSILON` bimodal fills inserts at MRU.
const BIP_EPSILON: u32 = 32;
/// DIP: PSEL saturation.
const PSEL_MAX: i32 = 1024;
const DUEL_STRIDE: usize = 32;
const MJ_PREDICTOR_SIZE: usize = 2048;
const MJ_DEFAULT_INTERVAL: u32 = 1 << 14;

impl ReplacementState {
    /// Creates state for a `sets` x `ways` cache.
    pub fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Self {
        let n = sets * ways;
        match kind {
            ReplacementKind::Lru => ReplacementState::Lru {
                stamp: vec![0; n],
                ways,
            },
            ReplacementKind::Srrip => ReplacementState::Srrip {
                rrpv: vec![RRPV_MAX; n],
                ways,
            },
            ReplacementKind::Mockingjay => ReplacementState::Mockingjay {
                eta: vec![0; n],
                last: vec![0; n],
                predictor: vec![(0, MJ_DEFAULT_INTERVAL); MJ_PREDICTOR_SIZE],
                ways,
            },
            ReplacementKind::Nru => ReplacementState::Nru {
                bits: vec![true; n],
                ways,
            },
            ReplacementKind::Dip => ReplacementState::Dip {
                stamp: vec![0; n],
                psel: PSEL_MAX / 2,
                bip_tick: 0,
                sets,
                ways,
            },
        }
    }

    /// DIP set-dueling role of a set: Some(true) = LRU leader,
    /// Some(false) = BIP leader, None = follower.
    fn dip_leader(set: usize) -> Option<bool> {
        match set % DUEL_STRIDE {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    #[inline]
    fn idx(set: usize, way: usize, ways: usize) -> usize {
        set * ways + way
    }

    /// Notifies the policy of a hit at (set, way).
    pub fn on_hit(&mut self, set: usize, way: usize, now: Cycle, line: LineAddr) {
        match self {
            ReplacementState::Lru { stamp, ways } => {
                stamp[Self::idx(set, way, *ways)] = now;
            }
            ReplacementState::Srrip { rrpv, ways } => {
                rrpv[Self::idx(set, way, *ways)] = 0;
            }
            ReplacementState::Mockingjay {
                eta,
                last,
                predictor,
                ways,
            } => {
                let i = Self::idx(set, way, *ways);
                // Learn the observed reuse interval with an EWMA.
                let interval = now.saturating_sub(last[i]).min(u32::MAX as u64) as u32;
                let h = clip_types::hash64(line.raw());
                let slot = (h as usize) % MJ_PREDICTOR_SIZE;
                let tag = (h >> 32) as u32;
                let entry = &mut predictor[slot];
                if entry.0 == tag {
                    entry.1 = (entry.1 / 2).saturating_add(interval / 2).max(1);
                } else {
                    *entry = (tag, interval.max(1));
                }
                last[i] = now;
                eta[i] = now + predictor[slot].1 as u64;
            }
            ReplacementState::Nru { bits, ways } => {
                bits[Self::idx(set, way, *ways)] = false;
            }
            ReplacementState::Dip { stamp, ways, .. } => {
                stamp[Self::idx(set, way, *ways)] = now;
            }
        }
    }

    /// Notifies the policy of a fill at (set, way).
    pub fn on_fill(
        &mut self,
        set: usize,
        way: usize,
        now: Cycle,
        line: LineAddr,
        prefetched: bool,
    ) {
        match self {
            ReplacementState::Lru { stamp, ways } => {
                stamp[Self::idx(set, way, *ways)] = now;
            }
            ReplacementState::Srrip { rrpv, ways } => {
                // Prefetch fills are inserted with a distant re-reference
                // prediction so inaccurate prefetches die quickly.
                rrpv[Self::idx(set, way, *ways)] = if prefetched { RRPV_MAX } else { RRPV_INSERT };
            }
            ReplacementState::Mockingjay {
                eta,
                last,
                predictor,
                ways,
            } => {
                let i = Self::idx(set, way, *ways);
                let h = clip_types::hash64(line.raw());
                let slot = (h as usize) % MJ_PREDICTOR_SIZE;
                let tag = (h >> 32) as u32;
                let predicted = if predictor[slot].0 == tag {
                    predictor[slot].1 as u64
                } else {
                    MJ_DEFAULT_INTERVAL as u64
                };
                // Prefetched lines get a pessimistic (further-out) ETA so
                // pollution is bounded, mirroring Mockingjay's prefetch
                // handling.
                let scale = if prefetched { 2 } else { 1 };
                last[i] = now;
                eta[i] = now + predicted * scale;
            }
            ReplacementState::Nru { bits, ways } => {
                bits[Self::idx(set, way, *ways)] = false;
            }
            ReplacementState::Dip {
                stamp,
                psel,
                bip_tick,
                ways,
                ..
            } => {
                // A fill into a leader set is evidence of a miss there:
                // misses in the LRU leaders push PSEL toward BIP and vice
                // versa.
                match Self::dip_leader(set) {
                    Some(true) => *psel = (*psel + 1).min(PSEL_MAX),
                    Some(false) => *psel = (*psel - 1).max(0),
                    None => {}
                }
                let use_bip = match Self::dip_leader(set) {
                    Some(true) => false,
                    Some(false) => true,
                    None => *psel > PSEL_MAX / 2,
                };
                *bip_tick = bip_tick.wrapping_add(1);
                let i = Self::idx(set, way, *ways);
                if use_bip && *bip_tick % BIP_EPSILON != 0 {
                    // Bimodal: insert at LRU position (stamp 0 ages it out
                    // first) so a thrashing stream cannot flush the set.
                    stamp[i] = 0;
                } else {
                    stamp[i] = now;
                }
            }
        }
    }

    /// Chooses a victim way within `set`. All ways are assumed valid (the
    /// cache fills invalid ways first).
    pub fn victim(&mut self, set: usize, now: Cycle) -> usize {
        match self {
            ReplacementState::Lru { stamp, ways } => {
                let w = *ways;
                (0..w)
                    .min_by_key(|&way| stamp[Self::idx(set, way, w)])
                    .expect("at least one way")
            }
            ReplacementState::Srrip { rrpv, ways } => {
                let w = *ways;
                loop {
                    if let Some(way) = (0..w).find(|&way| rrpv[Self::idx(set, way, w)] >= RRPV_MAX)
                    {
                        return way;
                    }
                    for way in 0..w {
                        rrpv[Self::idx(set, way, w)] += 1;
                    }
                }
            }
            ReplacementState::Mockingjay { eta, ways, .. } => {
                let w = *ways;
                // Victimise the line with the furthest estimated next use;
                // lines whose ETA has passed (overdue, likely dead) win.
                (0..w)
                    .max_by_key(|&way| {
                        let e = eta[Self::idx(set, way, w)];
                        if e < now {
                            // Dead line: strongly preferred victim.
                            u64::MAX - (now - e).min(u64::MAX / 2)
                        } else {
                            e - now
                        }
                    })
                    .expect("at least one way")
            }
            ReplacementState::Nru { bits, ways } => {
                let w = *ways;
                if let Some(way) = (0..w).find(|&way| bits[Self::idx(set, way, w)]) {
                    way
                } else {
                    for way in 0..w {
                        bits[Self::idx(set, way, w)] = true;
                    }
                    0
                }
            }
            ReplacementState::Dip { stamp, ways, .. } => {
                let w = *ways;
                (0..w)
                    .min_by_key(|&way| stamp[Self::idx(set, way, w)])
                    .expect("at least one way")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_oldest() {
        let mut r = ReplacementState::new(ReplacementKind::Lru, 1, 4);
        for way in 0..4 {
            r.on_fill(0, way, way as u64, LineAddr::new(way as u64), false);
        }
        r.on_hit(0, 0, 10, LineAddr::new(0));
        assert_eq!(r.victim(0, 11), 1);
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let mut r = ReplacementState::new(ReplacementKind::Srrip, 1, 2);
        r.on_fill(0, 0, 0, LineAddr::new(0), false);
        r.on_fill(0, 1, 0, LineAddr::new(1), false);
        r.on_hit(0, 0, 1, LineAddr::new(0));
        // way1 still at insert RRPV, way0 at 0 → way1 ages out first.
        assert_eq!(r.victim(0, 2), 1);
    }

    #[test]
    fn srrip_prefetch_inserted_distant() {
        let mut r = ReplacementState::new(ReplacementKind::Srrip, 1, 2);
        r.on_fill(0, 0, 0, LineAddr::new(0), false); // demand
        r.on_fill(0, 1, 0, LineAddr::new(1), true); // prefetch
        assert_eq!(r.victim(0, 1), 1, "untouched prefetch evicted first");
    }

    #[test]
    fn nru_round_robins() {
        let mut r = ReplacementState::new(ReplacementKind::Nru, 1, 2);
        r.on_fill(0, 0, 0, LineAddr::new(0), false);
        r.on_fill(0, 1, 0, LineAddr::new(1), false);
        // All recently used → reset, victim 0.
        assert_eq!(r.victim(0, 1), 0);
        // Now way 0 was reset to candidate=... after reset all true, way0
        // returned; next victim without touches is still a candidate.
        let v2 = r.victim(0, 2);
        assert!(v2 < 2);
    }

    #[test]
    fn mockingjay_learns_reuse_and_keeps_hot_lines() {
        let mut r = ReplacementState::new(ReplacementKind::Mockingjay, 1, 2);
        let hot = LineAddr::new(100);
        let cold = LineAddr::new(200);
        r.on_fill(0, 0, 0, hot, false);
        r.on_fill(0, 1, 5, cold, false);
        // Touch the hot line frequently: short learned interval → near ETA.
        for t in 1..20u64 {
            r.on_hit(0, 0, t * 10, hot);
        }
        // Victim should be the cold line (way 1): its ETA is default
        // (far) but it is overdue... hot line's ETA is near-future.
        let v = r.victim(0, 200);
        assert_eq!(v, 1);
    }

    #[test]
    fn dip_resists_thrashing_better_than_lru() {
        // A cyclic working set slightly larger than the cache: pure LRU
        // gets zero hits; DIP's bimodal insertion retains a subset.
        let hits = |kind: ReplacementKind| {
            let cfg = clip_types::CacheLevelConfig {
                capacity_bytes: 64 * 64, // 64 lines
                ways: 4,
                latency: 1,
                mshrs: 4,
                replacement: kind,
            };
            let mut c = crate::Cache::new(&cfg);
            let mut h = 0u64;
            for round in 0..60u64 {
                for i in 0..96u64 {
                    let line = LineAddr::new(i);
                    if c.lookup(line, false, round * 100 + i).is_hit() {
                        h += 1;
                    } else {
                        c.fill(line, false, false, round * 100 + i);
                    }
                }
            }
            h
        };
        let lru = hits(ReplacementKind::Lru);
        let dip = hits(ReplacementKind::Dip);
        assert!(
            dip > lru,
            "DIP must beat LRU on a thrashing loop: {dip} vs {lru}"
        );
    }

    #[test]
    fn dip_bounded_and_victimizes() {
        let mut r = ReplacementState::new(ReplacementKind::Dip, 64, 4);
        for set in 0..64 {
            for way in 0..4 {
                r.on_fill(
                    set,
                    way,
                    (set * 4 + way) as u64,
                    LineAddr::new(way as u64),
                    false,
                );
            }
            let v = r.victim(set, 1_000);
            assert!(v < 4);
        }
    }

    #[test]
    fn srrip_terminates_even_when_all_promoted() {
        let mut r = ReplacementState::new(ReplacementKind::Srrip, 1, 4);
        for way in 0..4 {
            r.on_fill(0, way, 0, LineAddr::new(way as u64), false);
            r.on_hit(0, way, 1, LineAddr::new(way as u64));
        }
        let v = r.victim(0, 2);
        assert!(v < 4);
    }
}
