//! Set-associative cache structures for the CLIP many-core simulator.
//!
//! Provides the tag arrays, replacement policies (LRU, SRRIP, a sampled
//! Mockingjay reuse-predictor, NRU) and miss-status holding registers used
//! by every level of the modeled hierarchy. Data values are not modeled —
//! only presence, dirtiness, and the prefetch provenance bits the paper's
//! accounting needs.
//!
//! # Examples
//!
//! ```
//! use clip_cache::{Cache, LookupOutcome};
//! use clip_types::{CacheLevelConfig, LineAddr, ReplacementKind};
//!
//! let cfg = CacheLevelConfig {
//!     capacity_bytes: 4096,
//!     ways: 4,
//!     latency: 1,
//!     mshrs: 4,
//!     replacement: ReplacementKind::Lru,
//! };
//! let mut cache = Cache::new(&cfg);
//! assert_eq!(cache.lookup(LineAddr::new(3), false, 0), LookupOutcome::Miss);
//! cache.fill(LineAddr::new(3), false, false, 0);
//! assert!(matches!(cache.lookup(LineAddr::new(3), false, 1), LookupOutcome::Hit { .. }));
//! ```

pub mod mshr;
pub mod replacement;

pub use mshr::{AllocOutcome, MshrEntry, MshrFile, MshrFullError};
pub use replacement::ReplacementState;

use clip_types::{CacheLevelConfig, Cycle, LineAddr};

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line is present.
    Hit {
        /// True if this is the first demand touch of a line that was
        /// brought in by a prefetch (a *useful* prefetch).
        first_prefetch_use: bool,
    },
    /// The line is absent.
    Miss,
}

impl LookupOutcome {
    /// True on a hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, LookupOutcome::Hit { .. })
    }
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The line address evicted.
    pub line: LineAddr,
    /// Whether it was dirty (needs a writeback).
    pub dirty: bool,
    /// Whether it was a prefetched line never touched by demand — a
    /// *useless* prefetch, counted for accuracy statistics.
    pub was_useless_prefetch: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Set when the line was filled by a prefetch and not yet demanded.
    prefetched: bool,
}

/// Aggregate counters maintained by a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (loads + stores).
    pub demand_accesses: u64,
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Prefetch lookups (for dedup) that hit.
    pub prefetch_hits: u64,
    /// Prefetch lookups.
    pub prefetch_accesses: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Demand touches of prefetched lines (useful prefetches).
    pub useful_prefetches: u64,
    /// Prefetched lines evicted untouched (useless prefetches).
    pub useless_prefetches: u64,
    /// Total fills.
    pub fills: u64,
    /// Evictions of dirty lines.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Demand miss count.
    pub fn demand_misses(&self) -> u64 {
        self.demand_accesses - self.demand_hits
    }

    /// Demand hit rate in [0, 1]; 1.0 when there were no accesses.
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            1.0
        } else {
            self.demand_hits as f64 / self.demand_accesses as f64
        }
    }

    /// Prefetch accuracy: useful / (useful + useless evicted). Counts only
    /// resolved prefetches, matching how ChampSim reports accuracy.
    pub fn prefetch_accuracy(&self) -> f64 {
        let resolved = self.useful_prefetches + self.useless_prefetches;
        if resolved == 0 {
            1.0
        } else {
            self.useful_prefetches as f64 / resolved as f64
        }
    }
}

/// A set-associative tag array with a pluggable replacement policy.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    repl: ReplacementState,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a level configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration implies zero sets or a non-power-of-two
    /// set count (use [`clip_types::SimConfig::validate`] first).
    pub fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "invalid set count {sets}"
        );
        Cache {
            sets,
            ways: cfg.ways,
            lines: vec![Line::default(); sets * cfg.ways],
            repl: ReplacementState::new(cfg.replacement, sets, cfg.ways),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        // Hash-index so that strided patterns spread across sets, as
        // physical indexing effectively does.
        (clip_types::hash64(line.raw()) as usize) & (self.sets - 1)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Returns the statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// True if the line is currently present (no state update).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        (0..self.ways).any(|w| {
            let l = &self.lines[self.slot(set, w)];
            l.valid && l.tag == line.raw()
        })
    }

    /// Looks up `line`; updates replacement state and statistics.
    ///
    /// `is_write` marks stores (sets the dirty bit on hit); `now` feeds the
    /// replacement policy. Demand hits on prefetched lines clear the
    /// prefetch bit and count as useful prefetches.
    pub fn lookup(&mut self, line: LineAddr, is_write: bool, now: Cycle) -> LookupOutcome {
        self.lookup_kind(line, is_write, false, now)
    }

    /// Looks up on behalf of a prefetch (used to drop redundant prefetches
    /// without perturbing the useful/useless accounting).
    pub fn lookup_prefetch(&mut self, line: LineAddr, now: Cycle) -> LookupOutcome {
        self.lookup_kind(line, false, true, now)
    }

    fn lookup_kind(
        &mut self,
        line: LineAddr,
        is_write: bool,
        is_prefetch: bool,
        now: Cycle,
    ) -> LookupOutcome {
        let set = self.set_index(line);
        if is_prefetch {
            self.stats.prefetch_accesses += 1;
        } else {
            self.stats.demand_accesses += 1;
        }
        for w in 0..self.ways {
            let idx = self.slot(set, w);
            if self.lines[idx].valid && self.lines[idx].tag == line.raw() {
                let mut first_use = false;
                if is_prefetch {
                    self.stats.prefetch_hits += 1;
                } else {
                    self.stats.demand_hits += 1;
                    if self.lines[idx].prefetched {
                        self.lines[idx].prefetched = false;
                        self.stats.useful_prefetches += 1;
                        first_use = true;
                    }
                    if is_write {
                        self.lines[idx].dirty = true;
                    }
                    self.repl.on_hit(set, w, now, line);
                }
                return LookupOutcome::Hit {
                    first_prefetch_use: first_use,
                };
            }
        }
        LookupOutcome::Miss
    }

    /// Fills `line`, returning any eviction. `prefetched` marks prefetch
    /// fills for accuracy accounting; `dirty` installs the line dirty
    /// (writeback fills).
    pub fn fill(
        &mut self,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        now: Cycle,
    ) -> Option<Evicted> {
        let set = self.set_index(line);
        self.stats.fills += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }

        // Already present (races between in-flight fills): just update bits.
        for w in 0..self.ways {
            let idx = self.slot(set, w);
            if self.lines[idx].valid && self.lines[idx].tag == line.raw() {
                self.lines[idx].dirty |= dirty;
                return None;
            }
        }

        // Find an invalid way, else ask the policy for a victim.
        let way = (0..self.ways)
            .find(|&w| !self.lines[self.slot(set, w)].valid)
            .unwrap_or_else(|| self.repl.victim(set, now));
        debug_assert!(way < self.ways);

        let idx = self.slot(set, way);
        let evicted = if self.lines[idx].valid {
            let v = self.lines[idx];
            if v.dirty {
                self.stats.dirty_evictions += 1;
            }
            if v.prefetched {
                self.stats.useless_prefetches += 1;
            }
            Some(Evicted {
                line: LineAddr::new(v.tag),
                dirty: v.dirty,
                was_useless_prefetch: v.prefetched,
            })
        } else {
            None
        };

        self.lines[idx] = Line {
            tag: line.raw(),
            valid: true,
            dirty,
            prefetched,
        };
        self.repl.on_fill(set, way, now, line, prefetched);
        evicted
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_index(line);
        for w in 0..self.ways {
            let idx = self.slot(set, w);
            if self.lines[idx].valid && self.lines[idx].tag == line.raw() {
                let dirty = self.lines[idx].dirty;
                self.lines[idx].valid = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines currently held (O(capacity); for tests).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_types::ReplacementKind;

    fn cfg(capacity: usize, ways: usize, repl: ReplacementKind) -> CacheLevelConfig {
        CacheLevelConfig {
            capacity_bytes: capacity,
            ways,
            latency: 1,
            mshrs: 8,
            replacement: repl,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut c = Cache::new(&cfg(4096, 4, ReplacementKind::Lru));
        let l = LineAddr::new(0x77);
        assert_eq!(c.lookup(l, false, 0), LookupOutcome::Miss);
        assert!(c.fill(l, false, false, 0).is_none());
        assert!(c.lookup(l, false, 1).is_hit());
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses(), 1);
    }

    #[test]
    fn capacity_eviction_occurs() {
        let c_cfg = cfg(64 * 8, 2, ReplacementKind::Lru); // 8 lines, 4 sets
        let mut c = Cache::new(&c_cfg);
        let mut evictions = 0;
        for i in 0..64 {
            if c.fill(LineAddr::new(i), false, false, i).is_some() {
                evictions += 1;
            }
        }
        assert!(evictions >= 64 - 8);
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single set: capacity 2 lines, 2 ways.
        let mut c = Cache::new(&cfg(64 * 2, 2, ReplacementKind::Lru));
        // Find three lines mapping to set 0 (only one set here, trivially).
        let a = LineAddr::new(1);
        let b = LineAddr::new(2);
        let d = LineAddr::new(3);
        c.fill(a, false, false, 0);
        c.fill(b, false, false, 1);
        c.lookup(a, false, 2); // a most recent
        let ev = c.fill(d, false, false, 3).expect("must evict");
        assert_eq!(ev.line, b, "LRU must evict b");
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = Cache::new(&cfg(64 * 2, 2, ReplacementKind::Lru));
        c.fill(LineAddr::new(1), false, false, 0);
        c.lookup(LineAddr::new(1), true, 1); // store → dirty
        c.fill(LineAddr::new(2), false, false, 2);
        // Evict line 1 (LRU after the store touch? touch makes it MRU; line2 is victim)
        c.lookup(LineAddr::new(1), false, 3);
        let ev = c.fill(LineAddr::new(3), false, false, 4).unwrap();
        assert_eq!(ev.line, LineAddr::new(2));
        assert!(!ev.dirty);
        // Now evict the dirty line.
        let ev2 = c.fill(LineAddr::new(4), false, false, 5).unwrap();
        assert_eq!(ev2.line, LineAddr::new(1));
        assert!(ev2.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn prefetch_accounting_useful_and_useless() {
        let mut c = Cache::new(&cfg(64 * 4, 4, ReplacementKind::Lru));
        c.fill(LineAddr::new(10), false, true, 0);
        c.fill(LineAddr::new(11), false, true, 0);
        // Demand touch of 10 → useful.
        let out = c.lookup(LineAddr::new(10), false, 1);
        assert_eq!(
            out,
            LookupOutcome::Hit {
                first_prefetch_use: true
            }
        );
        // Second touch is a plain hit.
        let out2 = c.lookup(LineAddr::new(10), false, 2);
        assert_eq!(
            out2,
            LookupOutcome::Hit {
                first_prefetch_use: false
            }
        );
        // Evict 11 untouched → useless.
        for i in 0..64u64 {
            c.fill(LineAddr::new(100 + i), false, false, 3 + i);
        }
        assert_eq!(c.stats().useful_prefetches, 1);
        assert!(c.stats().useless_prefetches >= 1);
        let acc = c.stats().prefetch_accuracy();
        assert!(acc > 0.0 && acc < 1.0);
    }

    #[test]
    fn prefetch_lookup_does_not_consume_usefulness() {
        let mut c = Cache::new(&cfg(64 * 4, 4, ReplacementKind::Lru));
        c.fill(LineAddr::new(10), false, true, 0);
        assert!(c.lookup_prefetch(LineAddr::new(10), 1).is_hit());
        // Still counts as useful on the first demand touch.
        assert_eq!(
            c.lookup(LineAddr::new(10), false, 2),
            LookupOutcome::Hit {
                first_prefetch_use: true
            }
        );
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(&cfg(4096, 4, ReplacementKind::Lru));
        c.fill(LineAddr::new(5), false, false, 0);
        c.lookup(LineAddr::new(5), true, 1);
        assert_eq!(c.invalidate(LineAddr::new(5)), Some(true));
        assert!(!c.contains(LineAddr::new(5)));
        assert_eq!(c.invalidate(LineAddr::new(5)), None);
    }

    #[test]
    fn double_fill_is_idempotent() {
        let mut c = Cache::new(&cfg(4096, 4, ReplacementKind::Lru));
        assert!(c.fill(LineAddr::new(9), false, false, 0).is_none());
        assert!(c.fill(LineAddr::new(9), true, false, 1).is_none());
        assert_eq!(c.occupancy(), 1);
        // Dirty bit merged.
        assert_eq!(c.invalidate(LineAddr::new(9)), Some(true));
    }

    #[test]
    fn all_policies_bound_occupancy() {
        for repl in [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Mockingjay,
            ReplacementKind::Nru,
        ] {
            let mut c = Cache::new(&cfg(64 * 16, 4, repl));
            for i in 0..10_000u64 {
                c.fill(LineAddr::new(i), false, false, i);
            }
            assert_eq!(c.occupancy(), 16, "{repl:?}");
        }
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = Cache::new(&cfg(64 * 64, 8, ReplacementKind::Srrip));
        // Working set of 32 lines, accessed repeatedly: high hit rate.
        for round in 0..50u64 {
            for i in 0..32u64 {
                let l = LineAddr::new(i);
                if !c.lookup(l, false, round).is_hit() {
                    c.fill(l, false, false, round);
                }
            }
        }
        assert!(c.stats().demand_hit_rate() > 0.9);
    }
}
