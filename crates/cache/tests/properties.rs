//! Randomized invariant tests: cache and MSHR invariants under arbitrary
//! operation sequences drawn from the workspace's deterministic
//! [`SimRng`].

use clip_cache::{Cache, MshrFile};
use clip_types::{CacheLevelConfig, LineAddr, ReplacementKind, ReqId, SimRng};

fn cfg(repl: ReplacementKind) -> CacheLevelConfig {
    CacheLevelConfig {
        capacity_bytes: 64 * 64, // 64 lines
        ways: 4,
        latency: 1,
        mshrs: 8,
        replacement: repl,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64, bool),
    Fill(u64, bool, bool),
    Invalidate(u64),
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Lookup(rng.gen_range(0u64..512), rng.gen_bool(0.5)),
        1 => Op::Fill(
            rng.gen_range(0u64..512),
            rng.gen_bool(0.5),
            rng.gen_bool(0.5),
        ),
        _ => Op::Invalidate(rng.gen_range(0u64..512)),
    }
}

/// Occupancy never exceeds capacity; hits never exceed accesses; a line
/// just filled is present; an invalidated line is absent.
#[test]
fn cache_invariants() {
    let mut rng = SimRng::seed_from_u64(0xCAC1);
    for case in 0..64 {
        let repl = [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Mockingjay,
            ReplacementKind::Nru,
        ][case % 4];
        let n = rng.gen_range(1usize..400);
        let mut c = Cache::new(&cfg(repl));
        for t in 0..n {
            match random_op(&mut rng) {
                Op::Lookup(l, w) => {
                    let _ = c.lookup(LineAddr::new(l), w, t as u64);
                }
                Op::Fill(l, d, p) => {
                    c.fill(LineAddr::new(l), d, p, t as u64);
                    assert!(c.contains(LineAddr::new(l)));
                }
                Op::Invalidate(l) => {
                    c.invalidate(LineAddr::new(l));
                    assert!(!c.contains(LineAddr::new(l)));
                }
            }
            assert!(c.occupancy() <= 64);
            let s = c.stats();
            assert!(s.demand_hits <= s.demand_accesses);
            assert!(s.prefetch_hits <= s.prefetch_accesses);
        }
    }
}

/// Eviction accounting: useless prefetches never exceed prefetch fills.
#[test]
fn prefetch_accounting_bounded() {
    let mut rng = SimRng::seed_from_u64(0xCAC2);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..500);
        let mut c = Cache::new(&cfg(ReplacementKind::Lru));
        for t in 0..n {
            let l = rng.gen_range(0u64..4096);
            c.fill(LineAddr::new(l), false, t % 2 == 0, t as u64);
        }
        let s = c.stats();
        assert!(s.useless_prefetches + s.useful_prefetches <= s.prefetch_fills);
    }
}

/// MSHR: length bounded by capacity; a completed line is gone; every
/// merged request appears exactly once among the waiters.
#[test]
fn mshr_invariants() {
    let mut rng = SimRng::seed_from_u64(0xCAC3);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..200);
        let mut m = MshrFile::new(8);
        let mut next = 0u64;
        for _ in 0..n {
            let line = rng.gen_range(0u64..16);
            if rng.gen_bool(0.5) {
                let _ = m.complete(LineAddr::new(line));
                assert!(!m.contains(LineAddr::new(line)));
            } else {
                next += 1;
                let _ = m.alloc(
                    LineAddr::new(line),
                    ReqId(next),
                    next.is_multiple_of(3),
                    next,
                );
            }
            assert!(m.len() <= 8);
            assert_eq!(m.is_full(), m.len() == 8);
        }
    }
}

/// Merging preserves the primary and collects waiters in order.
#[test]
fn mshr_merge_collects_waiters() {
    for n in 1usize..20 {
        let mut m = MshrFile::new(4);
        let line = LineAddr::new(7);
        m.alloc(line, ReqId(0), false, 0).expect("first alloc");
        for i in 1..=n as u64 {
            m.alloc(line, ReqId(i), false, i)
                .expect("merge always fits");
        }
        let e = m.complete(line).expect("entry");
        assert_eq!(e.primary, ReqId(0));
        assert_eq!(e.waiters.len(), n);
        for (i, w) in e.waiters.iter().enumerate() {
            assert_eq!(*w, ReqId(i as u64 + 1));
        }
    }
}
