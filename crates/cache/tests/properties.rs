//! Property-based tests: cache and MSHR invariants under arbitrary
//! operation sequences.

use clip_cache::{Cache, MshrFile};
use clip_types::{CacheLevelConfig, LineAddr, ReplacementKind, ReqId};
use proptest::prelude::*;

fn cfg(repl: ReplacementKind) -> CacheLevelConfig {
    CacheLevelConfig {
        capacity_bytes: 64 * 64, // 64 lines
        ways: 4,
        latency: 1,
        mshrs: 8,
        replacement: repl,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64, bool),
    Fill(u64, bool, bool),
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..512, any::<bool>()).prop_map(|(l, w)| Op::Lookup(l, w)),
        (0u64..512, any::<bool>(), any::<bool>()).prop_map(|(l, d, p)| Op::Fill(l, d, p)),
        (0u64..512).prop_map(Op::Invalidate),
    ]
}

proptest! {
    /// Occupancy never exceeds capacity; hits never exceed accesses; a
    /// line just filled is present; an invalidated line is absent.
    #[test]
    fn cache_invariants(
        repl_idx in 0usize..4,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let repl = [
            ReplacementKind::Lru,
            ReplacementKind::Srrip,
            ReplacementKind::Mockingjay,
            ReplacementKind::Nru,
        ][repl_idx];
        let mut c = Cache::new(&cfg(repl));
        for (t, op) in ops.into_iter().enumerate() {
            match op {
                Op::Lookup(l, w) => {
                    let _ = c.lookup(LineAddr::new(l), w, t as u64);
                }
                Op::Fill(l, d, p) => {
                    c.fill(LineAddr::new(l), d, p, t as u64);
                    prop_assert!(c.contains(LineAddr::new(l)));
                }
                Op::Invalidate(l) => {
                    c.invalidate(LineAddr::new(l));
                    prop_assert!(!c.contains(LineAddr::new(l)));
                }
            }
            prop_assert!(c.occupancy() <= 64);
            let s = c.stats();
            prop_assert!(s.demand_hits <= s.demand_accesses);
            prop_assert!(s.prefetch_hits <= s.prefetch_accesses);
        }
    }

    /// Eviction accounting: useless prefetches never exceed prefetch
    /// fills.
    #[test]
    fn prefetch_accounting_bounded(lines in proptest::collection::vec(0u64..4096, 1..500)) {
        let mut c = Cache::new(&cfg(ReplacementKind::Lru));
        for (t, l) in lines.iter().enumerate() {
            c.fill(LineAddr::new(*l), false, t % 2 == 0, t as u64);
        }
        let s = c.stats();
        prop_assert!(s.useless_prefetches + s.useful_prefetches <= s.prefetch_fills);
    }

    /// MSHR: length bounded by capacity; a completed line is gone; every
    /// merged request appears exactly once among the waiters.
    #[test]
    fn mshr_invariants(ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..200)) {
        let mut m = MshrFile::new(8);
        let mut next = 0u64;
        for (line, complete) in ops {
            if complete {
                let _ = m.complete(LineAddr::new(line));
                prop_assert!(!m.contains(LineAddr::new(line)));
            } else {
                next += 1;
                let _ = m.alloc(LineAddr::new(line), ReqId(next), next.is_multiple_of(3), next);
            }
            prop_assert!(m.len() <= 8);
            prop_assert_eq!(m.is_full(), m.len() == 8);
        }
    }

    /// Merging preserves the primary and collects waiters in order.
    #[test]
    fn mshr_merge_collects_waiters(n in 1usize..20) {
        let mut m = MshrFile::new(4);
        let line = LineAddr::new(7);
        m.alloc(line, ReqId(0), false, 0).expect("first alloc");
        for i in 1..=n as u64 {
            m.alloc(line, ReqId(i), false, i).expect("merge always fits");
        }
        let e = m.complete(line).expect("entry");
        prop_assert_eq!(e.primary, ReqId(0));
        prop_assert_eq!(e.waiters.len(), n);
        for (i, w) in e.waiters.iter().enumerate() {
            prop_assert_eq!(*w, ReqId(i as u64 + 1));
        }
    }
}
