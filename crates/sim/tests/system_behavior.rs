//! Behavioural tests of the assembled system: writeback traffic, Hermes
//! probe effects, prefetch-aware fabric arbitration, and replay fairness.

use clip_sim::{run_mix, NocChoice, RunOptions, Scheme};
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 400,
        sim_instrs: 2_500,
        seed: 17,
        noc: NocChoice::Mesh,
        ..RunOptions::default()
    }
}

fn mix(name: &str, cores: usize) -> Mix {
    Mix::homogeneous(
        &clip_trace::catalog::by_name(name).expect("workload exists"),
        cores,
    )
}

fn cfg(cores: usize, channels: usize, pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .dram_channels(channels)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

/// Stores dirty lines; evictions must eventually reach DRAM as writes.
#[test]
fn dirty_evictions_reach_dram() {
    let r = run_mix(
        &cfg(4, 1, PrefetcherKind::None),
        &Scheme::plain(),
        &mix("619.lbm_s-2676B", 4),
        &opts(),
    );
    // lbm writes 16% of its instructions; its working set far exceeds the
    // LLC, so dirty evictions must flow all the way out.
    let writes = r.dram_transfers
        - (r.energy.dram_row_hits + r.energy.dram_row_misses).min(r.dram_transfers);
    // dram_transfers counts reads + writes; sanity: there was activity and
    // the LLC was thrashed.
    let _ = writes;
    assert!(r.dram_transfers > r.misses.llc_misses / 2);
}

/// Hermes issues speculative DRAM probes: DRAM traffic must not *drop*
/// (the paper's point — Hermes hides latency, it does not save bandwidth).
#[test]
fn hermes_does_not_reduce_dram_traffic() {
    let m = mix("605.mcf_s-1554B", 4);
    let plain = run_mix(
        &cfg(4, 2, PrefetcherKind::Berti),
        &Scheme::plain(),
        &m,
        &opts(),
    );
    let hermes = run_mix(
        &cfg(4, 2, PrefetcherKind::Berti),
        &Scheme::with_hermes(),
        &m,
        &opts(),
    );
    assert!(
        hermes.dram_transfers as f64 > plain.dram_transfers as f64 * 0.8,
        "Hermes must not significantly cut DRAM traffic: {} vs {}",
        hermes.dram_transfers,
        plain.dram_transfers
    );
}

/// Disabling prefetch-aware arbitration must not *help* demands: plain
/// prefetch packets competing at demand priority can only hurt.
#[test]
fn prefetch_aware_fabric_helps_or_ties() {
    let m = mix("619.lbm_s-3766B", 4);
    let aware = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .prefetch_aware(true)
        .build()
        .expect("valid");
    let blind = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .prefetch_aware(false)
        .build()
        .expect("valid");
    let r_aware = run_mix(&aware, &Scheme::plain(), &m, &opts());
    let r_blind = run_mix(&blind, &Scheme::plain(), &m, &opts());
    // Demand-first scheduling can cost a little row locality for a highly
    // accurate prefetcher; it must never be catastrophic.
    assert!(
        r_aware.mean_ipc() > r_blind.mean_ipc() * 0.8,
        "PADC must not lose badly: {} vs {}",
        r_aware.mean_ipc(),
        r_blind.mean_ipc()
    );
}

/// All cores in a homogeneous mix make comparable progress (replay
/// fairness): max/min per-core IPC stays bounded.
#[test]
fn homogeneous_cores_progress_fairly() {
    let r = run_mix(
        &cfg(8, 2, PrefetcherKind::None),
        &Scheme::plain(),
        &mix("603.bwaves_s-891B", 8),
        &opts(),
    );
    let max = r.per_core_ipc.iter().cloned().fold(0.0f64, f64::max);
    let min = r.per_core_ipc.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 3.0,
        "homogeneous cores should progress comparably: {min:.3}..{max:.3}"
    );
}

/// DSPatch under saturated bandwidth prunes to accuracy mode; under idle
/// bandwidth expands. Either way the system completes.
#[test]
fn dspatch_runs_in_both_regimes() {
    for channels in [1usize, 8] {
        let r = run_mix(
            &cfg(4, channels, PrefetcherKind::Berti),
            &Scheme::with_dspatch(),
            &mix("619.lbm_s-4268B", 4),
            &opts(),
        );
        assert!(r.mean_ipc() > 0.0, "channels={channels}");
    }
}

/// Larger LLC reduces DRAM traffic (the sens_llc lever works). Uses a
/// custom workload whose hot set fits an 8 MB slice but thrashes a 256 KB
/// one.
#[test]
fn llc_capacity_reduces_dram_traffic() {
    // A hot working set of ~2 x 4000 lines per core: larger than the
    // shrunken 64 KB L2, thrashing a 128 KB LLC slice, fitting a 2 MB one.
    let spec = clip_trace::WorkloadSpec::new(
        "llc-working-set",
        clip_trace::Suite::SpecCpu2017,
        clip_trace::spec::PatternMix {
            stream: 0.0,
            stride: 0.0,
            chase: 0.0,
            hot: 1.0,
            ctx_dual: 0.0,
        },
    )
    .footprint(1 << 20)
    .hot(4_000)
    .ips(2, 4)
    .mixfrac(0.35, 0.05, 0.1);
    let m = Mix::homogeneous(&spec, 4);
    let build = |llc_kb: usize| {
        SimConfig::builder()
            .cores(4)
            .dram_channels(2)
            .l2_bytes(64 * 1024)
            .llc_slice_bytes(llc_kb * 1024)
            .build()
            .expect("valid")
    };
    let long_opts = RunOptions {
        warmup_instrs: 12_000,
        sim_instrs: 10_000,
        ..opts()
    };
    let r_small = run_mix(&build(128), &Scheme::plain(), &m, &long_opts);
    let r_large = run_mix(&build(2048), &Scheme::plain(), &m, &long_opts);
    assert!(
        r_large.dram_transfers < r_small.dram_transfers,
        "2MB/core LLC must filter DRAM traffic: {} vs {}",
        r_large.dram_transfers,
        r_small.dram_transfers
    );
}

/// The paper's Figure 6 critique, as a gate: FDP's feedback loop engages
/// (traffic visibly changes) yet it does not rescue the bandwidth-bound
/// slowdown — FDP is accuracy-driven and bandwidth-blind, so a late but
/// accurate prefetcher gets *more* aggressive under congestion.
#[test]
fn fdp_reacts_but_does_not_rescue() {
    let m = mix("sssp-14B", 4);
    let base = run_mix(
        &cfg(4, 1, PrefetcherKind::None),
        &Scheme::plain(),
        &m,
        &opts(),
    );
    let plain = run_mix(
        &cfg(4, 1, PrefetcherKind::NextLine),
        &Scheme::plain(),
        &m,
        &opts(),
    );
    let fdp = run_mix(
        &cfg(4, 1, PrefetcherKind::NextLine),
        &Scheme::with_throttler(clip_throttle::ThrottlerKind::Fdp),
        &m,
        &opts(),
    );
    assert_ne!(
        fdp.prefetch.issued, plain.prefetch.issued,
        "the feedback loop must change the issue volume"
    );
    let ws = clip_stats::normalized_weighted_speedup(&fdp.per_core_ipc, &base.per_core_ipc);
    assert!(
        ws < 1.05,
        "FDP must not rescue the constrained-bandwidth slowdown: WS {ws:.3}"
    );
}
