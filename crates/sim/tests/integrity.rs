//! Integrity-layer end-to-end tests: every injected fault class is caught
//! by its auditor with a `SimError` naming the component and cycle, fault
//! injection is deterministic (serial vs parallel), and a failing job in
//! a batch leaves the other jobs' results byte-identical to a clean run.

use clip_sim::{
    run_jobs_checked, run_jobs_localized, run_mix_checked, CheckLevel, FaultKind, FaultSpec,
    NocChoice, RunOptions, Scheme, SimError, SimErrorKind, SweepJob,
};
use clip_trace::{catalog, Mix};
use clip_types::{DramKind, PrefetcherKind, SimConfig};

fn cfg(cores: usize) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::None)
        .build()
        .expect("valid config")
}

fn cfg_pf(cores: usize) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config")
}

fn mix(cores: usize) -> Mix {
    Mix::homogeneous(
        &catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        cores,
    )
}

fn faulted(kind: FaultKind, at: u64, noc: NocChoice) -> RunOptions {
    RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc,
        check: Some(CheckLevel::Cheap),
        check_cadence: 64,
        fault: Some(FaultSpec { kind, at }),
        ..RunOptions::default()
    }
}

#[test]
fn dropped_flit_is_caught_by_noc_auditor() {
    let opts = faulted(FaultKind::DropFlit, 1_000, NocChoice::Mesh);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a lost flit must fail the run");
    assert_eq!(err.component, "noc");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("conservation broken"), "{err}");
}

#[test]
fn swallowed_dram_completion_is_caught_by_dram_auditor() {
    let opts = faulted(FaultKind::SwallowDramCompletion, 1_000, NocChoice::Analytic);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a swallowed completion must fail the run");
    assert_eq!(err.component, "dram");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("conservation broken"), "{err}");
}

#[test]
fn leaked_llc_mshr_is_caught_by_mshr_auditor() {
    let opts = faulted(FaultKind::LeakLlcMshr, 1_000, NocChoice::Analytic);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a leaked MSHR must fail the run");
    assert_eq!(err.component, "llc");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("balance broken"), "{err}");
}

#[test]
fn lost_deliveries_trip_the_forward_progress_watchdog() {
    // LoseDelivery is invisible to every conservation audit (the network
    // accounts for each delivery before the fault discards it), so only
    // the watchdog can report the resulting hang.
    let opts = RunOptions {
        watchdog_window: 2_000,
        ..faulted(FaultKind::LoseDelivery, 2_000, NocChoice::Analytic)
    };
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("losing every delivery must wedge the system");
    assert_eq!(err.component, "watchdog");
    assert_eq!(err.kind, SimErrorKind::Deadlock);
    assert!(err.cycle >= 2_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("live txns"), "{err}");
    assert!(err.detail.contains("oldest"), "{err}");
}

/// One row of the fault → auditor table: how to provoke the fault and
/// what the resulting `SimError` must look like.
struct FaultRow {
    kind: FaultKind,
    /// Use the prefetcher-enabled config (queue/criticality faults need
    /// prefetches in flight).
    needs_prefetcher: bool,
    check: CheckLevel,
    check_cadence: u64,
    watchdog_window: u64,
    expect_kind: SimErrorKind,
    /// The error's component must start with one of these.
    expect_component_prefixes: &'static [&'static str],
}

const FAULT_TABLE: &[FaultRow] = &[
    FaultRow {
        kind: FaultKind::DropFlit,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Conservation,
        expect_component_prefixes: &["noc"],
    },
    FaultRow {
        kind: FaultKind::SwallowDramCompletion,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Conservation,
        expect_component_prefixes: &["dram"],
    },
    FaultRow {
        kind: FaultKind::LeakLlcMshr,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Conservation,
        expect_component_prefixes: &["llc"],
    },
    FaultRow {
        kind: FaultKind::LoseDelivery,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 2_000,
        expect_kind: SimErrorKind::Deadlock,
        expect_component_prefixes: &["watchdog"],
    },
    FaultRow {
        kind: FaultKind::StaleRetire,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Conservation,
        expect_component_prefixes: &["tile"],
    },
    FaultRow {
        kind: FaultKind::DuplicateDelivery,
        needs_prefetcher: false,
        check: CheckLevel::Cheap,
        check_cadence: 64,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Conservation,
        expect_component_prefixes: &["tile"],
    },
    FaultRow {
        kind: FaultKind::CorruptPrefetchAddr,
        needs_prefetcher: true,
        // The corrupted entry is only visible to the full-level legality
        // scans; a tight cadence catches it before the queue drains (the
        // txn-slab backstop catches it afterwards).
        check: CheckLevel::Full,
        check_cadence: 8,
        watchdog_window: 0,
        expect_kind: SimErrorKind::IllegalState,
        expect_component_prefixes: &["tile", "txns"],
    },
    FaultRow {
        kind: FaultKind::FlipCriticality,
        needs_prefetcher: true,
        // Conserved corruption: only the fingerprint comparison against a
        // clean same-seed run (run_jobs_localized) can report it.
        check: CheckLevel::Full,
        check_cadence: 16,
        watchdog_window: 0,
        expect_kind: SimErrorKind::Divergence,
        expect_component_prefixes: &["tile", "llc", "txns", "fingerprint"],
    },
];

/// Backend combinations the fault matrix covers: the default
/// analytic/DDR4 pair, each new backend on its own, and the full
/// chiplet + HBM stack.
const BACKENDS: &[(NocChoice, DramKind)] = &[
    (NocChoice::Analytic, DramKind::Ddr4),
    (NocChoice::Chiplet, DramKind::Ddr4),
    (NocChoice::Analytic, DramKind::Hbm),
    (NocChoice::Chiplet, DramKind::Hbm),
];

/// A 4-core platform on the given DRAM backend, split 2 + 2 across two
/// dies so chiplet runs actually exercise the die-to-die crossing.
fn backend_cfg(pf: PrefetcherKind, dram: DramKind) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_backend(dram)
        .dram_channels(1)
        .chiplet_cluster(2)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn row_options(row: &FaultRow, noc: NocChoice) -> RunOptions {
    RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc,
        check: Some(row.check),
        check_cadence: row.check_cadence,
        watchdog_window: row.watchdog_window,
        fault: Some(FaultSpec {
            kind: row.kind,
            at: 1_000,
        }),
        ..RunOptions::default()
    }
}

fn backend_row_error(row: &FaultRow, noc: NocChoice, dram: DramKind) -> SimError {
    let pf = if row.needs_prefetcher {
        PrefetcherKind::Berti
    } else {
        PrefetcherKind::None
    };
    let jobs = vec![SweepJob {
        cfg: backend_cfg(pf, dram),
        scheme: Scheme::plain(),
        mix: mix(4),
    }];
    let mut outcomes = run_jobs_localized(&jobs, &row_options(row, noc));
    outcomes
        .remove(0)
        .expect_err("every injected fault must be reported")
}

fn row_error(row: &FaultRow) -> SimError {
    backend_row_error(row, NocChoice::Analytic, DramKind::Ddr4)
}

fn assert_row_caught(row: &FaultRow, err: &SimError, noc: NocChoice, dram: DramKind) {
    assert_eq!(
        err.kind, row.expect_kind,
        "{:?} on {noc:?}/{dram:?}: wrong error kind: {err}",
        row.kind
    );
    assert!(
        row.expect_component_prefixes
            .iter()
            .any(|p| err.component.starts_with(p)),
        "{:?} on {noc:?}/{dram:?}: component {:?} not in {:?} ({err})",
        row.kind,
        err.component,
        row.expect_component_prefixes
    );
    // Tile-layer faults must name the specific structure.
    match row.kind {
        FaultKind::StaleRetire | FaultKind::DuplicateDelivery => {
            assert!(err.component.ends_with(".core"), "{err}");
        }
        FaultKind::CorruptPrefetchAddr => {
            assert!(
                err.component.ends_with(".pf-queue") || err.component == "txns",
                "{err}"
            );
        }
        _ => {}
    }
}

#[test]
fn every_fault_kind_is_caught_by_its_auditor() {
    for row in FAULT_TABLE {
        let err = row_error(row);
        assert_row_caught(row, &err, NocChoice::Analytic, DramKind::Ddr4);
    }
}

/// The full backend × fault-kind matrix: every auditor contract the
/// default stack honours must hold verbatim on the chiplet fabric and
/// the HBM memory backend (and their combination).
#[test]
fn every_fault_kind_is_caught_on_every_backend() {
    for &(noc, dram) in BACKENDS {
        if (noc, dram) == (NocChoice::Analytic, DramKind::Ddr4) {
            continue; // the default pair is covered above
        }
        for row in FAULT_TABLE {
            let err = backend_row_error(row, noc, dram);
            assert_row_caught(row, &err, noc, dram);
        }
    }
}

/// The composite ensemble under every fault kind: per-engine queue
/// accounting adds new conservation state (engine-tagged queue entries,
/// per-engine queued/dequeued balances), and every auditor contract the
/// single-engine path honours must hold verbatim with three engines
/// sharing the pf-queue. Like the rest of the matrix this runs the
/// plain scheme: CLIP gates at the issue point and may legitimately
/// consume a corrupted candidate there, so the legality-backstop
/// contract (queue scan or illegal issue, whichever comes first) is
/// defined on the ungated path.
#[test]
fn every_fault_kind_is_caught_under_the_composite_ensemble() {
    for row in FAULT_TABLE {
        let pf = if row.needs_prefetcher {
            PrefetcherKind::Composite
        } else {
            PrefetcherKind::None
        };
        let jobs = vec![SweepJob {
            cfg: backend_cfg(pf, DramKind::Ddr4),
            scheme: Scheme::plain(),
            mix: mix(4),
        }];
        let mut outcomes = run_jobs_localized(&jobs, &row_options(row, NocChoice::Analytic));
        let err = match outcomes.remove(0) {
            Err(e) => e,
            Ok(_) => panic!("{:?} must be reported under Composite", row.kind),
        };
        assert_row_caught(row, &err, NocChoice::Analytic, DramKind::Ddr4);
    }
}

#[test]
fn fault_victims_are_deterministic_across_runs_and_threads() {
    // The same seed must pick the same victim — and report the identical
    // error — whether jobs run serially or across worker threads.
    std::env::set_var("CLIP_THREADS", "2");
    for row in FAULT_TABLE {
        let a = row_error(row);
        let b = row_error(row);
        assert_eq!(a, b, "{:?}: victim must be deterministic", row.kind);
    }
}

#[test]
fn stale_retire_names_core_conservation() {
    let row = &FAULT_TABLE[4];
    let err = row_error(row);
    assert!(err.detail.contains("rob balance broken"), "{err}");
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
}

#[test]
fn duplicate_delivery_names_load_queue() {
    let row = &FAULT_TABLE[5];
    let err = row_error(row);
    assert!(err.detail.contains("load queue balance broken"), "{err}");
}

#[test]
fn flip_criticality_is_localized_to_a_window_and_component() {
    // The fingerprint localizer demo of the issue: a flipped criticality
    // bit is conserved state, so the faulted run completes cleanly; only
    // diffing its fingerprint stream against the un-faulted same-seed run
    // reports where the histories first part ways.
    let opts = row_options(&FAULT_TABLE[7], NocChoice::Analytic);
    let c = cfg_pf(4);
    let m = mix(4);

    let faulted = run_mix_checked(&c, &Scheme::plain(), &m, &opts)
        .expect("conserved corruption passes every auditor");
    let clean_opts = RunOptions {
        fault: None,
        ..opts.clone()
    };
    let clean = run_mix_checked(&c, &Scheme::plain(), &m, &clean_opts).expect("clean run");
    assert!(
        !clean.fingerprints.is_empty(),
        "full-level runs must capture fingerprints"
    );

    let err = clip_sim::fingerprint::compare(&clean, &faulted)
        .expect_err("flipped criticality must diverge");
    assert_eq!(err.kind, SimErrorKind::Divergence);
    assert!(err.detail.contains("first divergent window"), "{err}");
    // A clean run diffed against itself reports nothing.
    clip_sim::fingerprint::compare(&clean, &clean).expect("self-comparison is clean");
}

#[test]
fn watchdog_tolerates_slow_but_live_configurations() {
    // False-positive regression: the slowest known-good configuration —
    // bandwidth-starved streaming with a prefetcher multiplying traffic —
    // stalls individual cores for long stretches but always makes *some*
    // global progress. Under full checks and a tight audit cadence the
    // default watchdog window must not fire.
    let c = SimConfig::builder()
        .cores(8)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    let m = Mix::homogeneous(
        &catalog::by_name("619.lbm_s-4268B").expect("known workload"),
        8,
    );
    let opts = RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc: NocChoice::Analytic,
        check: Some(CheckLevel::Full),
        check_cadence: 16,
        ..RunOptions::default()
    };
    let r = run_mix_checked(&c, &Scheme::plain(), &m, &opts)
        .expect("a slow but live run must not trip the watchdog");
    assert!(r.mean_ipc() > 0.0);
    assert!(!r.fingerprints.is_empty());
}

#[test]
fn fault_injection_is_deterministic_serial_vs_parallel() {
    let opts = faulted(FaultKind::SwallowDramCompletion, 1_000, NocChoice::Analytic);
    let c = cfg(4);
    let m = mix(4);

    let serial_a = run_mix_checked(&c, &Scheme::plain(), &m, &opts).unwrap_err();
    let serial_b = run_mix_checked(&c, &Scheme::plain(), &m, &opts).unwrap_err();
    assert_eq!(serial_a, serial_b, "same seed must kill the same victim");

    std::env::set_var("CLIP_THREADS", "2");
    let jobs: Vec<SweepJob> = (0..2)
        .map(|_| SweepJob {
            cfg: c.clone(),
            scheme: Scheme::plain(),
            mix: m.clone(),
        })
        .collect();
    for outcome in run_jobs_checked(&jobs, &opts) {
        assert_eq!(outcome.unwrap_err(), serial_a, "parallel must match serial");
    }
}

#[test]
fn failing_job_leaves_other_jobs_byte_identical() {
    let good_cfg = cfg(4);
    let good_mix = mix(4);
    let opts = RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc: NocChoice::Analytic,
        check: Some(CheckLevel::Cheap),
        ..RunOptions::default()
    };

    // The clean reference: each good job run serially on its own.
    let reference = run_mix_checked(&good_cfg, &Scheme::plain(), &good_mix, &opts)
        .expect("clean run succeeds")
        .to_json()
        .render();

    // Middle job panics in System::new (mix does not match core count).
    let jobs = vec![
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: good_mix.clone(),
        },
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: mix(2),
        },
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: good_mix.clone(),
        },
    ];
    let outcomes = run_jobs_checked(&jobs, &opts);
    assert_eq!(outcomes.len(), 3);

    let bad = outcomes[1].as_ref().expect_err("mismatched mix must fail");
    assert_eq!(bad.kind, SimErrorKind::Panic);
    assert!(bad.detail.contains("mix must match core count"), "{bad}");

    for i in [0usize, 2] {
        let r = outcomes[i].as_ref().expect("good job survives");
        assert_eq!(
            r.to_json().render(),
            reference,
            "job {i} must be byte-identical to the clean serial run"
        );
    }
}
