//! Integrity-layer end-to-end tests: every injected fault class is caught
//! by its auditor with a `SimError` naming the component and cycle, fault
//! injection is deterministic (serial vs parallel), and a failing job in
//! a batch leaves the other jobs' results byte-identical to a clean run.

use clip_sim::{
    run_jobs_checked, run_mix_checked, CheckLevel, FaultKind, FaultSpec, NocChoice, RunOptions,
    Scheme, SimErrorKind, SweepJob,
};
use clip_trace::{catalog, Mix};
use clip_types::{PrefetcherKind, SimConfig};

fn cfg(cores: usize) -> SimConfig {
    SimConfig::builder()
        .cores(cores)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::None)
        .build()
        .expect("valid config")
}

fn mix(cores: usize) -> Mix {
    Mix::homogeneous(
        &catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        cores,
    )
}

fn faulted(kind: FaultKind, at: u64, noc: NocChoice) -> RunOptions {
    RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc,
        check: Some(CheckLevel::Cheap),
        check_cadence: 64,
        fault: Some(FaultSpec { kind, at }),
        ..RunOptions::default()
    }
}

#[test]
fn dropped_flit_is_caught_by_noc_auditor() {
    let opts = faulted(FaultKind::DropFlit, 1_000, NocChoice::Mesh);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a lost flit must fail the run");
    assert_eq!(err.component, "noc");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("conservation broken"), "{err}");
}

#[test]
fn swallowed_dram_completion_is_caught_by_dram_auditor() {
    let opts = faulted(FaultKind::SwallowDramCompletion, 1_000, NocChoice::Analytic);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a swallowed completion must fail the run");
    assert_eq!(err.component, "dram");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("conservation broken"), "{err}");
}

#[test]
fn leaked_llc_mshr_is_caught_by_mshr_auditor() {
    let opts = faulted(FaultKind::LeakLlcMshr, 1_000, NocChoice::Analytic);
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("a leaked MSHR must fail the run");
    assert_eq!(err.component, "llc");
    assert_eq!(err.kind, SimErrorKind::Conservation);
    assert!(err.cycle >= 1_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("balance broken"), "{err}");
}

#[test]
fn lost_deliveries_trip_the_forward_progress_watchdog() {
    // LoseDelivery is invisible to every conservation audit (the network
    // accounts for each delivery before the fault discards it), so only
    // the watchdog can report the resulting hang.
    let opts = RunOptions {
        watchdog_window: 2_000,
        ..faulted(FaultKind::LoseDelivery, 2_000, NocChoice::Analytic)
    };
    let err = run_mix_checked(&cfg(4), &Scheme::plain(), &mix(4), &opts)
        .expect_err("losing every delivery must wedge the system");
    assert_eq!(err.component, "watchdog");
    assert_eq!(err.kind, SimErrorKind::Deadlock);
    assert!(err.cycle >= 2_000, "detected at cycle {}", err.cycle);
    assert!(err.detail.contains("live txns"), "{err}");
    assert!(err.detail.contains("oldest"), "{err}");
}

#[test]
fn fault_injection_is_deterministic_serial_vs_parallel() {
    let opts = faulted(FaultKind::SwallowDramCompletion, 1_000, NocChoice::Analytic);
    let c = cfg(4);
    let m = mix(4);

    let serial_a = run_mix_checked(&c, &Scheme::plain(), &m, &opts).unwrap_err();
    let serial_b = run_mix_checked(&c, &Scheme::plain(), &m, &opts).unwrap_err();
    assert_eq!(serial_a, serial_b, "same seed must kill the same victim");

    std::env::set_var("CLIP_THREADS", "2");
    let jobs: Vec<SweepJob> = (0..2)
        .map(|_| SweepJob {
            cfg: c.clone(),
            scheme: Scheme::plain(),
            mix: m.clone(),
        })
        .collect();
    for outcome in run_jobs_checked(&jobs, &opts) {
        assert_eq!(outcome.unwrap_err(), serial_a, "parallel must match serial");
    }
}

#[test]
fn failing_job_leaves_other_jobs_byte_identical() {
    let good_cfg = cfg(4);
    let good_mix = mix(4);
    let opts = RunOptions {
        warmup_instrs: 500,
        sim_instrs: 3_000,
        seed: 7,
        noc: NocChoice::Analytic,
        check: Some(CheckLevel::Cheap),
        ..RunOptions::default()
    };

    // The clean reference: each good job run serially on its own.
    let reference = run_mix_checked(&good_cfg, &Scheme::plain(), &good_mix, &opts)
        .expect("clean run succeeds")
        .to_json()
        .render();

    // Middle job panics in System::new (mix does not match core count).
    let jobs = vec![
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: good_mix.clone(),
        },
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: mix(2),
        },
        SweepJob {
            cfg: good_cfg.clone(),
            scheme: Scheme::plain(),
            mix: good_mix.clone(),
        },
    ];
    let outcomes = run_jobs_checked(&jobs, &opts);
    assert_eq!(outcomes.len(), 3);

    let bad = outcomes[1].as_ref().expect_err("mismatched mix must fail");
    assert_eq!(bad.kind, SimErrorKind::Panic);
    assert!(bad.detail.contains("mix must match core count"), "{bad}");

    for i in [0usize, 2] {
        let r = outcomes[i].as_ref().expect("good job survives");
        assert_eq!(
            r.to_json().render(),
            reference,
            "job {i} must be byte-identical to the clean serial run"
        );
    }
}
