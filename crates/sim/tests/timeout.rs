//! Wall-clock deadline determinism: a blown deadline is wall-clock
//! *detected* but must be cycle-deterministically *reported*. The check
//! only fires at audit-cadence boundaries, and a zero budget is already
//! exhausted at the very first boundary on any host, so a
//! `deadline: Some(Duration::ZERO)` run must produce the **same**
//! `SimError` — cycle, component, detail, everything — no matter the
//! machine, the worker-thread count, or the scheduler (event wheel vs
//! cycle-by-cycle stepping). Timed-out cells must also leave sibling
//! jobs untouched: the clean jobs in the same batch stay byte-identical
//! to a run with no deadline at all.
//!
//! Env-mutating (`CLIP_THREADS`), so this lives in its own integration
//! binary with a single `#[test]`, like `skip_determinism`.

use clip_sim::{
    run_jobs_checked, set_step_override, CheckLevel, RunOptions, Scheme, SimError, SimErrorKind,
    SimResult, SweepJob,
};
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};
use std::time::Duration;

fn jobs() -> Vec<SweepJob> {
    let cfg = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    ["605.mcf_s-1554B", "619.lbm_s-4268B", "602.gcc_s-734B"]
        .iter()
        .map(|name| SweepJob {
            cfg: cfg.clone(),
            scheme: Scheme::with_clip(),
            mix: Mix::homogeneous(
                &clip_trace::catalog::by_name(name).expect("known workload"),
                4,
            ),
        })
        .collect()
}

fn opts(deadline: Option<Duration>) -> RunOptions {
    RunOptions {
        warmup_instrs: 200,
        sim_instrs: 1_000,
        seed: 7,
        check: Some(CheckLevel::Cheap),
        check_cadence: 64,
        deadline,
        ..RunOptions::default()
    }
}

fn renders(outcomes: &[Result<SimResult, SimError>]) -> Vec<String> {
    outcomes
        .iter()
        .map(|r| r.as_ref().expect("clean run").to_json().render())
        .collect()
}

#[test]
fn zero_deadline_times_out_deterministically_and_spares_siblings() {
    let batch = jobs();

    // Reference: the batch with no deadline completes cleanly.
    let clean = renders(&run_jobs_checked(&batch, &opts(None)));

    // Zero budget: every job must time out at its first cadence
    // boundary, naming the deadline component and the queue state.
    let timed: Vec<SimError> = run_jobs_checked(&batch, &opts(Some(Duration::ZERO)))
        .into_iter()
        .map(|r| r.expect_err("a zero deadline must time out"))
        .collect();
    for e in &timed {
        assert_eq!(e.kind, SimErrorKind::Timeout, "kind: {e}");
        assert_eq!(e.component, "deadline", "component: {e}");
        assert!(
            e.cycle > 0 && e.cycle.is_multiple_of(64),
            "the deadline must fire exactly on a cadence boundary, got cycle {}",
            e.cycle
        );
        assert!(
            e.detail.contains("wall-clock deadline") && e.detail.contains("live txns"),
            "detail must name the budget and the queue snapshot: {e}"
        );
    }

    // Same errors — full struct equality — across two worker threads.
    std::env::set_var("CLIP_THREADS", "2");
    let parallel: Vec<SimError> = run_jobs_checked(&batch, &opts(Some(Duration::ZERO)))
        .into_iter()
        .map(|r| r.expect_err("a zero deadline must time out"))
        .collect();
    std::env::remove_var("CLIP_THREADS");
    assert_eq!(timed, parallel, "serial vs CLIP_THREADS=2");

    // ... and across schedulers: cycle-by-cycle stepping must trip the
    // deadline at the identical cycle the wheel does (the cadence
    // boundary is a wheel constraint whenever a deadline is armed).
    set_step_override(Some(true));
    let stepped: Vec<SimError> = run_jobs_checked(&batch, &opts(Some(Duration::ZERO)))
        .into_iter()
        .map(|r| r.expect_err("a zero deadline must time out"))
        .collect();
    set_step_override(None);
    assert_eq!(timed, stepped, "wheel vs step");

    // Sibling isolation: deadline state carries nothing across runs —
    // re-running the batch cleanly is byte-identical to the reference.
    assert_eq!(
        renders(&run_jobs_checked(&batch, &opts(None))),
        clean,
        "a timed-out batch must leave later clean runs byte-identical"
    );
}
