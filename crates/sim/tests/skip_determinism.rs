//! Event-wheel skip-ahead equivalence: the wheel scheduler must be an
//! invisible optimization. Every run — clean or faulted, serial or
//! parallel, any scheme — must produce **byte-identical** results and
//! fingerprint streams whether the loop skips quiescent stretches or
//! grinds through them cycle by cycle (`CLIP_TICK=step`, here forced via
//! `set_step_override` so the suite is hermetic against the environment).
//!
//! Faulted runs are the sharpest probe: fault arm cycles are wheel
//! constraints, so a skip that jumped past an arm cycle — or perturbed
//! the seeded retry RNG — would change which transaction the fault
//! selects and diverge instantly. All eight kinds are covered.

use clip_sim::{
    run_jobs_checked, set_step_override, CheckLevel, FaultKind, FaultSpec, NocChoice, RunOptions,
    Scheme, SimError, SimResult, SweepJob,
};
use clip_trace::Mix;
use clip_types::{DramKind, PrefetcherKind, SimConfig};

fn cfg(pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn mix(name: &str) -> Mix {
    Mix::homogeneous(
        &clip_trace::catalog::by_name(name).expect("known workload"),
        4,
    )
}

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 400,
        sim_instrs: 2_000,
        seed: 11,
        timeline_interval: 1_000,
        // Full checks: the densest possible fingerprint streams, plus
        // audits at every cadence window — a skip landing anywhere it
        // shouldn't desynchronizes the streams immediately.
        check: Some(CheckLevel::Full),
        check_cadence: 256,
        ..RunOptions::default()
    }
}

type Outcomes = Vec<Result<SimResult, SimError>>;

/// Runs the same batch once on the event wheel and once forced to
/// cycle-by-cycle stepping, returning both outcome vectors.
fn wheel_and_step(jobs: &[SweepJob], opts: &RunOptions) -> (Outcomes, Outcomes) {
    set_step_override(Some(false));
    let wheel = run_jobs_checked(jobs, opts);
    set_step_override(Some(true));
    let step = run_jobs_checked(jobs, opts);
    set_step_override(None);
    (wheel, step)
}

/// Byte-for-byte equivalence: the serialized result (every counter,
/// report, and timeline point), the fingerprint stream (excluded from
/// the JSON form), and failures (same error, same cycle, same component).
fn assert_outcome_identical(
    wheel: &Result<SimResult, SimError>,
    step: &Result<SimResult, SimError>,
    what: &str,
) {
    match (wheel, step) {
        (Ok(w), Ok(s)) => {
            assert_eq!(
                w.to_json().render(),
                s.to_json().render(),
                "{what}: serialized result"
            );
            assert_eq!(w.fingerprints, s.fingerprints, "{what}: fingerprint stream");
        }
        (Err(w), Err(s)) => assert_eq!(w, s, "{what}: error"),
        (w, s) => panic!(
            "{what}: wheel and step disagree on success: wheel={:?} step={:?}",
            w.as_ref().map(|r| r.cycles),
            s.as_ref().map(|r| r.cycles),
        ),
    }
}

fn assert_batch_identical(jobs: &[SweepJob], opts: &RunOptions, what: &str) {
    let (wheel, step) = wheel_and_step(jobs, opts);
    assert_eq!(wheel.len(), step.len());
    for (i, (w, s)) in wheel.iter().zip(&step).enumerate() {
        assert_outcome_identical(w, s, &format!("{what}, job {i}"));
    }
}

/// One configuration per scheme family: plain, static CLIP, dynamic
/// CLIP, a throttler baseline, a criticality-gate baseline, Hermes, and
/// DSPatch. Each family drives a different uncore arbitration path, so
/// each can diverge independently under a bad skip.
#[test]
fn wheel_matches_step_across_scheme_families() {
    let schemes: Vec<(&str, Scheme)> = vec![
        ("plain", Scheme::plain()),
        ("clip", Scheme::with_clip()),
        ("dynamic-clip", Scheme::with_dynamic_clip()),
        (
            "fdp",
            Scheme::with_throttler(clip_throttle::ThrottlerKind::Fdp),
        ),
        (
            "crit-gate",
            Scheme::with_crit_gate(clip_crit::BaselineKind::Fp),
        ),
        ("hermes", Scheme::with_hermes()),
        ("dspatch", Scheme::with_dspatch()),
    ];
    let m = mix("605.mcf_s-1554B");
    for (name, scheme) in schemes {
        let jobs = [SweepJob {
            cfg: cfg(PrefetcherKind::Berti),
            scheme,
            mix: m.clone(),
        }];
        assert_batch_identical(&jobs, &opts(), name);
    }
}

/// The composite ensemble, plain and CLIP-arbitrated: per-engine level
/// recomputation happens at exploration-window boundaries, so a skip
/// that misplaced a window edge would shift every later arbitration
/// decision and diverge the streams.
#[test]
fn wheel_matches_step_on_the_composite_ensemble() {
    let m = mix("605.mcf_s-1554B");
    for (name, scheme) in [
        ("composite", Scheme::plain()),
        ("composite-clip", Scheme::with_clip()),
    ] {
        let jobs = [SweepJob {
            cfg: cfg(PrefetcherKind::Composite),
            scheme,
            mix: m.clone(),
        }];
        assert_batch_identical(&jobs, &opts(), name);
    }
}

/// A second workload with a different memory profile, on the mesh NoC
/// (the scheme sweep above uses the default choice): lbm streams where
/// mcf pointer-chases, exercising long DRAM-bound quiescent stretches.
#[test]
fn wheel_matches_step_on_a_streaming_workload() {
    let jobs = [SweepJob {
        cfg: cfg(PrefetcherKind::IpStride),
        scheme: Scheme::with_clip(),
        mix: mix("619.lbm_s-4268B"),
    }];
    assert_batch_identical(&jobs, &opts(), "lbm/stride");
}

/// All eight fault kinds: the armed cycle is a wheel constraint and the
/// fault selector draws from a seeded RNG on every retry, so the wheel
/// must simulate — not skip — every cycle the harness might act on.
/// Equivalence here covers the error path too: an audit or watchdog
/// failure must name the same cycle and component under both schedulers.
#[test]
fn wheel_matches_step_under_every_fault_kind() {
    let kinds = [
        FaultKind::DropFlit,
        FaultKind::SwallowDramCompletion,
        FaultKind::LeakLlcMshr,
        FaultKind::LoseDelivery,
        FaultKind::FlipCriticality,
        FaultKind::DuplicateDelivery,
        FaultKind::CorruptPrefetchAddr,
        FaultKind::StaleRetire,
    ];
    let m = mix("605.mcf_s-1554B");
    for kind in kinds {
        let jobs = [SweepJob {
            cfg: cfg(PrefetcherKind::Berti),
            scheme: Scheme::with_clip(),
            mix: m.clone(),
        }];
        let o = RunOptions {
            fault: Some(FaultSpec { kind, at: 1_000 }),
            ..opts()
        };
        assert_batch_identical(&jobs, &o, &format!("fault {kind:?}"));
    }
}

/// The parallel driver resolves the step mode once and pins it onto
/// every worker thread; a batch split across two workers must still be
/// byte-identical between schedulers. The only test that touches
/// `CLIP_THREADS`.
#[test]
fn wheel_matches_step_across_two_worker_threads() {
    std::env::set_var("CLIP_THREADS", "2");
    let m = mix("605.mcf_s-1554B");
    let jobs: Vec<SweepJob> = [Scheme::plain(), Scheme::with_clip(), Scheme::with_dspatch()]
        .into_iter()
        .map(|scheme| SweepJob {
            cfg: cfg(PrefetcherKind::Berti),
            scheme,
            mix: m.clone(),
        })
        .collect();
    assert_batch_identical(&jobs, &opts(), "two threads");
    std::env::remove_var("CLIP_THREADS");
}

/// The two pluggable backends added behind the `NocModel`/`DramModel`
/// traits honour the same invisibility contract: a chiplet fabric run
/// (with a die-to-die crossing in play) and an HBM memory run must each
/// be byte-identical between the wheel and cycle-by-cycle stepping. The
/// chiplet row exercises `next_activity` on the d2d ports; the HBM row
/// exercises per-bank rolling refresh as a skip constraint.
#[test]
fn wheel_matches_step_on_chiplet_and_hbm_backends() {
    let m = mix("605.mcf_s-1554B");

    // Chiplet fabric: 4 cores split 2 + 2 across two dies.
    let chiplet_cfg = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .chiplet_cluster(2)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    let jobs = [SweepJob {
        cfg: chiplet_cfg,
        scheme: Scheme::with_clip(),
        mix: m.clone(),
    }];
    let o = RunOptions {
        noc: NocChoice::Chiplet,
        ..opts()
    };
    assert_batch_identical(&jobs, &o, "chiplet fabric");

    // HBM memory backend, refresh enabled so the rolling per-bank
    // refresh schedule constrains the wheel.
    let hbm_cfg = SimConfig::builder()
        .cores(4)
        .dram_backend(DramKind::Hbm)
        .dram_channels(2)
        .dram_refresh(true)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    let jobs = [SweepJob {
        cfg: hbm_cfg,
        scheme: Scheme::with_clip(),
        mix: m,
    }];
    assert_batch_identical(&jobs, &opts(), "hbm dram");
}

/// Skipping a quiescent stretch advances the clock without advancing the
/// progress signature — exactly what the watchdog calls a deadlock when
/// work is in flight. The wheel must never let skipped-over idle time
/// accumulate into a false deadlock verdict: a clean bandwidth-starved
/// run (one DRAM channel, pointer-chasing cores, long stalls) with a
/// watchdog window *smaller than the run length* must complete under
/// both schedulers.
#[test]
fn skip_ahead_triggers_no_false_deadlock() {
    let jobs = [SweepJob {
        cfg: cfg(PrefetcherKind::None),
        scheme: Scheme::plain(),
        mix: mix("605.mcf_s-1554B"),
    }];
    let o = RunOptions {
        watchdog_window: 20_000,
        ..opts()
    };
    let (wheel, step) = wheel_and_step(&jobs, &o);
    assert!(
        wheel[0].is_ok(),
        "wheel run must not trip the watchdog: {:?}",
        wheel[0].as_ref().err()
    );
    assert_outcome_identical(&wheel[0], &step[0], "tight watchdog");
}
