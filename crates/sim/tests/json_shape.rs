//! Golden-shape test for `SimResult::to_json`: the emitted document must
//! parse, and every key must match the Rust struct field names exactly —
//! this is the contract external consumers (`scripts/make_experiments.py`
//! readers) rely on, and what a derive-based serializer would produce.

use clip_sim::{run_mix, RunOptions, Scheme};
use clip_stats::Json;
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};

fn small_result() -> clip_sim::SimResult {
    let cfg = SimConfig::builder()
        .cores(2)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    let mix = Mix::homogeneous(
        &clip_trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        2,
    );
    let opts = RunOptions {
        warmup_instrs: 300,
        sim_instrs: 1_500,
        seed: 3,
        timeline_interval: 2_000,
        ..RunOptions::default()
    };
    run_mix(&cfg, &Scheme::with_clip(), &mix, &opts)
}

#[test]
fn json_shape_matches_struct_fields() {
    let r = small_result();
    let doc = Json::parse(&r.to_json().render()).expect("emitted JSON must parse");

    // Top level: the SimResult fields, in declaration order.
    assert_eq!(
        doc.keys(),
        vec![
            "label",
            "per_core_ipc",
            "cycles",
            "latency",
            "prefetch",
            "misses",
            "dram_transfers",
            "dram_row_hits",
            "dram_bw_util",
            "dram_max_channel_util",
            "noc_flit_hops",
            "clip",
            "baseline_evals",
            "energy",
            "timeline",
        ]
    );

    // Nested reports mirror their structs too.
    let latency = doc.get("latency").expect("latency present");
    assert_eq!(
        latency.keys(),
        vec!["l1_miss", "by_l2", "by_llc", "by_dram"]
    );
    let l1 = latency.get("l1_miss").expect("l1_miss present");
    assert_eq!(l1.keys(), vec!["count", "total"]);

    let prefetch = doc.get("prefetch").expect("prefetch present");
    assert_eq!(
        prefetch.keys(),
        vec!["candidates", "issued", "useful", "useless", "late"]
    );

    let misses = doc.get("misses").expect("misses present");
    assert_eq!(
        misses.keys(),
        vec![
            "l1_accesses",
            "l1_misses",
            "l2_accesses",
            "l2_misses",
            "llc_accesses",
            "llc_misses",
        ]
    );

    let clip = doc.get("clip").expect("clip present");
    assert_eq!(
        clip.keys(),
        vec!["stats", "eval", "ip_eval", "critical_ips", "dynamic_ips"]
    );
    assert_eq!(
        clip.get("stats").expect("stats present").keys(),
        vec![
            "candidates",
            "allowed_critical",
            "allowed_explore",
            "dropped_not_critical",
            "dropped_predicted",
            "dropped_low_accuracy",
            "dropped_phase",
            "phase_changes",
            "windows",
        ]
    );
    assert_eq!(
        clip.get("eval").expect("eval present").keys(),
        vec![
            "true_positive",
            "false_positive",
            "false_negative",
            "true_negative",
        ]
    );

    let energy = doc.get("energy").expect("energy present");
    assert_eq!(
        energy.keys(),
        vec![
            "l1_reads",
            "l1_writes",
            "l2_reads",
            "l2_writes",
            "llc_reads",
            "llc_writes",
            "dram_row_hits",
            "dram_row_misses",
            "noc_flit_hops",
            "clip_lookups",
        ]
    );

    let timeline = doc
        .get("timeline")
        .and_then(|t| t.as_array())
        .expect("timeline array");
    assert!(!timeline.is_empty(), "timeline sampling was requested");
    assert_eq!(
        timeline[0].keys(),
        vec![
            "cycle",
            "retired",
            "dram_transfers",
            "bw_util",
            "prefetches"
        ]
    );
}

#[test]
fn json_values_survive_roundtrip() {
    let r = small_result();
    let doc = Json::parse(&r.to_json().render()).expect("parses");

    assert_eq!(
        doc.get("cycles").and_then(|v| v.as_u64()),
        Some(r.cycles),
        "u64 counters must be exact"
    );
    assert_eq!(
        doc.get("dram_transfers").and_then(|v| v.as_u64()),
        Some(r.dram_transfers)
    );
    let ipc = doc
        .get("per_core_ipc")
        .and_then(|v| v.as_array())
        .expect("ipc array");
    assert_eq!(ipc.len(), r.per_core_ipc.len());
    for (j, &x) in ipc.iter().zip(&r.per_core_ipc) {
        assert_eq!(j.as_f64(), Some(x), "floats must round-trip exactly");
    }
    // CLIP was enabled, so the report is an object, not null.
    assert!(doc.get("clip").expect("clip key").get("stats").is_some());
}

#[test]
fn clip_is_null_without_clip() {
    let cfg = SimConfig::builder()
        .cores(2)
        .dram_channels(1)
        .build()
        .expect("valid config");
    let mix = Mix::homogeneous(
        &clip_trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        2,
    );
    let opts = RunOptions {
        warmup_instrs: 100,
        sim_instrs: 500,
        ..RunOptions::default()
    };
    let r = run_mix(&cfg, &Scheme::plain(), &mix, &opts);
    let doc = Json::parse(&r.to_json().render()).expect("parses");
    assert_eq!(doc.get("clip"), Some(&Json::Null));
    assert_eq!(
        doc.get("baseline_evals").and_then(|v| v.as_array()),
        Some(&[][..])
    );
}
