//! Composite-ensemble arbitration tests: CLIP as an arbiter *between*
//! prefetch engines rather than a gate on one stream.
//!
//! Covers the three contracts the ensemble adds on top of the single-
//! engine path: (1) per-engine accuracy tracked in the utility buffer
//! measurably starves a deliberately inaccurate engine, (2) full-check
//! runs hold per-engine pf-queue conservation and surface per-engine
//! counters in the report/JSON artifact, (3) Composite results are
//! byte-identical serial vs `CLIP_THREADS=2`.

use clip_core::{Clip, ClipConfig};
use clip_prefetch::{AccessInfo, Composite, Prefetcher, COMPOSITE_ENGINES, MAX_ALLOWED_DEGREE};
use clip_sim::{run_jobs_checked, run_mix_checked, CheckLevel, RunOptions, Scheme, SweepJob};
use clip_trace::Mix;
use clip_types::{Addr, Ip, LineAddr, PrefetcherKind, SimConfig};

fn composite_cfg() -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Composite)
        .build()
        .expect("valid config")
}

fn mix() -> Mix {
    Mix::homogeneous(
        &clip_trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        4,
    )
}

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 400,
        sim_instrs: 2_000,
        seed: 11,
        timeline_interval: 1_000,
        check: Some(CheckLevel::Full),
        check_cadence: 64,
        ..RunOptions::default()
    }
}

/// The regression the tentpole exists for, end to end across the core
/// and prefetch crates: a 3-engine CLIP watches one engine issue junk
/// (its prefetches never demand-hit) while another stays accurate. The
/// windowed per-engine accuracy must demote the junk engine, and pushing
/// the resulting levels into a real [`Composite`] — exactly what the
/// tile does at each window boundary — must measurably shrink that
/// engine's share of admitted candidates without starving the others.
/// Engine 0 (Berti) plays the junk role because it proposes first and
/// so dominates the shared degree budget — the demotion has to claw
/// real bandwidth back, not trim an engine that was already starved.
#[test]
fn clip_arbitration_starves_the_deliberately_inaccurate_engine() {
    // Accuracy-only CLIP (criticality off isolates the arbitration
    // path): engine 2 is vindicated on every issue, engine 0 never is.
    let cfg = ClipConfig {
        use_criticality_stage: false,
        engines: COMPOSITE_ENGINES,
        ..ClipConfig::default()
    };
    let mut clip = Clip::new(cfg.clone());
    let mut line = 1_000u64;
    for _window in 0..3 {
        for _ in 0..40 {
            line += 1;
            let good = LineAddr::new(line);
            if clip
                .filter_prefetch_tagged(good, Ip::new(0xA00), 2)
                .allows()
            {
                clip.on_demand_access(good);
            }
            line += 1;
            let junk = LineAddr::new(line);
            let _ = clip.filter_prefetch_tagged(junk, Ip::new(0xB00), 0);
        }
        for _ in 0..cfg.exploration_window {
            clip.on_l1_miss();
        }
    }
    let levels = clip.engine_levels();
    assert_eq!(levels[2], 5, "the accurate engine keeps full aggression");
    assert!(levels[0] < 5, "the junk engine must be demoted: {levels:?}");

    // Replay the identical access stream through an unarbitrated and an
    // arbitrated ensemble; only the demoted engine's share may shrink.
    let drive = |pf: &mut Composite| {
        let mut out = Vec::new();
        for i in 0..400u64 {
            out.clear();
            pf.on_access(
                &AccessInfo {
                    ip: Ip::new(0x400),
                    addr: Addr::new(0x20_0000 + i * 64),
                    hit: false,
                    is_store: false,
                    cycle: i * 20,
                },
                &mut out,
            );
            assert!(out.len() <= MAX_ALLOWED_DEGREE);
            for c in &out {
                pf.on_fill(c.line, i * 20 + 80);
            }
        }
    };
    let mut free = Composite::new();
    drive(&mut free);
    let baseline = free.issued_per_engine();

    let mut arbitrated = Composite::new();
    arbitrated.set_engine_levels(&levels[..COMPOSITE_ENGINES]);
    drive(&mut arbitrated);
    let after = arbitrated.issued_per_engine();

    let share =
        |v: [u64; COMPOSITE_ENGINES], e: usize| v[e] as f64 / v.iter().sum::<u64>().max(1) as f64;
    assert!(
        baseline[0] > 0,
        "the junk engine must contribute unarbitrated: {baseline:?}"
    );
    assert!(
        after[0] < baseline[0] && share(after, 0) < share(baseline, 0),
        "arbitration must reduce the demoted engine's issue share: {after:?} vs {baseline:?}"
    );
    assert!(
        after[1] + after[2] >= baseline[1] + baseline[2],
        "the accurate engines must not lose budget: {after:?} vs {baseline:?}"
    );
}

/// Composite + CLIP under full checks: the per-engine pf-queue
/// conservation auditor runs at every cadence window (a violated
/// `queued == dequeued + present` balance for any engine fails the
/// run), the report aggregates per-engine issue counters across tiles,
/// and the JSON artifact carries them under the `"engines"` key —
/// single-engine reports must stay byte-identical (no key at all).
#[test]
fn full_checks_hold_per_engine_conservation_and_report_counters() {
    let r = run_mix_checked(&composite_cfg(), &Scheme::with_clip(), &mix(), &opts())
        .expect("composite run must pass full-check auditing");
    let clip = r.clip.as_ref().expect("clip report present");
    assert_eq!(clip.num_engines, COMPOSITE_ENGINES);
    let issued: u64 = clip.engines.iter().map(|e| e.issued).sum();
    assert!(issued > 0, "per-engine issue counters must accumulate");
    for e in clip.engines.iter().take(COMPOSITE_ENGINES) {
        assert!(
            (1..=5).contains(&e.min_level),
            "levels stay in band: {:?}",
            clip.engines
        );
    }
    let json = r.to_json().render();
    assert!(
        json.contains("\"engines\""),
        "the artifact must carry the per-engine counters"
    );

    // A Berti run through the same path must not grow the key.
    let berti = SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(PrefetcherKind::Berti)
        .build()
        .expect("valid config");
    let r1 = run_mix_checked(&berti, &Scheme::with_clip(), &mix(), &opts())
        .expect("single-engine run stays clean");
    assert_eq!(r1.clip.as_ref().expect("clip report").num_engines, 0);
    assert!(
        !r1.to_json().render().contains("\"engines\""),
        "single-engine artifacts must stay byte-identical"
    );
}

/// The parallel driver must return exactly what the serial loop returns
/// for the ensemble: per-engine accounting lives inside each job, so
/// thread scheduling may not leak into results or fingerprint streams.
#[test]
fn composite_is_byte_identical_serial_vs_two_threads() {
    let jobs: Vec<SweepJob> = [Scheme::plain(), Scheme::with_clip()]
        .into_iter()
        .map(|scheme| SweepJob {
            cfg: composite_cfg(),
            scheme,
            mix: mix(),
        })
        .collect();
    let serial = run_jobs_checked(&jobs, &opts());
    std::env::set_var("CLIP_THREADS", "2");
    let parallel = run_jobs_checked(&jobs, &opts());
    std::env::remove_var("CLIP_THREADS");
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (s, p) = (
            s.as_ref().expect("clean run"),
            p.as_ref().expect("clean run"),
        );
        assert_eq!(
            s.to_json().render(),
            p.to_json().render(),
            "job {i}: serialized result"
        );
        assert_eq!(
            s.fingerprints, p.fingerprints,
            "job {i}: fingerprint stream"
        );
    }
}
