//! Determinism regression tests: the simulator must be a pure function of
//! (config, scheme, mix, seed). Two kinds of drift are guarded:
//!
//! * run-to-run — accidental `HashMap` iteration-order dependence, global
//!   state, or time-based seeding would break bit-identical reruns;
//! * serial vs parallel — `run_jobs_parallel` must return exactly what
//!   the serial loop returns, independent of thread scheduling.

use clip_sim::{run_jobs_parallel, run_mix, run_mixes_parallel, RunOptions, Scheme, SweepJob};
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};

fn cfg(pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 400,
        sim_instrs: 2_000,
        seed: 11,
        timeline_interval: 1_000,
        ..RunOptions::default()
    }
}

fn mixes() -> Vec<Mix> {
    ["605.mcf_s-1554B", "619.lbm_s-4268B", "603.bwaves_s-891B"]
        .iter()
        .map(|n| Mix::homogeneous(&clip_trace::catalog::by_name(n).expect("known workload"), 4))
        .collect()
}

/// Every observable counter must match, not just IPC: a divergence in any
/// of them means nondeterminism crept into the cycle loop.
fn assert_identical(a: &clip_sim::SimResult, b: &clip_sim::SimResult, what: &str) {
    assert_eq!(a.per_core_ipc, b.per_core_ipc, "{what}: per-core IPC");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.dram_transfers, b.dram_transfers, "{what}: DRAM transfers");
    assert_eq!(a.dram_row_hits, b.dram_row_hits, "{what}: row hits");
    assert_eq!(a.noc_flit_hops, b.noc_flit_hops, "{what}: flit hops");
    assert_eq!(a.timeline, b.timeline, "{what}: timeline series");
    // The JSON rendering folds in every remaining report field (latency,
    // prefetch, misses, clip, energy) — compare it wholesale.
    assert_eq!(
        a.to_json().render(),
        b.to_json().render(),
        "{what}: full serialized result"
    );
}

#[test]
fn rerun_is_bit_identical() {
    let cfg = cfg(PrefetcherKind::Berti);
    let mix = &mixes()[0];
    let a = run_mix(&cfg, &Scheme::with_clip(), mix, &opts());
    let b = run_mix(&cfg, &Scheme::with_clip(), mix, &opts());
    assert_identical(&a, &b, "rerun");
}

#[test]
fn parallel_driver_matches_serial() {
    let cfg = cfg(PrefetcherKind::Berti);
    let mixes = mixes();
    let opts = opts();
    let serial: Vec<_> = mixes
        .iter()
        .map(|m| run_mix(&cfg, &Scheme::plain(), m, &opts))
        .collect();
    let parallel = run_mixes_parallel(&cfg, &Scheme::plain(), &mixes, &opts);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_identical(s, p, &format!("serial vs parallel, mix {i}"));
    }
}

#[test]
fn parallel_driver_keeps_job_order_with_mixed_schemes() {
    let cfg_no = cfg(PrefetcherKind::None);
    let cfg_pf = cfg(PrefetcherKind::Berti);
    let mix = &mixes()[0];
    let opts = opts();
    let jobs: Vec<SweepJob> = [
        (cfg_no.clone(), Scheme::plain()),
        (cfg_pf.clone(), Scheme::plain()),
        (cfg_pf.clone(), Scheme::with_clip()),
    ]
    .into_iter()
    .map(|(cfg, scheme)| SweepJob {
        cfg,
        scheme,
        mix: mix.clone(),
    })
    .collect();
    let results = run_jobs_parallel(&jobs, &opts);
    let serial: Vec<_> = jobs
        .iter()
        .map(|j| run_mix(&j.cfg, &j.scheme, &j.mix, &opts))
        .collect();
    for (i, (s, p)) in serial.iter().zip(&results).enumerate() {
        assert_identical(s, p, &format!("job {i}"));
    }
    // Sanity: the three jobs are genuinely different runs.
    assert!(results[1].prefetch.issued > 0);
    assert!(results[2].prefetch.issued < results[1].prefetch.issued);
}
