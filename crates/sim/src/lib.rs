//! Cycle-level many-core simulator for the CLIP reproduction.
//!
//! Assembles the substrates of this workspace — out-of-order cores
//! (`clip-cpu`), caches and MSHRs (`clip-cache`), the wormhole mesh
//! (`clip-noc`), DDR4 channels (`clip-dram`), prefetchers
//! (`clip-prefetch`), CLIP itself (`clip-core`), and the comparison
//! mechanisms (`clip-crit`, `clip-throttle`, `clip-offchip`) — into the
//! 64-core baseline platform of Table 3, and drives whole workload mixes
//! through it.
//!
//! # Examples
//!
//! ```
//! use clip_sim::{run_mix, RunOptions, Scheme};
//! use clip_trace::Mix;
//! use clip_types::{PrefetcherKind, SimConfig};
//!
//! let cfg = SimConfig::builder()
//!     .cores(2)
//!     .dram_channels(1)
//!     .l1_prefetcher(PrefetcherKind::NextLine)
//!     .build()
//!     .expect("valid config");
//! let spec = &clip_trace::catalog::spec_cpu2017()[0];
//! let mix = Mix::homogeneous(spec, 2);
//! let opts = RunOptions { warmup_instrs: 200, sim_instrs: 1000, ..RunOptions::default() };
//! let result = run_mix(&cfg, &Scheme::plain(), &mix, &opts);
//! assert!(result.mean_ipc() > 0.0);
//! ```

mod engine;
pub mod fault;
pub mod fingerprint;
mod integrity;
mod llc;
mod ports;
pub mod report;
pub mod result;
pub mod scheme;
mod snapshot;
pub mod system;
mod tile;

pub use clip_types::{CheckLevel, SimError, SimErrorKind};
pub use engine::NocChoice;
pub use fault::{FaultKind, FaultSpec};
pub use fingerprint::{run_jobs_localized, WindowFingerprint};
pub use report::ComparisonReport;
pub use result::{ClipReport, LatencyReport, MissReport, PrefetchReport, SimResult, TimelinePoint};
pub use scheme::Scheme;
pub use system::System;

use clip_trace::Mix;
use clip_types::{knob, Cycle, SimConfig};
use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// Per-thread override of the tick-scheduling mode (see
    /// [`set_step_override`]).
    static STEP_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Forces (`Some(true)`) or suppresses (`Some(false)`) cycle-by-cycle
/// ticking on the current thread, overriding the `CLIP_TICK` environment
/// variable; `None` restores the environment-driven default.
///
/// The event-wheel scheduler skips quiescent cycle spans by default and
/// is bit-for-bit identical to cycle-by-cycle execution; `CLIP_TICK=step`
/// (or this override) forces the legacy every-cycle loop — the reference
/// behaviour the skip-ahead determinism suite compares against. The mode
/// is deliberately *not* a [`RunOptions`] field: options participate in
/// sweep cache keys, and a scheduling strategy that cannot change results
/// must not fragment them.
pub fn set_step_override(v: Option<bool>) {
    STEP_OVERRIDE.with(|s| s.set(v));
}

/// Resolves the tick mode for this thread: override first, then
/// `CLIP_TICK` (`step` = cycle-by-cycle; `wheel` or unset = event
/// wheel; anything else warns once and falls back to the wheel).
pub(crate) fn step_mode() -> bool {
    if let Some(v) = STEP_OVERRIDE.with(|s| s.get()) {
        return v;
    }
    knob::env_choice("CLIP_TICK", &["step", "wheel"]) == Some("step")
}

/// Options controlling one simulation run.
#[derive(Clone)]
pub struct RunOptions {
    /// Instructions per core to warm caches/predictors before measuring.
    pub warmup_instrs: u64,
    /// Instructions per core in the measured window.
    pub sim_instrs: u64,
    /// Workload-generation seed.
    pub seed: u64,
    /// NoC implementation.
    pub noc: NocChoice,
    /// Hard cycle bound (guards pathological configurations). `0` picks a
    /// generous default based on the instruction counts.
    pub max_cycles: Cycle,
    /// When non-zero, sample a [`TimelinePoint`] every this many cycles
    /// during the measurement phase.
    pub timeline_interval: Cycle,
    /// Integrity check level. `None` (the default) reads `CLIP_CHECK` at
    /// run time — keeping the `Debug` form (and thus sweep cache keys)
    /// identical across environments.
    pub check: Option<CheckLevel>,
    /// Audit cadence in cycles (`0` picks the default, 2048).
    pub check_cadence: Cycle,
    /// Forward-progress watchdog window in cycles (`0` picks the
    /// default, 50 000).
    pub watchdog_window: Cycle,
    /// Deterministic fault to inject, if any (see [`fault`]).
    pub fault: Option<FaultSpec>,
    /// Wall-clock budget for this run. `None` (the default) reads
    /// `CLIP_JOB_DEADLINE_MS` at run time (unset there too = no
    /// deadline). The budget is checked cooperatively at audit-cadence
    /// boundaries; exceeding it surfaces [`SimErrorKind::Timeout`].
    /// Like `check`, this field is excluded from the `Debug` form so
    /// sweep cache keys never depend on how patient the host was.
    pub deadline: Option<Duration>,
}

/// `RunOptions`' `Debug` form doubles as the sweep cache / fingerprint /
/// journal key (see `clip-bench`'s `job_key`), so it must stay byte-stable
/// as execution-policy fields are added. This hand-written impl emits
/// exactly what `#[derive(Debug)]` produced before `deadline` existed;
/// result-affecting fields added later must be appended here too.
impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("warmup_instrs", &self.warmup_instrs)
            .field("sim_instrs", &self.sim_instrs)
            .field("seed", &self.seed)
            .field("noc", &self.noc)
            .field("max_cycles", &self.max_cycles)
            .field("timeline_interval", &self.timeline_interval)
            .field("check", &self.check)
            .field("check_cadence", &self.check_cadence)
            .field("watchdog_window", &self.watchdog_window)
            .field("fault", &self.fault)
            .finish()
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            warmup_instrs: 2_000,
            sim_instrs: 10_000,
            seed: 42,
            noc: NocChoice::Mesh,
            max_cycles: 0,
            timeline_interval: 0,
            check: None,
            check_cadence: 0,
            watchdog_window: 0,
            fault: None,
            deadline: None,
        }
    }
}

impl RunOptions {
    fn resolved_max_cycles(&self) -> Cycle {
        if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // IPC floors around 0.01 in the worst bandwidth-starved mixes.
            200_000 + (self.warmup_instrs + self.sim_instrs) * 150
        }
    }

    /// The effective per-job wall-clock budget: the explicit field, else
    /// `CLIP_JOB_DEADLINE_MS` (validated, warn-once; `0` is legal and
    /// times out at the first cadence boundary — the forced-timeout knob
    /// the determinism tests use). `None` = unlimited.
    fn resolved_deadline(&self) -> Option<Duration> {
        self.deadline.or_else(|| {
            knob::env_u64("CLIP_JOB_DEADLINE_MS", 0, 86_400_000).map(Duration::from_millis)
        })
    }
}

/// The process-wide sweep epoch: the instant resilience bookkeeping first
/// ran. `CLIP_SWEEP_BUDGET_MS` counts from here.
fn sweep_epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// True when the whole-sweep wall-clock budget (`CLIP_SWEEP_BUDGET_MS`,
/// validated warn-once, counted from the first batch this process ran) is
/// exhausted. Executors consult this before dispatching each cell: once
/// it trips, new cells are cancelled ([`SimErrorKind::Cancelled`]) while
/// in-flight cells drain normally — graceful degradation, not abort.
/// Always `false` when the knob is unset; `0` cancels every dispatch
/// (the deterministic "resume everything" setting).
pub fn sweep_budget_exhausted() -> bool {
    match knob::env_u64("CLIP_SWEEP_BUDGET_MS", 0, 86_400_000) {
        None => false,
        Some(ms) => sweep_epoch().elapsed() >= Duration::from_millis(ms),
    }
}

/// Simulates one mix under one scheme and returns the result.
///
/// # Panics
///
/// Panics when the configuration is invalid, the mix does not match the
/// configured core count, or an integrity auditor fires (use
/// [`run_mix_checked`] to surface that as an error instead).
pub fn run_mix(cfg: &SimConfig, scheme: &Scheme, mix: &Mix, opts: &RunOptions) -> SimResult {
    run_mix_checked(cfg, scheme, mix, opts)
        .unwrap_or_else(|e| panic!("simulation integrity failure: {e}"))
}

/// Simulates one mix under one scheme, surfacing integrity failures.
///
/// # Errors
///
/// Returns a [`SimError`] when the forward-progress watchdog or a
/// conservation auditor fires — always, when `opts.fault` is armed and
/// checks are enabled. Completed runs are bit-identical across check
/// levels (audits are read-only).
///
/// # Panics
///
/// Panics when the configuration is invalid or the mix does not match the
/// configured core count (construction errors, not run-time failures).
pub fn run_mix_checked(
    cfg: &SimConfig,
    scheme: &Scheme,
    mix: &Mix,
    opts: &RunOptions,
) -> Result<SimResult, SimError> {
    let mut sys = System::new(cfg, scheme, mix, opts.seed, opts.noc);
    sys.set_timeline_interval(opts.timeline_interval);
    sys.set_integrity(
        opts.check.unwrap_or_else(CheckLevel::from_env),
        opts.check_cadence,
        opts.watchdog_window,
    );
    sys.set_deadline(opts.resolved_deadline());
    if let Some(spec) = opts.fault {
        sys.set_fault(spec, opts.seed);
    }
    let mut r = sys.run_checked(
        opts.warmup_instrs,
        opts.sim_instrs,
        opts.resolved_max_cycles(),
    )?;
    r.label = format!("{}/{}", scheme.label(cfg.l1_prefetcher_label()), mix.name);
    Ok(r)
}

/// One unit of sweep work: a (config, scheme, mix) triple to simulate.
#[derive(Clone)]
pub struct SweepJob {
    pub cfg: SimConfig,
    pub scheme: Scheme,
    pub mix: Mix,
}

/// Resolves the worker thread count for a batch of `job_count` jobs.
///
/// `CLIP_THREADS` accepts integers in `1..=1024` (`1` forces the serial
/// path). `0`, out-of-range, or unparsable values are rejected with a
/// single stderr warning and the default — the host's available
/// parallelism — is used instead.
fn thread_count(job_count: usize) -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = knob::env_u64("CLIP_THREADS", 1, 1024)
        .map(|n| n as usize)
        .unwrap_or(default);
    threads.min(job_count)
}

/// Runs a batch of independent jobs across threads, returning each job's
/// outcome in job order — panic- and error-isolated.
///
/// Each simulation is single-threaded and fully deterministic, so the
/// output is bit-identical to mapping [`run_mix_checked`] over the jobs
/// serially — threads only change wall-clock time, never results. Work is
/// handed out through a shared atomic index (jobs vary wildly in cost, so
/// static partitioning would leave threads idle), and each outcome lands
/// in its job's dedicated slot.
///
/// A job that fails an integrity check yields its [`SimError`]; a job
/// that panics is caught per-thread and yields a
/// [`SimErrorKind::Panic`] error carrying the payload. Either way, every
/// other job's result is unaffected. Thread count is resolved as
/// documented on `CLIP_THREADS` (see the crate docs): host parallelism by
/// default, overridable within `1..=1024`.
pub fn run_jobs_checked(jobs: &[SweepJob], opts: &RunOptions) -> Vec<Result<SimResult, SimError>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if jobs.is_empty() {
        return Vec::new();
    }
    // Pin the sweep epoch no later than the first batch so the budget
    // counts execution time, not process startup.
    let _ = sweep_epoch();
    let run_one = |j: &SweepJob| -> Result<SimResult, SimError> {
        if sweep_budget_exhausted() {
            return Err(SimError::new(
                0,
                "driver",
                SimErrorKind::Cancelled,
                "sweep wall-clock budget (CLIP_SWEEP_BUDGET_MS) exhausted \
                 before dispatch; cell left pending for a resumed sweep",
            ));
        }
        catch_unwind(AssertUnwindSafe(|| {
            run_mix_checked(&j.cfg, &j.scheme, &j.mix, opts)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SimError::new(0, "job", SimErrorKind::Panic, msg))
        })
    };

    let threads = thread_count(jobs.len());
    if threads <= 1 {
        return jobs.iter().map(run_one).collect();
    }

    // Thread-locals do not propagate into spawned workers: resolve the
    // tick mode here and pin it in each worker so a per-thread override
    // (the determinism suite) behaves identically serial and parallel.
    let step = step_mode();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SimResult, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                set_step_override(Some(step));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    // A poisoned slot is recoverable: the panic that
                    // poisoned it was already converted into this job's
                    // outcome.
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(run_one(&jobs[i]));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| {
                    Err(SimError::new(
                        0,
                        "driver",
                        SimErrorKind::Internal,
                        "a claimed job never filled its result slot",
                    ))
                })
        })
        .collect()
}

/// Runs a batch of independent jobs across threads and returns their
/// results in job order, panicking on the first failed job.
///
/// See [`run_jobs_checked`] for the isolation-preserving variant and the
/// `CLIP_THREADS` contract.
///
/// # Panics
///
/// Panics when any job fails an integrity check or panics itself.
pub fn run_jobs_parallel(jobs: &[SweepJob], opts: &RunOptions) -> Vec<SimResult> {
    run_jobs_checked(jobs, opts)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("simulation integrity failure: {e}")))
        .collect()
}

/// Runs one scheme over many mixes in parallel; results follow mix order.
///
/// Identical output to a serial `mixes.iter().map(|m| run_mix(..))` loop
/// (see [`run_jobs_parallel`]).
pub fn run_mixes_parallel(
    cfg: &SimConfig,
    scheme: &Scheme,
    mixes: &[Mix],
    opts: &RunOptions,
) -> Vec<SimResult> {
    let jobs: Vec<SweepJob> = mixes
        .iter()
        .map(|mix| SweepJob {
            cfg: cfg.clone(),
            scheme: scheme.clone(),
            mix: mix.clone(),
        })
        .collect();
    run_jobs_parallel(&jobs, opts)
}

/// Convenience: label helper picking the active prefetcher.
trait PrefetcherLabel {
    fn l1_prefetcher_label(&self) -> clip_types::PrefetcherKind;
}

impl PrefetcherLabel for SimConfig {
    fn l1_prefetcher_label(&self) -> clip_types::PrefetcherKind {
        if self.l1_prefetcher != clip_types::PrefetcherKind::None {
            self.l1_prefetcher
        } else {
            self.l2_prefetcher
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clip_trace::{catalog, Mix};
    use clip_types::PrefetcherKind;

    fn small_cfg(pf: PrefetcherKind, channels: usize) -> SimConfig {
        SimConfig::builder()
            .cores(4)
            .dram_channels(channels)
            .l1_prefetcher(pf)
            .build()
            .expect("valid config")
    }

    fn mix_of(name: &str, cores: usize) -> Mix {
        Mix::homogeneous(&catalog::by_name(name).expect("known workload"), cores)
    }

    fn quick() -> RunOptions {
        RunOptions {
            warmup_instrs: 500,
            sim_instrs: 3_000,
            seed: 7,
            ..RunOptions::default()
        }
    }

    #[test]
    fn nopf_run_completes_with_sane_ipc() {
        let cfg = small_cfg(PrefetcherKind::None, 2);
        let mix = mix_of("605.mcf_s-1554B", 4);
        let r = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        assert_eq!(r.per_core_ipc.len(), 4);
        for &ipc in &r.per_core_ipc {
            assert!(ipc > 0.001 && ipc <= 4.0, "ipc={ipc}");
        }
        assert!(r.misses.l1_misses > 0, "mcf must miss");
        assert!(r.dram_transfers > 0, "mcf must reach DRAM");
    }

    #[test]
    fn berti_reduces_misses_on_streaming_workload() {
        let cfg_no = small_cfg(PrefetcherKind::None, 4);
        let cfg_pf = small_cfg(PrefetcherKind::Berti, 4);
        let mix = mix_of("619.lbm_s-4268B", 4);
        let base = run_mix(&cfg_no, &Scheme::plain(), &mix, &quick());
        let pf = run_mix(&cfg_pf, &Scheme::plain(), &mix, &quick());
        assert!(pf.prefetch.issued > 0, "Berti must issue prefetches");
        assert!(
            pf.prefetch.useful > 0,
            "stream prefetches must be useful: {:?}",
            pf.prefetch
        );
        // Miss coverage: prefetching removes L1 demand misses.
        assert!(
            pf.misses.l1_misses < base.misses.l1_misses,
            "prefetch: {} vs base: {}",
            pf.misses.l1_misses,
            base.misses.l1_misses
        );
    }

    #[test]
    fn clip_reduces_prefetch_traffic() {
        let cfg = small_cfg(PrefetcherKind::Berti, 1);
        let mix = mix_of("605.mcf_s-1554B", 4);
        let plain = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        let clip = run_mix(&cfg, &Scheme::with_clip(), &mix, &quick());
        assert!(
            clip.prefetch.issued < plain.prefetch.issued,
            "CLIP must drop prefetches: {} vs {}",
            clip.prefetch.issued,
            plain.prefetch.issued
        );
        let report = clip.clip.expect("clip report present");
        assert!(report.stats.candidates > 0);
    }

    #[test]
    fn latencies_grow_when_bandwidth_shrinks() {
        let mix = mix_of("619.lbm_s-2676B", 4);
        let wide = run_mix(
            &small_cfg(PrefetcherKind::None, 8),
            &Scheme::plain(),
            &mix,
            &quick(),
        );
        let narrow = run_mix(
            &small_cfg(PrefetcherKind::None, 1),
            &Scheme::plain(),
            &mix,
            &quick(),
        );
        assert!(
            narrow.latency.by_dram.avg() > wide.latency.by_dram.avg(),
            "narrow {} vs wide {}",
            narrow.latency.by_dram.avg(),
            wide.latency.by_dram.avg()
        );
    }

    #[test]
    fn baseline_evaluators_produce_counts() {
        let cfg = small_cfg(PrefetcherKind::None, 2);
        let mix = mix_of("605.mcf_s-1536B", 4);
        let scheme = Scheme {
            evaluate_baselines: true,
            ..Scheme::plain()
        };
        let r = run_mix(&cfg, &scheme, &mix, &quick());
        assert_eq!(r.baseline_evals.len(), 6);
        assert!(r.baseline_evals.iter().any(|(_, c)| c.total() > 0));
    }

    #[test]
    fn analytic_noc_agrees_qualitatively() {
        let cfg = small_cfg(PrefetcherKind::None, 2);
        let mix = mix_of("603.bwaves_s-891B", 4);
        let mesh = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        let opts = RunOptions {
            noc: NocChoice::Analytic,
            ..quick()
        };
        let ana = run_mix(&cfg, &Scheme::plain(), &mix, &opts);
        let ratio = mesh.mean_ipc() / ana.mean_ipc();
        assert!(
            (0.4..=2.5).contains(&ratio),
            "NoC models should agree within ~2x: mesh={} ana={}",
            mesh.mean_ipc(),
            ana.mean_ipc()
        );
    }

    #[test]
    fn hermes_trains_and_runs() {
        let cfg = small_cfg(PrefetcherKind::Berti, 2);
        let mix = mix_of("605.mcf_s-472B", 4);
        let r = run_mix(&cfg, &Scheme::with_hermes(), &mix, &quick());
        assert!(r.mean_ipc() > 0.0);
    }

    #[test]
    fn hermes_with_prefetcher_never_wedges() {
        // Regression: Hermes probe ids used to be derived from transaction
        // slots; slot recycling (probes orphaned by L2 hits under a
        // prefetcher) shifted stale completions onto later transactions
        // until one waited forever, wedging the whole system. The
        // streaming workload + Berti + analytic NoC combination below
        // reproduced it reliably.
        let cfg = SimConfig::builder()
            .cores(8)
            .dram_channels(2)
            .l1_prefetcher(PrefetcherKind::Berti)
            .build()
            .expect("valid config");
        let mix = mix_of("619.lbm_s-3766B", 8);
        let opts = RunOptions {
            warmup_instrs: 800,
            sim_instrs: 2_000,
            seed: 42,
            noc: NocChoice::Analytic,
            ..RunOptions::default()
        };
        let r = run_mix(&cfg, &Scheme::with_hermes(), &mix, &opts);
        assert!(
            r.mean_ipc() > 0.005,
            "system wedged under Hermes probes: IPC {}",
            r.mean_ipc()
        );
        assert!(r.dram_transfers > 0, "no forward progress in measurement");
    }

    #[test]
    fn throttler_scheme_runs() {
        let cfg = small_cfg(PrefetcherKind::IpStride, 1);
        let mix = mix_of("619.lbm_s-2677B", 4);
        let r = run_mix(
            &cfg,
            &Scheme::with_throttler(clip_throttle::ThrottlerKind::Fdp),
            &mix,
            &quick(),
        );
        assert!(r.mean_ipc() > 0.0);
    }

    #[test]
    fn l2_prefetcher_path_works() {
        let cfg = SimConfig::builder()
            .cores(4)
            .dram_channels(2)
            .l2_prefetcher(PrefetcherKind::SppPpf)
            .build()
            .expect("valid config");
        let mix = mix_of("603.bwaves_s-1740B", 4);
        let r = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        assert!(r.prefetch.issued > 0, "SPP-PPF at L2 must prefetch");
    }

    #[test]
    fn timeline_sampling_produces_series() {
        let cfg = small_cfg(PrefetcherKind::Berti, 2);
        let mix = mix_of("619.lbm_s-2676B", 4);
        let opts = RunOptions {
            timeline_interval: 2_000,
            ..quick()
        };
        let r = run_mix(&cfg, &Scheme::plain(), &mix, &opts);
        assert!(
            r.timeline.len() >= 2,
            "expected several samples, got {}",
            r.timeline.len()
        );
        let total_retired: u64 = r.timeline.iter().map(|p| p.retired).sum();
        assert!(total_retired > 0);
        for p in &r.timeline {
            assert!((0.0..=1.0).contains(&p.bw_util));
            assert!(p.ipc(2_000, 4) <= 4.0);
        }
        // Disabled by default.
        let r2 = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        assert!(r2.timeline.is_empty());
    }

    #[test]
    fn page_mode_clip_gates_l2_prefetcher() {
        // §4.2: when the L2 prefetcher has no IP information, CLIP tracks
        // accuracy per 4 KiB page. Exercise the combination end to end.
        let cfg = SimConfig::builder()
            .cores(4)
            .dram_channels(1)
            .l2_prefetcher(PrefetcherKind::SppPpf)
            .build()
            .expect("valid config");
        let scheme = Scheme {
            clip: Some(clip_core::ClipConfig {
                page_mode: true,
                ..clip_core::ClipConfig::default()
            }),
            ..Scheme::plain()
        };
        let mix = mix_of("603.bwaves_s-2609B", 4);
        let plain = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        let paged = run_mix(&cfg, &scheme, &mix, &quick());
        assert!(
            paged.prefetch.issued <= plain.prefetch.issued,
            "page-mode CLIP must filter: {} vs {}",
            paged.prefetch.issued,
            plain.prefetch.issued
        );
        assert!(paged.mean_ipc() > 0.0);
    }

    #[test]
    fn dynamic_clip_bypasses_with_ample_bandwidth() {
        // With far more bandwidth than demand, the governor should open
        // the gate and DynCLIP should issue at least as many prefetches
        // as plain CLIP.
        let cfg = SimConfig::builder()
            .cores(4)
            .dram_channels(16)
            .l1_prefetcher(PrefetcherKind::Berti)
            .build()
            .expect("valid config");
        let mix = mix_of("619.lbm_s-4268B", 4);
        let opts = quick();
        let clip = run_mix(&cfg, &Scheme::with_clip(), &mix, &opts);
        let dyn_clip = run_mix(&cfg, &Scheme::with_dynamic_clip(), &mix, &opts);
        assert!(
            dyn_clip.prefetch.issued >= clip.prefetch.issued,
            "bypassed governor must not reduce traffic below CLIP: {} vs {}",
            dyn_clip.prefetch.issued,
            clip.prefetch.issued
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg(PrefetcherKind::Berti, 2);
        let mix = mix_of("654.roms_s-523B", 4);
        let a = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        let b = run_mix(&cfg, &Scheme::plain(), &mix, &quick());
        assert_eq!(a.per_core_ipc, b.per_core_ipc);
        assert_eq!(a.dram_transfers, b.dram_transfers);
    }
}
