//! The shared LLC as a clocked component.
//!
//! [`ClockedLlc`] owns the address-interleaved LLC slices and their MSHR
//! files, mirroring [`crate::engine::ClockedNoc`] / `ClockedDram`: each
//! [`Tick::tick`] moves lookups whose slice-access latency has elapsed
//! into the `ready` channel, which the cycle loop drains into
//! [`System::llc_lookup`]. Slice state is only reachable through this
//! component's API — `tile.rs` and `system.rs` never see a `Cache` or
//! `MshrFile` of the LLC directly.

use crate::engine::{Engine, Txn, TxnKind, RETRY_DELAY};
use crate::ports::{NocPayload, TxnId};
use clip_cache::{AllocOutcome, Cache, Evicted, LookupOutcome, MshrFile};
use clip_dram::DramModel;
use clip_types::{Channel, Cycle, LineAddr, MemLevel, ReqId, SimConfig, Tick};

/// Ring horizon for pending slice lookups. Slice latency (default 20)
/// plus retry delays stay far below this.
const LLC_RING: usize = 256;

/// The LLC slices + MSHRs as a clocked component.
pub(crate) struct ClockedLlc {
    slices: Vec<Cache>,
    mshrs: Vec<MshrFile>,
    /// Lookup wheel: slot `c % LLC_RING` holds transactions whose slice
    /// access completes at cycle `c`.
    ring: Vec<Vec<TxnId>>,
    /// Lookups whose slice latency elapsed this cycle.
    pub(crate) ready: Channel<TxnId>,
    /// Lookups ever placed on the ring (conservation audit).
    scheduled: u64,
    /// Lookups ever moved off the ring into `ready` (conservation audit).
    fired: u64,
}

impl ClockedLlc {
    pub(crate) fn new(cfg: &SimConfig) -> Self {
        ClockedLlc {
            slices: (0..cfg.cores).map(|_| Cache::new(&cfg.llc_slice)).collect(),
            mshrs: (0..cfg.cores)
                .map(|_| MshrFile::new(cfg.llc_slice.mshrs))
                .collect(),
            ring: (0..LLC_RING).map(|_| Vec::new()).collect(),
            ready: Channel::new(),
            scheduled: 0,
            fired: 0,
        }
    }

    /// Schedules a slice lookup to complete `delay` cycles from `now`
    /// (at least one cycle out, like the engine's event wheel).
    pub(crate) fn schedule_lookup(&mut self, txn: TxnId, now: Cycle, delay: Cycle) {
        let at = (now + delay).max(now + 1);
        debug_assert!(at - now < LLC_RING as u64, "lookup beyond LLC ring horizon");
        self.ring[(at as usize) % LLC_RING].push(txn);
        self.scheduled += 1;
    }

    /// A slice refuses a miss when its MSHR file is full and the line can
    /// neither merge into an existing entry nor hit in the slice.
    fn blocked(&self, home: usize, line: LineAddr) -> bool {
        self.mshrs[home].is_full()
            && !self.mshrs[home].contains(line)
            && !self.slices[home].contains(line)
    }

    fn lookup(&mut self, home: usize, line: LineAddr, is_pf: bool, now: Cycle) -> LookupOutcome {
        if is_pf {
            self.slices[home].lookup_prefetch(line, now)
        } else {
            self.slices[home].lookup(line, false, now)
        }
    }

    fn mshr_alloc(
        &mut self,
        home: usize,
        line: LineAddr,
        req: ReqId,
        is_pf: bool,
        now: Cycle,
    ) -> Result<AllocOutcome, clip_cache::MshrFullError> {
        self.mshrs[home].alloc(line, req, is_pf, now)
    }

    /// Fills `line` into its home slice; returns the eviction, if any.
    pub(crate) fn fill(
        &mut self,
        home: usize,
        line: LineAddr,
        dirty: bool,
        is_pf: bool,
        now: Cycle,
    ) -> Option<Evicted> {
        self.slices[home].fill(line, dirty, is_pf, now)
    }

    pub(crate) fn mshr_complete(
        &mut self,
        home: usize,
        line: LineAddr,
    ) -> Option<clip_cache::MshrEntry> {
        self.mshrs[home].complete(line)
    }

    /// Lookups fired so far (forward-progress signature).
    pub(crate) fn fired(&self) -> u64 {
        self.fired
    }

    /// Total outstanding LLC MSHR entries (stall diagnostics).
    pub(crate) fn mshr_occupancy(&self) -> usize {
        self.mshrs.iter().map(|m| m.len()).sum()
    }

    /// Read-only view of the slices (delta-based reporting).
    pub(crate) fn slices(&self) -> &[Cache] {
        &self.slices
    }

    /// Lookup-ring + MSHR audit: every scheduled lookup must either still
    /// sit on the ring or have fired, and every slice's MSHR file must
    /// pass its own balance check. The `ready` channel is expected to be
    /// empty between cycles (the loop drains it each tick).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub(crate) fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        let on_ring: u64 = self.ring.iter().map(|s| s.len() as u64).sum();
        if self.scheduled != self.fired + on_ring {
            return Err(format!(
                "lookup-ring occupancy broken: {} scheduled but {} fired + {} on ring (lost {})",
                self.scheduled,
                self.fired,
                on_ring,
                self.scheduled as i64 - (self.fired + on_ring) as i64
            ));
        }
        if !self.ready.is_empty() {
            return Err(format!(
                "{} ready lookups left undrained between cycles",
                self.ready.len()
            ));
        }
        for (slice, m) in self.mshrs.iter().enumerate() {
            m.audit(now, full)
                .map_err(|e| format!("slice {slice}: {e}"))?;
        }
        Ok(())
    }

    /// Folds the slices' MSHR state into a state fingerprint (each
    /// [`clip_cache::MshrFile::fingerprint`] sorts its own entries).
    pub(crate) fn fingerprint(&self, h: &mut clip_types::Fnv64) {
        h.write_u64(self.scheduled).write_u64(self.fired);
        for m in &self.mshrs {
            m.fingerprint(h);
        }
    }

    /// O(1)-balance variant of [`ClockedLlc::fingerprint`] for `cheap`
    /// check runs: ring counters + total MSHR occupancy, no per-entry
    /// state.
    pub(crate) fn fingerprint_cheap(&self, h: &mut clip_types::Fnv64) {
        h.write_u64(self.scheduled)
            .write_u64(self.fired)
            .write_usize(self.mshr_occupancy());
    }

    /// Fault injection: leaks one outstanding MSHR entry from the first
    /// occupied slice (slices scanned in index order, victim within the
    /// slice picked by `selector`). Returns false when every file is
    /// empty.
    pub(crate) fn inject_mshr_leak(&mut self, selector: u64) -> bool {
        for m in self.mshrs.iter_mut() {
            if !m.is_empty() {
                return m.leak_one(selector).is_some();
            }
        }
        false
    }
}

impl Tick for ClockedLlc {
    fn tick(&mut self, now: Cycle) {
        for txn in std::mem::take(&mut self.ring[(now as usize) % LLC_RING]) {
            self.ready.push(txn);
            self.fired += 1;
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.ready.is_empty() {
            return Some(now);
        }
        if self.scheduled == self.fired {
            return None; // nothing on the lookup ring
        }
        // Ring occupancy is tiny (LLC_RING slots): scan forward from `now`
        // for the first occupied slot. Every pending lookup is within one
        // ring revolution (enforced at schedule time), so the first
        // occupied slot is the earliest due cycle.
        (0..LLC_RING as u64)
            .find(|k| !self.ring[((now + k) as usize) % LLC_RING].is_empty())
            .map(|k| now + k)
    }
}

// ----------------------------------------------------------------------
// Slice-side message flow (engine-owned: these paths never touch a tile).
// ----------------------------------------------------------------------

impl Engine {
    /// A slice lookup whose access latency elapsed: hit → respond to the
    /// tile; miss → allocate an MSHR and request the line from DRAM,
    /// retrying through the LLC's own wheel under MSHR back-pressure.
    pub(crate) fn llc_lookup(&mut self, txn: TxnId, now: Cycle) {
        let tx: Txn = self.txns[txn as usize];
        let home = self.home_of(tx.line);
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        if self.llc.blocked(home, tx.line) {
            self.llc.schedule_lookup(txn, now, RETRY_DELAY);
            return;
        }

        match self.llc.lookup(home, tx.line, is_pf, now) {
            LookupOutcome::Hit { .. } => {
                self.txns[txn as usize].level = MemLevel::Llc;
                let prio = self.txn_priority(txn);
                self.send_msg(
                    home,
                    tx.tile as usize,
                    self.params.data_packet_flits,
                    prio,
                    NocPayload::DataTile(txn),
                );
            }
            LookupOutcome::Miss => {
                match self
                    .llc
                    .mshr_alloc(home, tx.line, ReqId(txn as u64), is_pf, now)
                {
                    Ok(AllocOutcome::New) => {
                        let channel = self.dram.mem.channel_for(tx.line);
                        let mc = self.mc_node(channel);
                        let prio = self.txn_priority(txn);
                        self.send_msg(
                            home,
                            mc,
                            self.params.addr_packet_flits,
                            prio,
                            NocPayload::ReqMc(txn),
                        );
                    }
                    Ok(AllocOutcome::Merged { .. }) => {}
                    Err(_) => self.llc.schedule_lookup(txn, now, RETRY_DELAY),
                }
            }
        }
    }

    /// An L2 victim arrived at its home slice (`WbLlc`).
    pub(crate) fn llc_writeback(&mut self, node: usize, line: LineAddr, now: Cycle) {
        let home = self.home_of(line);
        debug_assert_eq!(home, node);
        if let Some(ev) = self.llc.fill(home, line, true, false, now) {
            if ev.dirty {
                self.writeback_to_dram(home, ev.line);
            }
        }
    }

    /// DRAM data arrived at the LLC home: fill the slice, complete the LLC
    /// MSHR, and forward data packets to the requesting tile(s).
    pub(crate) fn llc_fill_and_forward(&mut self, txn: TxnId, now: Cycle) {
        let tx: Txn = self.txns[txn as usize];
        let home = self.home_of(tx.line);
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });
        if let Some(ev) = self.llc.fill(home, tx.line, false, is_pf, now) {
            if ev.dirty {
                self.writeback_to_dram(home, ev.line);
            }
        }
        let mut to_send = vec![txn];
        if let Some(entry) = self.llc.mshr_complete(home, tx.line) {
            for w in entry.waiters {
                let wt = w.0 as TxnId;
                if wt != txn && self.txns[wt as usize].live {
                    self.txns[wt as usize].level = tx.level;
                    to_send.push(wt);
                }
            }
            // `entry.primary` is this txn (or the first merged one).
            let p = entry.primary.0 as TxnId;
            if p != txn && self.txns[p as usize].live {
                self.txns[p as usize].level = tx.level;
                to_send.push(p);
            }
        }
        to_send.sort_unstable();
        to_send.dedup();
        for t in to_send {
            let dst = self.txns[t as usize].tile as usize;
            let prio = self.txn_priority(t);
            self.send_msg(
                home,
                dst,
                self.params.data_packet_flits,
                prio,
                NocPayload::DataTile(t),
            );
        }
    }
}
