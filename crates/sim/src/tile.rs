//! One core's tile: core + private L1D/L2 + prefetchers + optional
//! CLIP / throttler / gates, plus every simulator path that starts or
//! ends at a tile (demand issue, prefetch gating and issue, L2 lookup,
//! data return, core completion fan-out).
//!
//! Tile-side methods live as `impl System` blocks so they can borrow one
//! tile and the shared [`crate::engine::Engine`] through disjoint
//! `System` fields. The core is driven through the [`Tick`] contract via
//! [`TileTick`], with [`TilePort`] implementing the CPU's
//! [`MemIssuePort`] against the memory hierarchy.

use crate::engine::{Ev, ProbeState, Txn, TxnKind, PROBE_BIT, RETRY_DELAY};
use crate::ports::TxnId;
use crate::result::LatencyReport;
use crate::system::System;
use clip_cache::{Cache, LookupOutcome, MshrFile};
use clip_core::{Decision, DynamicClip};
use clip_cpu::{Core, MemIssuePort};
use clip_crit::{CriticalityPredictor, EvalCounts, PredictorEvaluator};
use clip_dram::DramModel;
use clip_offchip::{DsPatch, Hermes};
use clip_prefetch::{AccessInfo, PrefetchCandidate, Prefetcher};
use clip_throttle::Throttler;
use clip_trace::{InstrKind, TraceGenerator};
use clip_types::{Addr, Cycle, Ip, LineAddr, MemLevel, Port, Priority, ReqId, Tick};
use std::collections::HashMap;

use crate::ports::NocPayload;

pub(crate) const PF_QUEUE_CAP: usize = 32;
const PF_ISSUE_PER_CYCLE: usize = 2;
/// L2 MSHR entries kept free for demand misses; prefetches beyond this
/// occupancy are dropped.
const L2_MSHR_PF_RESERVE: usize = 8;

#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedPrefetch {
    pub line: LineAddr,
    pub trigger_ip: Ip,
    pub fill_l1: bool,
    /// True when the candidate came from the L1-trained prefetcher.
    pub from_l1: bool,
    /// Originating engine inside a composite ensemble (0 for every
    /// single-engine prefetcher); audited per engine, carried through the
    /// transaction so CLIP's per-engine accounting follows the prefetch.
    pub engine: u8,
}

/// Everything private to one core's tile.
pub(crate) struct Tile {
    pub core: Option<Core>,
    pub gen: Option<TraceGenerator>,
    pub addr_base: u64,
    pub l1d: Cache,
    pub l1_mshr: MshrFile,
    pub l2: Cache,
    pub l2_mshr: MshrFile,
    pub l1_pf: Option<Box<dyn Prefetcher>>,
    pub l2_pf: Option<Box<dyn Prefetcher>>,
    pub clip: Option<DynamicClip>,
    /// True when CLIP is attached at the L1 (Berti/IPCP); false for the
    /// L2 attachment (Bingo/SPP-PPF).
    pub clip_at_l1: bool,
    pub clip_eval: EvalCounts,
    /// Observed criticality per IP: (head-stall count, non-critical
    /// completions, predicted-critical at least once). Drives Figure 15's
    /// static/dynamic split and the Figure 13/14 IP-set metrics.
    pub ip_behavior: HashMap<u64, (u32, u32, bool)>,
    pub crit_gate: Option<Box<dyn CriticalityPredictor>>,
    pub throttler: Option<Box<dyn Throttler>>,
    pub hermes: Option<Hermes>,
    pub dspatch: Option<DsPatch>,
    pub evaluators: Vec<PredictorEvaluator>,
    pub pf_queue: Port<QueuedPrefetch>,
    pub lat: LatencyReport,
    pub pf_candidates: u64,
    pub pf_issued: u64,
    pub l1_window_accesses: u64,
    /// Cycle the current CLIP exploration window started (APC sampling).
    pub window_start: Cycle,
    // Throttler epoch snapshots.
    pub epoch_useful: u64,
    pub epoch_useless: u64,
    pub epoch_late: u64,
    // Measurement bookkeeping.
    pub warmup_retired: u64,
    pub finish_cycle: Option<Cycle>,
    /// Candidates ever pushed into `pf_queue` (audit counter).
    pub pf_queued: u64,
    /// Entries ever popped from `pf_queue` — issued, dedup-dropped, or
    /// evicted as oldest (audit counter: `pf_queued - pf_dequeued`
    /// must equal the queue occupancy).
    pub pf_dequeued: u64,
    /// Per-engine split of `pf_queued` (composite ensembles; slot 0 for
    /// single-engine prefetchers). Audited per engine.
    pub pf_queued_eng: [u64; clip_types::MAX_PF_ENGINES],
    /// Per-engine split of `pf_dequeued`.
    pub pf_dequeued_eng: [u64; clip_types::MAX_PF_ENGINES],
}

impl Tile {
    pub(crate) fn useful(&self) -> u64 {
        self.l1d.stats().useful_prefetches + self.l2.stats().useful_prefetches
    }

    pub(crate) fn useless(&self) -> u64 {
        self.l1d.stats().useless_prefetches + self.l2.stats().useless_prefetches
    }

    pub(crate) fn late(&self) -> u64 {
        self.l1_mshr.late_prefetch_merges() + self.l2_mshr.late_prefetch_merges()
    }

    /// Bounds an engine tag into the audited counter range.
    fn engine_slot(engine: u8) -> usize {
        (engine as usize).min(clip_types::MAX_PF_ENGINES - 1)
    }

    /// Pops the queue head, keeping the aggregate and per-engine balance
    /// counters in lockstep.
    pub(crate) fn dequeue_prefetch(&mut self) -> Option<QueuedPrefetch> {
        let q = self.pf_queue.pop()?;
        self.pf_dequeued += 1;
        self.pf_dequeued_eng[Self::engine_slot(q.engine)] += 1;
        Some(q)
    }

    /// Queues a gated prefetch candidate, dropping the oldest when full
    /// (newest candidates reflect the current phase best).
    fn queue_prefetch(&mut self, q: QueuedPrefetch) {
        if self.pf_queue.is_full() {
            self.dequeue_prefetch();
        }
        if self.pf_queue.try_push(q).is_ok() {
            self.pf_queued += 1;
            self.pf_queued_eng[Self::engine_slot(q.engine)] += 1;
        }
    }

    /// Audits the tile-private prefetch queue: entry conservation across
    /// queue/issue/drop, occupancy vs capacity, and (with `full`) a
    /// legality scan proving every queued line targets the simulated
    /// address space.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a human-readable string.
    pub(crate) fn audit_pf_queue(&self, full: bool) -> Result<(), String> {
        let len = self.pf_queue.len() as u64;
        if self.pf_queued - self.pf_dequeued != len {
            return Err(format!(
                "pf queue balance broken: queued={} dequeued={} but {} \
                 entries present (leaked {})",
                self.pf_queued,
                self.pf_dequeued,
                len,
                (self.pf_queued - self.pf_dequeued) as i64 - len as i64
            ));
        }
        if self.pf_queue.len() > PF_QUEUE_CAP {
            return Err(format!(
                "pf queue over capacity: {} entries in a {PF_QUEUE_CAP}-entry queue",
                self.pf_queue.len()
            ));
        }
        // Per-engine conservation: the aggregate balance must decompose
        // exactly into the engine-tagged balances (composite ensembles;
        // single-engine tiles trivially audit slot 0 only).
        for e in 0..clip_types::MAX_PF_ENGINES {
            let present = self
                .pf_queue
                .iter()
                .filter(|q| Self::engine_slot(q.engine) == e)
                .count() as u64;
            if self.pf_queued_eng[e] - self.pf_dequeued_eng[e] != present {
                return Err(format!(
                    "pf queue balance broken for engine {e}: queued={} \
                     dequeued={} but {present} entries present",
                    self.pf_queued_eng[e], self.pf_dequeued_eng[e],
                ));
            }
        }
        if self.pf_queued_eng.iter().sum::<u64>() != self.pf_queued
            || self.pf_dequeued_eng.iter().sum::<u64>() != self.pf_dequeued
        {
            return Err(format!(
                "pf queue engine split out of sync with aggregate: \
                 queued {} vs {:?}, dequeued {} vs {:?}",
                self.pf_queued, self.pf_queued_eng, self.pf_dequeued, self.pf_dequeued_eng,
            ));
        }
        if full {
            for q in self.pf_queue.iter() {
                if !line_in_address_space(q.line) {
                    return Err(format!(
                        "queued prefetch for line {:#x} points outside the \
                         simulated address space",
                        q.line.raw()
                    ));
                }
            }
        }
        Ok(())
    }

    /// The earliest cycle `>= now` at which ticking this tile does real
    /// work: a queued prefetch wants issuing, or the core's dispatch /
    /// retire side has something to do (see [`Core::next_activity`]).
    /// `None` means the tile only wakes on a load completion.
    pub(crate) fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        crate::engine::merge_activity(
            self.pf_queue.activity(now),
            self.core.as_ref().expect("core present").next_activity(now),
        )
    }

    /// Folds the tile's architectural + queue state (core, both private
    /// MSHR files, prefetch queue) into a state fingerprint.
    pub(crate) fn fingerprint(&self, h: &mut clip_types::Fnv64) {
        if let Some(core) = self.core.as_ref() {
            core.fingerprint(h);
        }
        self.l1_mshr.fingerprint(h);
        self.l2_mshr.fingerprint(h);
        h.write_usize(self.pf_queue.len());
        for q in self.pf_queue.iter() {
            h.write_u64(q.line.raw())
                .write_u64(q.trigger_ip.raw())
                .write_bool(q.fill_l1)
                .write_bool(q.from_l1)
                .write_u64(u64::from(q.engine));
        }
        h.write_u64(self.pf_candidates).write_u64(self.pf_issued);
    }

    /// O(1)-balance variant of [`Tile::fingerprint`] for `cheap` check
    /// runs: occupancy counters only, no per-entry state.
    pub(crate) fn fingerprint_cheap(&self, h: &mut clip_types::Fnv64) {
        let core = self.core.as_ref().expect("core present");
        h.write_u64(core.retired())
            .write_usize(core.rob_occupancy())
            .write_usize(core.loads_in_flight())
            .write_usize(self.l1_mshr.len())
            .write_usize(self.l2_mshr.len())
            .write_usize(self.pf_queue.len())
            .write_u64(self.pf_candidates)
            .write_u64(self.pf_issued);
    }

    /// Fault injection: corrupts the line address of the `sel % len`-th
    /// queued prefetch so it points outside the simulated address space
    /// (the queue is rebuilt in order; the balance counters stay
    /// untouched, so only the legality scan can catch this). Returns the
    /// corrupted line, or `None` when the queue is empty.
    pub(crate) fn corrupt_queued_prefetch(&mut self, sel: u64) -> Option<LineAddr> {
        let len = self.pf_queue.len();
        if len == 0 {
            return None;
        }
        let victim = (sel % len as u64) as usize;
        let mut entries: Vec<QueuedPrefetch> = Vec::with_capacity(len);
        while let Some(q) = self.pf_queue.pop() {
            entries.push(q);
        }
        // Flip a line bit beyond any address a tile can generate (line bit
        // 50 = byte bit 56, past the 2^54-byte legality bound).
        entries[victim].line = LineAddr::new(entries[victim].line.raw() ^ (1 << 50));
        let corrupted = entries[victim].line;
        for q in entries {
            self.pf_queue
                .try_push(q)
                .expect("same capacity, same count");
        }
        Some(corrupted)
    }
}

/// True when a line's byte address lies inside the simulated address
/// space: tile heaps sit at `(tile+1) << 42`, so every legitimate byte
/// address is far below 2^54 even at the maximum core count.
pub(crate) fn line_in_address_space(line: LineAddr) -> bool {
    line.byte_addr().raw() >> 54 == 0
}

/// One tile viewed as a clocked component: a [`Tick::tick`] issues the
/// tile's queued prefetches and advances its core one cycle.
pub(crate) struct TileTick<'a> {
    pub sys: &'a mut System,
    pub t: usize,
}

impl Tick for TileTick<'_> {
    fn tick(&mut self, now: Cycle) {
        self.sys.issue_prefetches(self.t, now);
        self.sys.tick_core(self.t, now);
    }
}

/// The memory hierarchy as seen by one core: loads and stores enter the
/// L1D here.
struct TilePort<'a> {
    sys: &'a mut System,
    tile: usize,
}

impl MemIssuePort for TilePort<'_> {
    fn issue_load(&mut self, ip: Ip, addr: Addr, now: Cycle) -> Option<ReqId> {
        self.sys.tile_issue_load(self.tile, ip, addr, now)
    }

    fn issue_store(&mut self, ip: Ip, addr: Addr, now: Cycle) -> bool {
        self.sys.tile_issue_store(self.tile, ip, addr, now)
    }
}

// ----------------------------------------------------------------------
// Core-side issue paths (called through `TilePort`).
// ----------------------------------------------------------------------

impl System {
    fn tile_issue_load(&mut self, t: usize, ip: Ip, addr: Addr, now: Cycle) -> Option<ReqId> {
        let line = addr.line();
        // Back-pressure check first so retried issues do not perturb
        // statistics or prefetcher training.
        {
            let tile = &self.tiles[t];
            if !tile.l1d.contains(line) && tile.l1_mshr.is_full() && !tile.l1_mshr.contains(line) {
                return None;
            }
        }
        {
            let tile = &mut self.tiles[t];
            tile.l1_window_accesses += 1;
            if tile.clip_at_l1 {
                if let Some(clip) = tile.clip.as_mut() {
                    clip.on_demand_access(line);
                }
            }
        }
        let outcome = self.tiles[t].l1d.lookup(line, false, now);
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(line, true);
                    }
                }
                let req = self.engine.fresh_req();
                self.engine.schedule(
                    now + self.cfg.l1d.latency,
                    Ev::L1Respond {
                        tile: t as u16,
                        req,
                        issue: now,
                    },
                );
                self.train_l1_prefetcher(t, ip, addr, true, false, now);
                Some(req)
            }
            LookupOutcome::Miss => {
                // Back-pressure check: merging is allowed even when full.
                if self.tiles[t].l1_mshr.is_full() && !self.tiles[t].l1_mshr.contains(line) {
                    return None;
                }
                let req = self.engine.fresh_req();
                let alloc = self.tiles[t]
                    .l1_mshr
                    .alloc(line, req, false, now)
                    .expect("room checked above");
                self.on_l1_miss_bookkeeping(t, now);
                if matches!(alloc, clip_cache::AllocOutcome::New) {
                    let txn = self.engine.alloc_txn(Txn {
                        tile: t as u16,
                        ip,
                        line,
                        kind: TxnKind::Demand,
                        issue: now,
                        level: MemLevel::L1,
                        probe: ProbeState::None,
                        probe_id: None,
                        live: true,
                    });
                    self.maybe_hermes_probe(t, txn, ip, line, now);
                    self.engine
                        .schedule(now + self.cfg.l1d.latency, Ev::L2Lookup { txn });
                }
                self.train_l1_prefetcher(t, ip, addr, false, false, now);
                Some(req)
            }
        }
    }

    fn tile_issue_store(&mut self, t: usize, ip: Ip, addr: Addr, now: Cycle) -> bool {
        let line = addr.line();
        {
            let tile = &self.tiles[t];
            if !tile.l1d.contains(line) && tile.l1_mshr.is_full() && !tile.l1_mshr.contains(line) {
                return false;
            }
        }
        self.tiles[t].l1_window_accesses += 1;
        let outcome = self.tiles[t].l1d.lookup(line, true, now);
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(line, true);
                    }
                }
                self.train_l1_prefetcher(t, ip, addr, true, true, now);
                true
            }
            LookupOutcome::Miss => {
                if self.tiles[t].l1_mshr.is_full() && !self.tiles[t].l1_mshr.contains(line) {
                    return false;
                }
                let req = self.engine.fresh_req();
                let alloc = self.tiles[t]
                    .l1_mshr
                    .alloc(line, req, false, now)
                    .expect("room checked above");
                self.on_l1_miss_bookkeeping(t, now);
                if matches!(alloc, clip_cache::AllocOutcome::New) {
                    let txn = self.engine.alloc_txn(Txn {
                        tile: t as u16,
                        ip,
                        line,
                        kind: TxnKind::Store,
                        issue: now,
                        level: MemLevel::L1,
                        probe: ProbeState::None,
                        probe_id: None,
                        live: true,
                    });
                    self.engine
                        .schedule(now + self.cfg.l1d.latency, Ev::L2Lookup { txn });
                }
                self.train_l1_prefetcher(t, ip, addr, false, true, now);
                true
            }
        }
    }

    fn on_l1_miss_bookkeeping(&mut self, t: usize, now: Cycle) {
        let tile = &mut self.tiles[t];
        if tile.clip_at_l1 {
            Self::clip_window_advance(tile, now);
        }
    }

    /// Advances CLIP's exploration window on one training-level miss; at a
    /// window boundary, feeds the APC sample of the elapsed window (the
    /// paper averages APC over the last 16 exploration windows) and, for
    /// composite ensembles, pushes the freshly recomputed per-engine
    /// arbitration levels into the attachment-level prefetcher so an
    /// inaccurate engine is starved at the source, not just at the gate.
    fn clip_window_advance(tile: &mut Tile, now: Cycle) {
        let Some(clip) = tile.clip.as_mut() else {
            return;
        };
        if clip.on_l1_miss() {
            let accesses = tile.l1_window_accesses;
            tile.l1_window_accesses = 0;
            let cycles = now.saturating_sub(tile.window_start).max(1);
            tile.window_start = now;
            clip.on_apc_sample(accesses, cycles);
            let engines = clip.num_engines();
            if engines > 0 {
                let levels = clip.engine_levels();
                let pf = if tile.clip_at_l1 {
                    tile.l1_pf.as_mut()
                } else {
                    tile.l2_pf.as_mut()
                };
                if let Some(pf) = pf {
                    pf.set_engine_levels(&levels[..engines]);
                }
            }
        }
    }

    fn maybe_hermes_probe(&mut self, t: usize, txn: TxnId, ip: Ip, line: LineAddr, now: Cycle) {
        let predicted = match self.tiles[t].hermes.as_mut() {
            Some(h) => h.predict_offchip(ip, line),
            None => return,
        };
        if !predicted {
            return;
        }
        let channel = self.engine.dram.mem.channel_for(line);
        self.engine.next_probe += 1;
        let pid = self.engine.next_probe;
        let id = ReqId(pid | PROBE_BIT);
        if self
            .engine
            .dram
            .mem
            .enqueue_read(channel, id, line, Priority::Demand, now)
            .is_ok()
        {
            self.engine.txns[txn as usize].probe = ProbeState::Pending;
            self.engine.txns[txn as usize].probe_id = Some(pid);
            self.engine.probe_map.insert(pid, txn);
        }
    }

    /// Trains the L1 prefetcher and runs its candidates through the gates.
    fn train_l1_prefetcher(
        &mut self,
        t: usize,
        ip: Ip,
        addr: Addr,
        hit: bool,
        is_store: bool,
        now: Cycle,
    ) {
        if self.tiles[t].l1_pf.is_none() {
            return;
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        {
            let tile = &mut self.tiles[t];
            let pf = tile.l1_pf.as_mut().expect("checked above");
            pf.on_access(
                &AccessInfo {
                    ip,
                    addr,
                    hit,
                    is_store,
                    cycle: now,
                },
                &mut cands,
            );
        }
        self.gate_and_queue(t, true, &mut cands);
        self.cand_scratch = cands;
    }

    pub(crate) fn train_l2_prefetcher(
        &mut self,
        t: usize,
        ip: Ip,
        line: LineAddr,
        hit: bool,
        now: Cycle,
    ) {
        if self.tiles[t].l2_pf.is_none() {
            return;
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        {
            let tile = &mut self.tiles[t];
            let pf = tile.l2_pf.as_mut().expect("checked above");
            pf.on_access(
                &AccessInfo {
                    ip,
                    addr: line.byte_addr(),
                    hit,
                    is_store: false,
                    cycle: now,
                },
                &mut cands,
            );
        }
        self.gate_and_queue(t, false, &mut cands);
        self.cand_scratch = cands;
    }

    /// Applies DSPatch, a baseline criticality gate, and CLIP to a
    /// candidate list, then queues the survivors.
    fn gate_and_queue(&mut self, t: usize, at_l1: bool, cands: &mut Vec<PrefetchCandidate>) {
        if cands.is_empty() {
            return;
        }
        self.tiles[t].pf_candidates += cands.len() as u64;
        // Dedup against caches / MSHRs / queue before gating so CLIP's
        // issue accounting reflects prefetches that can actually go out.
        {
            let tile = &mut self.tiles[t];
            let (l1d, l2, l1m, l2m, q) = (
                &tile.l1d,
                &tile.l2,
                &tile.l1_mshr,
                &tile.l2_mshr,
                &tile.pf_queue,
            );
            cands.retain(|c| {
                !l1d.contains(c.line)
                    && !l2.contains(c.line)
                    && !l1m.contains(c.line)
                    && !l2m.contains(c.line)
                    && !q.iter().any(|p| p.line == c.line)
            });
        }
        if let Some(ds) = self.tiles[t].dspatch.as_mut() {
            ds.modulate(cands);
        }
        if let Some(gate) = self.tiles[t].crit_gate.as_ref() {
            cands.retain(|c| gate.predict(c.trigger_ip, c.line.byte_addr()));
        }
        for c in cands.drain(..) {
            self.tiles[t].queue_prefetch(QueuedPrefetch {
                line: c.line,
                trigger_ip: c.trigger_ip,
                fill_l1: c.fill_l1,
                from_l1: at_l1,
                engine: c.engine,
            });
        }
    }

    /// Issues queued prefetches into the hierarchy.
    pub(crate) fn issue_prefetches(&mut self, t: usize, now: Cycle) {
        for _ in 0..PF_ISSUE_PER_CYCLE {
            let Some(&q) = self.tiles[t].pf_queue.front() else {
                return;
            };
            // Re-check dedup (state may have changed since queueing).
            {
                let tile = &self.tiles[t];
                if tile.l1d.contains(q.line)
                    || tile.l1_mshr.contains(q.line)
                    || tile.l2_mshr.contains(q.line)
                    || (!q.fill_l1 && tile.l2.contains(q.line))
                {
                    self.tiles[t].dequeue_prefetch();
                    continue;
                }
            }
            self.tiles[t].dequeue_prefetch();
            // CLIP gates at the issue point so its per-IP issue accounting
            // matches prefetches that actually enter the hierarchy.
            let clip_here = self.tiles[t].clip_at_l1 == q.from_l1;
            let mut fill_l1 = q.fill_l1;
            let mut critical = false;
            if let Some(clip) = self.tiles[t].clip.as_mut() {
                if clip_here {
                    match clip.filter_prefetch_tagged(q.line, q.trigger_ip, q.engine) {
                        Decision::AllowCritical => {
                            critical = true;
                            // CLIP fetches its survivors all the way to L1
                            // (§4.2) when attached there.
                            fill_l1 = fill_l1 || q.from_l1;
                        }
                        Decision::AllowExplore => {}
                        _ => continue,
                    }
                }
            }
            // Prefetches do not hold L1 MSHRs: the L1 fill happens
            // directly on arrival, and a concurrent demand for the same
            // line merges at the L2 MSHR (where lateness is detected).
            // Their in-flight parallelism is bounded at the L2 (with a
            // reserve for demands) — the ChampSim PQ arrangement.
            self.tiles[t].pf_issued += 1;
            let txn = self.engine.alloc_txn(Txn {
                tile: t as u16,
                ip: q.trigger_ip,
                line: q.line,
                kind: TxnKind::Prefetch {
                    fill_l1,
                    critical,
                    trigger_ip: q.trigger_ip,
                    engine: q.engine,
                },
                issue: now,
                level: MemLevel::L1,
                probe: ProbeState::None,
                probe_id: None,
                live: true,
            });
            self.engine.schedule(now + 1, Ev::L2Lookup { txn });
        }
    }

    // ------------------------------------------------------------------
    // L2 lookup and data return.
    // ------------------------------------------------------------------

    pub(crate) fn l2_lookup(&mut self, txn: TxnId, now: Cycle) {
        let tx = self.engine.txns[txn as usize];
        let t = tx.tile as usize;
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        // Back-pressure before touching the cache so retries do not skew
        // statistics.
        if (!is_pf || !self.tiles[t].l2.contains(tx.line))
            && self.tiles[t].l2_mshr.is_full()
            && !self.tiles[t].l2_mshr.contains(tx.line)
        {
            // Only a miss would need the MSHR; a hit does not. Peek
            // cheaply first.
            if !self.tiles[t].l2.contains(tx.line) {
                self.engine
                    .schedule(now + RETRY_DELAY, Ev::L2Lookup { txn });
                return;
            }
        }

        let outcome = if is_pf {
            self.tiles[t].l2.lookup_prefetch(tx.line, now)
        } else {
            self.tiles[t].l2.lookup(tx.line, false, now)
        };
        // L2-trained prefetchers observe the demand stream at the L2.
        if !is_pf {
            self.train_l2_prefetcher(t, tx.ip, tx.line, outcome.is_hit(), now);
        }
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l2_pf.as_mut() {
                        pf.on_prefetch_result(tx.line, true);
                    }
                }
                self.engine.txns[txn as usize].level = MemLevel::L2;
                self.engine
                    .schedule(now + self.cfg.l2.latency, Ev::TileData { txn });
            }
            LookupOutcome::Miss => {
                // CLIP attached at the L2 counts L2 misses as its window.
                if !self.tiles[t].clip_at_l1 {
                    if !is_pf {
                        if let Some(clip) = self.tiles[t].clip.as_mut() {
                            clip.on_demand_access(tx.line);
                        }
                    }
                    Self::clip_window_advance(&mut self.tiles[t], now);
                }
                // Prefetch admission control: keep a demand reserve at the
                // L2 MSHRs; prefetches beyond it are dropped, not stalled.
                if is_pf
                    && !self.tiles[t].l2_mshr.contains(tx.line)
                    && self.tiles[t].l2_mshr.len() + L2_MSHR_PF_RESERVE
                        >= self.tiles[t].l2_mshr.capacity()
                {
                    if let TxnKind::Prefetch {
                        trigger_ip, engine, ..
                    } = tx.kind
                    {
                        if let Some(clip) = self.tiles[t].clip.as_mut() {
                            clip.cancel_prefetch_tagged(tx.line, trigger_ip, engine);
                        }
                    }
                    self.engine.free_txn(txn);
                    return;
                }
                let alloc = self.tiles[t]
                    .l2_mshr
                    .alloc(tx.line, ReqId(txn as u64), is_pf, now);
                match alloc {
                    Ok(clip_cache::AllocOutcome::New) => {
                        let home = self.engine.home_of(tx.line);
                        let prio = self.engine.txn_priority(txn);
                        self.engine.send_msg(
                            t,
                            home,
                            self.cfg.noc.addr_packet_flits,
                            prio,
                            NocPayload::ReqLlc(txn),
                        );
                    }
                    Ok(clip_cache::AllocOutcome::Merged { .. }) => {}
                    Err(_) => {
                        self.engine
                            .schedule(now + RETRY_DELAY, Ev::L2Lookup { txn });
                    }
                }
            }
        }
    }

    /// Data arrived at the tile: fill L2/L1, complete MSHRs, respond.
    pub(crate) fn tile_data(&mut self, txn: TxnId, now: Cycle) {
        let tx = self.engine.txns[txn as usize];
        let t = tx.tile as usize;
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        let fills_l1_dest = match tx.kind {
            TxnKind::Demand | TxnKind::Store => true,
            TxnKind::Prefetch { fill_l1, .. } => fill_l1,
        };
        // Fill the L2 when data came from beyond it. A prefetch is marked
        // as such only at its destination level, so one prefetch cannot be
        // counted useful twice (once per level).
        if matches!(tx.level, MemLevel::Llc | MemLevel::Dram) {
            let mark_l2 = is_pf && !fills_l1_dest;
            let ev = self.tiles[t].l2.fill(tx.line, false, mark_l2, now);
            if let Some(e) = ev {
                if e.dirty {
                    let home = self.engine.home_of(e.line);
                    self.engine.send_msg(
                        t,
                        home,
                        self.cfg.noc.data_packet_flits,
                        Priority::Writeback,
                        NocPayload::WbLlc(e.line),
                    );
                }
                if e.was_useless_prefetch {
                    if let Some(pf) = self.tiles[t].l2_pf.as_mut() {
                        pf.on_prefetch_result(e.line, false);
                    }
                }
            }
            // Wake L2-level waiters (same-tile txns merged at the L2 MSHR).
            if let Some(entry) = self.tiles[t].l2_mshr.complete(tx.line) {
                let mut wake = entry.waiters.clone();
                wake.push(entry.primary);
                for w in wake {
                    let wt = w.0 as TxnId;
                    if wt != txn && self.engine.txns[wt as usize].live {
                        self.engine.txns[wt as usize].level = tx.level;
                        self.engine.schedule(now + 1, Ev::TileData { txn: wt });
                    }
                }
            }
        }

        let fills_l1 = fills_l1_dest;
        if fills_l1 {
            let dirty = matches!(tx.kind, TxnKind::Store);
            let ev = self.tiles[t].l1d.fill(tx.line, dirty, is_pf, now);
            if let Some(e) = ev {
                if e.was_useless_prefetch {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(e.line, false);
                    }
                }
                if e.dirty {
                    // Victim goes to the L2 (non-inclusive hierarchy).
                    let ev2 = self.tiles[t].l2.fill(e.line, true, false, now);
                    if let Some(e2) = ev2 {
                        if e2.dirty {
                            let home = self.engine.home_of(e2.line);
                            self.engine.send_msg(
                                t,
                                home,
                                self.cfg.noc.data_packet_flits,
                                Priority::Writeback,
                                NocPayload::WbLlc(e2.line),
                            );
                        }
                    }
                }
            }
            if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                pf.on_fill(tx.line, now);
            }
            if let Some(entry) = self.tiles[t].l1_mshr.complete(tx.line) {
                let mut reqs = entry.waiters.clone();
                reqs.push(entry.primary);
                for r in reqs {
                    self.respond_core(t, r, tx.level, tx.issue, now);
                }
            }
        }
        self.engine.free_txn(txn);
    }

    /// Delivers a load response to the core and fans the resulting
    /// [`clip_cpu::LoadOutcome`] out to every training consumer.
    pub(crate) fn respond_core(
        &mut self,
        t: usize,
        req: ReqId,
        level: MemLevel,
        issue: Cycle,
        now: Cycle,
    ) {
        let outcome = {
            let core = self.tiles[t].core.as_mut().expect("core present");
            core.complete_load(req, level, now)
        };
        let Some(mut o) = outcome else {
            return; // store / prefetch pseudo-request
        };
        o.latency = now.saturating_sub(issue);
        let tile = &mut self.tiles[t];
        if level.is_beyond_l1() {
            tile.lat.l1_miss.record(o.latency);
            match level {
                MemLevel::L2 => tile.lat.by_l2.record(o.latency),
                MemLevel::Llc => tile.lat.by_llc.record(o.latency),
                MemLevel::Dram => tile.lat.by_dram.record(o.latency),
                MemLevel::L1 => {}
            }
        }

        // CLIP: evaluate its criticality prediction, then train it.
        if let Some(clip) = tile.clip.as_mut() {
            // For the L2 attachment, criticality is defined on loads
            // serviced beyond the L2; remap the outcome's level so the
            // shared mechanism sees the right "miss level".
            let adapted = if tile.clip_at_l1 {
                o
            } else {
                let mut a = o;
                a.level = match o.level {
                    MemLevel::L1 | MemLevel::L2 => MemLevel::L1,
                    deeper => deeper,
                };
                a
            };
            if adapted.level.is_beyond_l1() {
                let predicted = clip.predict_critical(adapted.ip, adapted.addr.line());
                let actual = adapted.stalled_head;
                match (predicted, actual) {
                    (true, true) => tile.clip_eval.true_positive += 1,
                    (true, false) => tile.clip_eval.false_positive += 1,
                    (false, true) => tile.clip_eval.false_negative += 1,
                    (false, false) => tile.clip_eval.true_negative += 1,
                }
                let rec = tile
                    .ip_behavior
                    .entry(adapted.ip.raw())
                    .or_insert((0, 0, false));
                if actual {
                    rec.0 += 1;
                } else {
                    rec.1 += 1;
                }
                if predicted {
                    rec.2 = true;
                }
            }
            clip.on_load_complete(&adapted);
        }
        for ev in tile.evaluators.iter_mut() {
            ev.observe(&o);
        }
        if let Some(gate) = tile.crit_gate.as_mut() {
            gate.on_load_complete(&o);
        }
        if let Some(h) = tile.hermes.as_mut() {
            h.train(o.ip, o.addr.line(), level == MemLevel::Dram);
        }
    }

    pub(crate) fn tick_core(&mut self, t: usize, now: Cycle) {
        let mut core = self.tiles[t].core.take().expect("core present");
        let mut gen = self.tiles[t].gen.take().expect("generator present");
        let base = self.tiles[t].addr_base;
        let mut branches = std::mem::take(&mut self.branch_scratch);
        branches.clear();
        {
            let mut port = TilePort { sys: self, tile: t };
            let mut fetch = || {
                let mut i = gen.next_instr();
                match &mut i.kind {
                    InstrKind::Load { addr, .. } => *addr = Addr::new(addr.raw() | base),
                    InstrKind::Store { addr } => *addr = Addr::new(addr.raw() | base),
                    InstrKind::Branch { taken } => branches.push(*taken),
                    InstrKind::Alu { .. } => {}
                }
                i
            };
            core.tick(now, &mut fetch, &mut port);
        }
        if let Some(clip) = self.tiles[t].clip.as_mut() {
            for &b in &branches {
                clip.on_branch(b);
            }
        }
        self.branch_scratch = branches;
        self.tiles[t].core = Some(core);
        self.tiles[t].gen = Some(gen);
    }
}
