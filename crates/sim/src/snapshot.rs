//! Delta-based reporting: counters are snapshotted at the end of warmup
//! and the measurement-phase report is the difference. Also holds the
//! timeline sampler and the stall diagnostic dump.

use crate::result::{ClipReport, LatencyReport, MissReport, PrefetchReport, SimResult};
use crate::system::System;
use crate::tile::Tile;
use clip_crit::EvalCounts;
use clip_dram::DramModel;
use clip_noc::NocModel;
use clip_stats::energy::EnergyCounts;
use clip_types::Cycle;

/// Snapshot of counters at the end of warmup, for delta-based reporting.
#[derive(Default, Clone)]
pub(crate) struct Snapshot {
    pub(crate) lat: Vec<LatencyReport>,
    cand: Vec<u64>,
    issued: Vec<u64>,
    useful: Vec<u64>,
    useless: Vec<u64>,
    late: Vec<u64>,
    l1_acc: Vec<u64>,
    l1_miss: Vec<u64>,
    l2_acc: Vec<u64>,
    l2_miss: Vec<u64>,
    llc_acc: u64,
    llc_miss: u64,
    dram_reads: u64,
    dram_writes: u64,
    dram_row_hits: u64,
    noc_hops: u64,
    pub(crate) cycle: Cycle,
    clip_eval: Vec<EvalCounts>,
    l1_fills: Vec<u64>,
    l2_fills: Vec<u64>,
    llc_fills: u64,
}

impl System {
    /// Enables timeline sampling every `interval` cycles (0 disables).
    pub fn set_timeline_interval(&mut self, interval: Cycle) {
        self.timeline_interval = interval;
    }

    pub(crate) fn timeline_totals(&self) -> (u64, u64, u64) {
        let retired: u64 = self
            .tiles
            .iter()
            .map(|t| t.core.as_ref().expect("core present").retired())
            .sum();
        let ds = self.engine.dram.mem.total_stats();
        let pf: u64 = self.tiles.iter().map(|t| t.pf_issued).sum();
        (retired, ds.reads + ds.writes, pf)
    }

    pub(crate) fn sample_timeline(&mut self, now: Cycle) {
        let (retired, transfers, prefetches) = self.timeline_totals();
        let interval = self.timeline_interval;
        let d_transfers = transfers - self.tl_prev.1;
        let peak =
            self.cfg.dram.channels as f64 * interval as f64 / self.cfg.dram.burst_cycles as f64;
        self.timeline.push(crate::result::TimelinePoint {
            cycle: now.saturating_sub(self.tl_start),
            retired: retired - self.tl_prev.0,
            dram_transfers: d_transfers,
            bw_util: if peak > 0.0 {
                (d_transfers as f64 / peak).min(1.0)
            } else {
                0.0
            },
            prefetches: prefetches - self.tl_prev.2,
        });
        self.tl_prev = (retired, transfers, prefetches);
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        Snapshot {
            lat: self.tiles.iter().map(|t| t.lat).collect(),
            cand: self.tiles.iter().map(|t| t.pf_candidates).collect(),
            issued: self.tiles.iter().map(|t| t.pf_issued).collect(),
            useful: self.tiles.iter().map(|t| t.useful()).collect(),
            useless: self.tiles.iter().map(|t| t.useless()).collect(),
            late: self.tiles.iter().map(|t| t.late()).collect(),
            l1_acc: self
                .tiles
                .iter()
                .map(|t| t.l1d.stats().demand_accesses)
                .collect(),
            l1_miss: self
                .tiles
                .iter()
                .map(|t| t.l1d.stats().demand_misses())
                .collect(),
            l2_acc: self
                .tiles
                .iter()
                .map(|t| t.l2.stats().demand_accesses)
                .collect(),
            l2_miss: self
                .tiles
                .iter()
                .map(|t| t.l2.stats().demand_misses())
                .collect(),
            llc_acc: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().demand_accesses)
                .sum(),
            llc_miss: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().demand_misses())
                .sum(),
            dram_reads: self.engine.dram.mem.total_stats().reads,
            dram_writes: self.engine.dram.mem.total_stats().writes,
            dram_row_hits: self.engine.dram.mem.total_stats().row_hits,
            noc_hops: self.engine.noc.model.flit_hops(),
            cycle: self.engine.now(),
            clip_eval: self.tiles.iter().map(|t| t.clip_eval).collect(),
            l1_fills: self.tiles.iter().map(|t| t.l1d.stats().fills).collect(),
            l2_fills: self.tiles.iter().map(|t| t.l2.stats().fills).collect(),
            llc_fills: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().fills)
                .sum(),
        }
    }

    /// Prints a one-line stall diagnostic (enabled by `CLIP_DEBUG_STALL`).
    pub(crate) fn dump_state(&self) {
        let retired: u64 = self
            .tiles
            .iter()
            .map(|t| t.core.as_ref().expect("core present").retired())
            .sum();
        let l1m: usize = self.tiles.iter().map(|t| t.l1_mshr.len()).sum();
        let l2m: usize = self.tiles.iter().map(|t| t.l2_mshr.len()).sum();
        let llcm: usize = self.engine.llc.mshr_occupancy();
        let outbox = self.engine.outbox_backlog();
        let pfq: usize = self.tiles.iter().map(|t| t.pf_queue.len()).sum();
        let live = self.engine.live_txns();
        let rq: usize = (0..self.cfg.dram.channels)
            .map(|c| self.engine.dram.mem.read_queue_len(c))
            .sum();
        let ring = self.engine.pending_events();
        eprintln!(
            "[stall] cyc={} retired={retired} l1m={l1m} l2m={l2m} llcm={llcm} outbox={outbox} pfq={pfq} txn={live} dram_rq={rq} ring_ev={ring}",
            self.engine.now()
        );
    }

    pub(crate) fn assemble(&mut self, snap: Snapshot, measure: u64) -> SimResult {
        let end_cycle = self.engine.now();
        let elapsed = end_cycle.saturating_sub(snap.cycle).max(1);
        let per_core_ipc: Vec<f64> = self
            .tiles
            .iter()
            .map(|t| {
                match t.finish_cycle {
                    Some(f) if f > snap.cycle => measure as f64 / (f - snap.cycle) as f64,
                    _ => {
                        // Unfinished: partial progress.
                        let retired = t.core.as_ref().expect("core present").retired();
                        (retired - t.warmup_retired) as f64 / elapsed as f64
                    }
                }
            })
            .collect();

        let mut lat = LatencyReport::default();
        for (i, t) in self.tiles.iter().enumerate() {
            let mut d = t.lat;
            sub_lat(&mut d, &snap.lat[i]);
            lat.l1_miss.merge(&d.l1_miss);
            lat.by_l2.merge(&d.by_l2);
            lat.by_llc.merge(&d.by_llc);
            lat.by_dram.merge(&d.by_dram);
        }

        let sum = |f: &dyn Fn(&Tile) -> u64, s: &[u64]| -> u64 {
            self.tiles
                .iter()
                .zip(s)
                .map(|(t, &b)| f(t).saturating_sub(b))
                .sum()
        };
        let prefetch = PrefetchReport {
            candidates: sum(&|t| t.pf_candidates, &snap.cand),
            issued: sum(&|t| t.pf_issued, &snap.issued),
            useful: sum(&|t: &Tile| t.useful(), &snap.useful),
            useless: sum(&|t: &Tile| t.useless(), &snap.useless),
            late: sum(&|t: &Tile| t.late(), &snap.late),
        };
        let misses = MissReport {
            l1_accesses: sum(&|t| t.l1d.stats().demand_accesses, &snap.l1_acc),
            l1_misses: sum(&|t| t.l1d.stats().demand_misses(), &snap.l1_miss),
            l2_accesses: sum(&|t| t.l2.stats().demand_accesses, &snap.l2_acc),
            l2_misses: sum(&|t| t.l2.stats().demand_misses(), &snap.l2_miss),
            llc_accesses: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().demand_accesses)
                .sum::<u64>()
                .saturating_sub(snap.llc_acc),
            llc_misses: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().demand_misses())
                .sum::<u64>()
                .saturating_sub(snap.llc_miss),
        };

        let ds = self.engine.dram.mem.total_stats();
        let dram_transfers = (ds.reads + ds.writes) - (snap.dram_reads + snap.dram_writes);
        let dram_row_hits = ds.row_hits - snap.dram_row_hits;
        let peak_transfers =
            self.cfg.dram.channels as f64 * elapsed as f64 / self.cfg.dram.burst_cycles as f64;
        let mut max_ch = 0.0f64;
        for ch in 0..self.cfg.dram.channels {
            let s = self.engine.dram.mem.stats(ch);
            let u =
                (s.reads + s.writes) as f64 / (elapsed as f64 / self.cfg.dram.burst_cycles as f64);
            max_ch = max_ch.max(u);
        }

        let clip = if self.scheme.clip.is_some() {
            let mut eval = EvalCounts::default();
            let mut crit_ips = 0usize;
            let mut dynamic = 0usize;
            let mut with_crit = 0usize;
            for (i, t) in self.tiles.iter().enumerate() {
                let mut e = t.clip_eval;
                sub_eval(&mut e, &snap.clip_eval[i]);
                eval.true_positive += e.true_positive;
                eval.false_positive += e.false_positive;
                eval.false_negative += e.false_negative;
                eval.true_negative += e.true_negative;
                crit_ips += t.clip.as_ref().expect("clip present").critical_ip_count();
                for &(stalls, nonstalls, _) in t.ip_behavior.values() {
                    if stalls > 0 {
                        with_crit += 1;
                        if nonstalls > 0 {
                            dynamic += 1;
                        }
                    }
                }
            }
            let n = self.tiles.len() as f64;
            let dyn_frac = if with_crit == 0 {
                0.0
            } else {
                dynamic as f64 / with_crit as f64
            };
            // IP-set granularity (Figure 13/14): predicted vs actual
            // critical IP sets.
            let mut ip_eval = EvalCounts::default();
            for t in &self.tiles {
                for &(stalls, _, predicted) in t.ip_behavior.values() {
                    let actually = stalls >= clip_crit::evaluate::IP_CRITICAL_STALLS;
                    match (predicted, actually) {
                        (true, true) => ip_eval.true_positive += 1,
                        (true, false) => ip_eval.false_positive += 1,
                        (false, true) => ip_eval.false_negative += 1,
                        (false, false) => ip_eval.true_negative += 1,
                    }
                }
            }
            Some(ClipReport {
                stats: {
                    let mut s = clip_core::ClipStats::default();
                    for t in &self.tiles {
                        let cs = t.clip.as_ref().expect("clip present").stats();
                        s.candidates += cs.candidates;
                        s.allowed_critical += cs.allowed_critical;
                        s.allowed_explore += cs.allowed_explore;
                        s.dropped_not_critical += cs.dropped_not_critical;
                        s.dropped_predicted += cs.dropped_predicted;
                        s.dropped_low_accuracy += cs.dropped_low_accuracy;
                        s.dropped_phase += cs.dropped_phase;
                        s.phase_changes += cs.phase_changes;
                        s.windows += cs.windows;
                    }
                    s
                },
                eval,
                ip_eval,
                critical_ips: crit_ips as f64 / n,
                dynamic_ips: crit_ips as f64 * dyn_frac / n,
                engines: {
                    let mut engines =
                        [crate::result::ClipEngineReport::default(); clip_types::MAX_PF_ENGINES];
                    for t in &self.tiles {
                        let clip = t.clip.as_ref().expect("clip present");
                        if clip.num_engines() == 0 {
                            continue;
                        }
                        for (slot, s) in engines.iter_mut().zip(clip.engine_stats()) {
                            slot.issued += s.issued;
                            slot.hits += s.hits;
                            slot.min_level = if slot.min_level == 0 {
                                s.level
                            } else {
                                slot.min_level.min(s.level)
                            };
                        }
                    }
                    engines
                },
                num_engines: self
                    .tiles
                    .first()
                    .and_then(|t| t.clip.as_ref())
                    .map_or(0, |c| c.num_engines()),
            })
        } else {
            None
        };

        let baseline_evals = if self.scheme.evaluate_baselines {
            let mut out: Vec<(&'static str, EvalCounts)> = Vec::new();
            for t in &self.tiles {
                for ev in &t.evaluators {
                    let c = ev.ip_counts();
                    if let Some(slot) = out.iter_mut().find(|(n, _)| *n == ev.name()) {
                        slot.1.true_positive += c.true_positive;
                        slot.1.false_positive += c.false_positive;
                        slot.1.false_negative += c.false_negative;
                        slot.1.true_negative += c.true_negative;
                    } else {
                        out.push((ev.name(), c));
                    }
                }
            }
            out
        } else {
            Vec::new()
        };

        let energy = EnergyCounts {
            l1_reads: misses.l1_accesses,
            l1_writes: self
                .tiles
                .iter()
                .zip(&snap.l1_fills)
                .map(|(t, &b)| t.l1d.stats().fills - b)
                .sum(),
            l2_reads: misses.l2_accesses,
            l2_writes: self
                .tiles
                .iter()
                .zip(&snap.l2_fills)
                .map(|(t, &b)| t.l2.stats().fills - b)
                .sum(),
            llc_reads: misses.llc_accesses,
            llc_writes: self
                .engine
                .llc
                .slices()
                .iter()
                .map(|c| c.stats().fills)
                .sum::<u64>()
                - snap.llc_fills,
            dram_row_hits,
            dram_row_misses: dram_transfers - dram_row_hits,
            noc_flit_hops: self.engine.noc.model.flit_hops() - snap.noc_hops,
            clip_lookups: clip.map(|c| c.stats.candidates).unwrap_or(0),
        };

        let timeline = std::mem::take(&mut self.timeline);
        SimResult {
            label: String::new(),
            per_core_ipc,
            cycles: elapsed,
            latency: lat,
            prefetch,
            misses,
            dram_transfers,
            dram_row_hits,
            dram_bw_util: (dram_transfers as f64 / peak_transfers).min(1.0),
            dram_max_channel_util: max_ch.min(1.0),
            noc_flit_hops: energy.noc_flit_hops,
            clip,
            baseline_evals,
            energy,
            timeline,
            fingerprints: std::mem::take(&mut self.fingerprints),
        }
    }
}

fn sub_lat(a: &mut LatencyReport, b: &LatencyReport) {
    a.l1_miss.count -= b.l1_miss.count;
    a.l1_miss.total -= b.l1_miss.total;
    a.by_l2.count -= b.by_l2.count;
    a.by_l2.total -= b.by_l2.total;
    a.by_llc.count -= b.by_llc.count;
    a.by_llc.total -= b.by_llc.total;
    a.by_dram.count -= b.by_dram.count;
    a.by_dram.total -= b.by_dram.total;
}

fn sub_eval(a: &mut EvalCounts, b: &EvalCounts) {
    a.true_positive -= b.true_positive;
    a.false_positive -= b.false_positive;
    a.false_negative -= b.false_negative;
    a.true_negative -= b.true_negative;
}
