//! The engine: transaction slab, event wheel, clock, and the clocked
//! NoC/DRAM components, plus the memory-controller message handlers.
//!
//! [`Engine`] owns everything that is *shared* between tiles — the NoC,
//! the DRAM channels, the LLC, the in-flight transaction slab, the event
//! ring and the [`SimClock`] — so tile-side code can borrow one tile and
//! the engine simultaneously (disjoint `System` fields). The NoC, DRAM
//! and LLC are wrapped in [`ClockedNoc`] / [`ClockedDram`] /
//! [`crate::llc::ClockedLlc`], which implement the [`Tick`] contract and
//! emit their outputs into typed [`Channel`]s the cycle loop drains.

use crate::llc::ClockedLlc;
use crate::ports::{NocPayload, OutMsg, TxnId};
use clip_dram::{ChannelStats, DramCompletion, DramModel, DramSystem, HbmDram, QueueFullError};
use clip_noc::{AnalyticNoc, ChipletNoc, Delivered, MeshNoc, NocFullError, NocModel};
use clip_types::{
    Channel, Cycle, DramConfig, DramKind, Ip, LineAddr, MemLevel, Priority, ReqId, SimClock,
    SimConfig, Tick,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

pub(crate) const EVENT_RING: usize = 1 << 15;
pub(crate) const RETRY_DELAY: Cycle = 4;

/// DRAM ReqId bit marking a Hermes probe.
pub(crate) const PROBE_BIT: u64 = 1 << 62;

/// Which NoC implementation a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NocChoice {
    /// Flit-level wormhole mesh (default; the full substrate).
    #[default]
    Mesh,
    /// Link-schedule analytic model (fast, for wide sweeps).
    Analytic,
    /// Chiplet fabric: clusters of tiles with narrow die-to-die ports.
    Chiplet,
}

/// The fabric a run actually drives, dispatched behind [`NocModel`].
pub(crate) enum NocImpl {
    Mesh(MeshNoc),
    Analytic(AnalyticNoc),
    Chiplet(ChipletNoc),
}

impl NocImpl {
    /// Topology factory: builds the fabric `choice` selects over the
    /// configured node space.
    pub(crate) fn build(choice: NocChoice, cfg: &SimConfig) -> NocImpl {
        match choice {
            NocChoice::Mesh => NocImpl::Mesh(MeshNoc::new(&cfg.noc)),
            NocChoice::Analytic => NocImpl::Analytic(AnalyticNoc::new(&cfg.noc)),
            NocChoice::Chiplet => NocImpl::Chiplet(ChipletNoc::new(&cfg.noc)),
        }
    }

    fn as_model(&mut self) -> &mut dyn NocModel {
        match self {
            NocImpl::Mesh(m) => m,
            NocImpl::Analytic(a) => a,
            NocImpl::Chiplet(c) => c,
        }
    }

    fn as_model_ref(&self) -> &dyn NocModel {
        match self {
            NocImpl::Mesh(m) => m,
            NocImpl::Analytic(a) => a,
            NocImpl::Chiplet(c) => c,
        }
    }
}

impl NocModel for NocImpl {
    fn send(
        &mut self,
        src: usize,
        dst: usize,
        flits: usize,
        priority: Priority,
        payload: u64,
        now: Cycle,
    ) -> Result<(), NocFullError> {
        self.as_model()
            .send(src, dst, flits, priority, payload, now)
    }
    fn tick(&mut self, now: Cycle) -> Vec<Delivered> {
        self.as_model().tick(now)
    }
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.as_model_ref().next_activity(now)
    }
    fn nodes(&self) -> usize {
        self.as_model_ref().nodes()
    }
    fn delivered_count(&self) -> u64 {
        self.as_model_ref().delivered_count()
    }
    fn total_latency(&self) -> u64 {
        self.as_model_ref().total_latency()
    }
    fn flit_hops(&self) -> u64 {
        self.as_model_ref().flit_hops()
    }
    fn audit(&self, full: bool) -> Result<(), String> {
        self.as_model_ref().audit(full)
    }
    fn inject_drop_flit(&mut self, selector: u64) -> bool {
        self.as_model().inject_drop_flit(selector)
    }
    fn fingerprint(&self, h: &mut clip_types::Fnv64, full: bool) {
        self.as_model_ref().fingerprint(h, full);
    }
}

/// The memory backend a run actually drives, dispatched behind
/// [`DramModel`].
pub(crate) enum DramImpl {
    Ddr4(DramSystem),
    Hbm(HbmDram),
}

impl DramImpl {
    /// Memory factory: builds the backend `cfg.kind` selects.
    pub(crate) fn build(cfg: &DramConfig) -> DramImpl {
        match cfg.kind {
            DramKind::Ddr4 => DramImpl::Ddr4(DramSystem::new(cfg)),
            DramKind::Hbm => DramImpl::Hbm(HbmDram::new(cfg)),
        }
    }

    fn as_model(&mut self) -> &mut dyn DramModel {
        match self {
            DramImpl::Ddr4(d) => d,
            DramImpl::Hbm(h) => h,
        }
    }

    fn as_model_ref(&self) -> &dyn DramModel {
        match self {
            DramImpl::Ddr4(d) => d,
            DramImpl::Hbm(h) => h,
        }
    }
}

impl DramModel for DramImpl {
    fn channels(&self) -> usize {
        self.as_model_ref().channels()
    }
    fn channel_for(&self, line: LineAddr) -> usize {
        self.as_model_ref().channel_for(line)
    }
    fn read_queue_has_room(&self, channel: usize) -> bool {
        self.as_model_ref().read_queue_has_room(channel)
    }
    fn read_queue_len(&self, channel: usize) -> usize {
        self.as_model_ref().read_queue_len(channel)
    }
    fn enqueue_read(
        &mut self,
        channel: usize,
        id: ReqId,
        line: LineAddr,
        priority: Priority,
        now: Cycle,
    ) -> Result<(), QueueFullError> {
        self.as_model()
            .enqueue_read(channel, id, line, priority, now)
    }
    fn enqueue_write(&mut self, line: LineAddr, now: Cycle) -> Result<(), QueueFullError> {
        self.as_model().enqueue_write(line, now)
    }
    fn tick(&mut self, now: Cycle) -> Vec<DramCompletion> {
        self.as_model().tick(now)
    }
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.as_model_ref().next_activity(now)
    }
    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.as_model().skip_idle(from, to);
    }
    fn stats(&self, channel: usize) -> &ChannelStats {
        self.as_model_ref().stats(channel)
    }
    fn total_stats(&self) -> ChannelStats {
        self.as_model_ref().total_stats()
    }
    fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        self.as_model_ref().audit(now, full)
    }
    fn inject_swallow_completion(&mut self, selector: u64) -> bool {
        self.as_model().inject_swallow_completion(selector)
    }
    fn bandwidth_utilization(&self, elapsed: Cycle) -> f64 {
        self.as_model_ref().bandwidth_utilization(elapsed)
    }
    fn fingerprint(&self, h: &mut clip_types::Fnv64, full: bool) {
        self.as_model_ref().fingerprint(h, full);
    }
}

/// The NoC as a clocked component: each [`Tick::tick`] advances the
/// network one cycle and pushes completed deliveries into `delivered`.
/// Generic over the fabric so any [`NocModel`] slots in.
pub(crate) struct ClockedNoc<N: NocModel> {
    pub(crate) model: N,
    pub(crate) delivered: Channel<Delivered>,
}

impl<N: NocModel> Tick for ClockedNoc<N> {
    fn tick(&mut self, now: Cycle) {
        for d in self.model.tick(now) {
            self.delivered.push(d);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        merge_activity(self.delivered.activity(now), self.model.next_activity(now))
    }
}

/// The DRAM channels as a clocked component: each [`Tick::tick`]
/// advances every channel one cycle and pushes finished reads into
/// `completed`. Generic over the backend so any [`DramModel`] slots in.
pub(crate) struct ClockedDram<D: DramModel> {
    pub(crate) mem: D,
    pub(crate) completed: Channel<DramCompletion>,
}

impl<D: DramModel> Tick for ClockedDram<D> {
    fn tick(&mut self, now: Cycle) {
        for c in self.mem.tick(now) {
            self.completed.push(c);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        merge_activity(self.completed.activity(now), self.mem.next_activity(now))
    }
}

/// Minimum over two optional wake-up cycles (`None` = no wake-up).
pub(crate) fn merge_activity(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnKind {
    Demand,
    Store,
    Prefetch {
        fill_l1: bool,
        critical: bool,
        trigger_ip: Ip,
        /// Originating engine inside a composite ensemble (0 otherwise);
        /// carried so a cancel can release the right engine's credit.
        engine: u8,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeState {
    None,
    Pending,
    Done,
    /// The transaction reached the memory controller while the probe was
    /// still in flight; respond as soon as the probe lands.
    TxnWaiting,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Txn {
    pub tile: u16,
    pub ip: Ip,
    pub line: LineAddr,
    pub kind: TxnKind,
    pub issue: Cycle,
    pub level: MemLevel,
    pub probe: ProbeState,
    /// Unique id of this transaction's Hermes probe, if one is in flight.
    pub probe_id: Option<u64>,
    pub live: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// L1 hit: respond to the core.
    L1Respond {
        tile: u16,
        req: ReqId,
        issue: Cycle,
    },
    L2Lookup {
        txn: TxnId,
    },
    DramEnqueue {
        txn: TxnId,
    },
    TileData {
        txn: TxnId,
    },
    /// Retry a DRAM writeback that found the write queue full.
    WbDram {
        line: LineAddr,
    },
}

/// The configuration slice the uncore needs: topology and packet sizes,
/// derived once from the [`SimConfig`] so the engine is self-contained.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineParams {
    pub cores: usize,
    pub nodes: usize,
    pub channels: usize,
    pub data_packet_flits: usize,
    pub addr_packet_flits: usize,
    pub llc_latency: Cycle,
}

impl EngineParams {
    pub(crate) fn from_config(cfg: &SimConfig) -> Self {
        EngineParams {
            cores: cfg.cores,
            nodes: cfg.noc.mesh_cols * cfg.noc.mesh_rows,
            channels: cfg.dram.channels,
            data_packet_flits: cfg.noc.data_packet_flits,
            addr_packet_flits: cfg.noc.addr_packet_flits,
            llc_latency: cfg.llc_slice.latency,
        }
    }
}

/// Shared (non-tile) simulator state: clock, interconnect, memory,
/// transactions, and the event wheel. The engine owns the whole uncore
/// state machine — message handlers included — so it can answer "when is
/// the next interesting uncore cycle?" for the skip-ahead scheduler.
pub(crate) struct Engine {
    pub(crate) params: EngineParams,
    pub(crate) clock: SimClock,
    pub(crate) noc: ClockedNoc<NocImpl>,
    pub(crate) dram: ClockedDram<DramImpl>,
    pub(crate) llc: ClockedLlc,
    pub(crate) txns: Vec<Txn>,
    free_txns: Vec<TxnId>,
    ring: Vec<Vec<Ev>>,
    /// Events currently on the ring (O(1) view for the watchdog).
    events_pending: usize,
    /// Fire cycles of ring events, lazily pruned: the scheduler peeks the
    /// minimum to bound a skip without scanning all `EVENT_RING` slots.
    event_heap: BinaryHeap<Reverse<Cycle>>,
    /// Per-node injection outboxes (FIFO behind a refused packet).
    outbox: Vec<Channel<OutMsg>>,
    next_req: u64,
    /// In-flight Hermes probes: unique probe id → owning transaction.
    /// Probe ids must be generation-unique (not slot-derived): transaction
    /// slots are recycled, and a stale completion keyed by slot would be
    /// credited to the wrong transaction, eventually stranding one in
    /// `ProbeState::TxnWaiting` forever.
    pub(crate) probe_map: HashMap<u64, TxnId>,
    pub(crate) next_probe: u64,
}

impl Engine {
    pub(crate) fn new(noc: NocImpl, dram: DramImpl, llc: ClockedLlc, params: EngineParams) -> Self {
        Engine {
            params,
            clock: SimClock::new(),
            noc: ClockedNoc {
                model: noc,
                delivered: Channel::new(),
            },
            dram: ClockedDram {
                mem: dram,
                completed: Channel::new(),
            },
            llc,
            txns: Vec::with_capacity(4096),
            free_txns: Vec::new(),
            ring: (0..EVENT_RING).map(|_| Vec::new()).collect(),
            events_pending: 0,
            event_heap: BinaryHeap::new(),
            outbox: (0..params.nodes).map(|_| Channel::new()).collect(),
            next_req: 1,
            probe_map: HashMap::new(),
            next_probe: 0,
        }
    }

    #[inline]
    pub(crate) fn now(&self) -> Cycle {
        self.clock.now()
    }

    #[inline]
    pub(crate) fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    pub(crate) fn alloc_txn(&mut self, txn: Txn) -> TxnId {
        if let Some(i) = self.free_txns.pop() {
            self.txns[i as usize] = txn;
            i
        } else {
            self.txns.push(txn);
            (self.txns.len() - 1) as TxnId
        }
    }

    pub(crate) fn free_txn(&mut self, i: TxnId) {
        if let Some(pid) = self.txns[i as usize].probe_id.take() {
            // Orphan any in-flight probe so its completion is discarded
            // instead of being credited to a future occupant of this slot.
            self.probe_map.remove(&pid);
        }
        self.txns[i as usize].live = false;
        self.free_txns.push(i);
    }

    pub(crate) fn live_txns(&self) -> usize {
        self.txns.iter().filter(|t| t.live).count()
    }

    #[inline]
    pub(crate) fn schedule(&mut self, at: Cycle, ev: Ev) {
        let now = self.clock.now();
        let at = at.max(now + 1);
        debug_assert!(at - now < EVENT_RING as u64, "event beyond ring horizon");
        self.ring[(at as usize) % EVENT_RING].push(ev);
        self.events_pending += 1;
        self.event_heap.push(Reverse(at));
    }

    /// Takes this cycle's scheduled events off the wheel.
    pub(crate) fn take_events(&mut self) -> Vec<Ev> {
        let now = self.clock.now();
        let evs = std::mem::take(&mut self.ring[(now as usize) % EVENT_RING]);
        self.events_pending -= evs.len();
        evs
    }

    pub(crate) fn pending_events(&self) -> usize {
        self.events_pending
    }

    /// The earliest cycle `>= now` with a ring event due, pruning heap
    /// entries for cycles that already fired.
    pub(crate) fn next_event_cycle(&mut self, now: Cycle) -> Option<Cycle> {
        while let Some(&Reverse(c)) = self.event_heap.peek() {
            if c < now {
                self.event_heap.pop();
            } else {
                return Some(c);
            }
        }
        None
    }

    /// The earliest cycle `>= now` at which the uncore — NoC, DRAM, LLC,
    /// spilled outbox packets, or a ring event — does real work, or
    /// `None` when the whole uncore is idle until a tile stimulates it.
    pub(crate) fn next_activity(&mut self, now: Cycle) -> Option<Cycle> {
        // Cheapest sources first, bailing the moment one says "busy now":
        // this runs on every scheduler decision, and the LLC ring scan is
        // by far the priciest answer.
        let mut next = self.next_event_cycle(now);
        if next == Some(now) {
            return next;
        }
        if self.outbox_backlog() > 0 {
            return Some(now);
        }
        next = merge_activity(next, self.dram.next_activity(now));
        if next == Some(now) {
            return next;
        }
        next = merge_activity(next, self.noc.next_activity(now));
        if next == Some(now) {
            return next;
        }
        merge_activity(next, self.llc.next_activity(now))
    }

    pub(crate) fn outbox_backlog(&self) -> usize {
        self.outbox.iter().map(|o| o.len()).sum()
    }

    pub(crate) fn txn_priority(&self, t: TxnId) -> Priority {
        match self.txns[t as usize].kind {
            TxnKind::Demand | TxnKind::Store => Priority::Demand,
            TxnKind::Prefetch { critical, .. } => {
                if critical {
                    Priority::Demand
                } else {
                    Priority::Prefetch
                }
            }
        }
    }

    /// Fault injection: flips the criticality flag of the `sel % len`-th
    /// live prefetch transaction (slot order). Nothing becomes
    /// unaccounted for — the transaction just arbitrates at the wrong
    /// priority from here on — so no conservation audit can catch this;
    /// only the state-fingerprint comparison against a clean same-seed
    /// run localizes the divergence. Returns false when no prefetch is
    /// live.
    pub(crate) fn flip_prefetch_criticality(&mut self, sel: u64) -> bool {
        let candidates: Vec<usize> = self
            .txns
            .iter()
            .enumerate()
            .filter(|(_, t)| t.live && matches!(t.kind, TxnKind::Prefetch { .. }))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let victim = candidates[(sel % candidates.len() as u64) as usize];
        if let TxnKind::Prefetch { critical, .. } = &mut self.txns[victim].kind {
            *critical = !*critical;
        }
        true
    }

    /// Legality scan over the live-transaction slab: every line must lie
    /// inside the simulated address space. Backstop for a corrupted
    /// prefetch address that left its tile queue between audit windows.
    ///
    /// # Errors
    ///
    /// Returns a description of the first illegal transaction.
    pub(crate) fn audit_txns(&self) -> Result<(), String> {
        for (i, t) in self.txns.iter().enumerate() {
            if t.live && !crate::tile::line_in_address_space(t.line) {
                return Err(format!(
                    "txn{i} (tile {}) targets line {:#x}, outside the \
                     simulated address space",
                    t.tile,
                    t.line.raw()
                ));
            }
        }
        Ok(())
    }

    /// Folds the live-transaction slab into a state fingerprint, in slot
    /// order (slot allocation is deterministic for a deterministic run).
    /// Includes the prefetch criticality/fill bits, so a flipped flag
    /// diverges here even before arbitration acts on it.
    pub(crate) fn fingerprint_txns(&self, h: &mut clip_types::Fnv64) {
        h.write_usize(self.live_txns());
        for (i, t) in self.txns.iter().enumerate() {
            if !t.live {
                continue;
            }
            let (tag, fill, crit, tip, eng) = match t.kind {
                TxnKind::Demand => (1u64, false, false, 0, 0),
                TxnKind::Store => (2, false, false, 0, 0),
                TxnKind::Prefetch {
                    fill_l1,
                    critical,
                    trigger_ip,
                    engine,
                } => (3, fill_l1, critical, trigger_ip.raw(), engine),
            };
            h.write_usize(i)
                .write_u64(u64::from(t.tile))
                .write_u64(t.ip.raw())
                .write_u64(t.line.raw())
                .write_u64(tag)
                .write_bool(fill)
                .write_bool(crit)
                .write_u64(tip)
                .write_u64(u64::from(eng))
                .write_u64(t.issue)
                .write_u64(t.level as u64);
        }
    }

    /// O(1)-balance variant of [`Engine::fingerprint_txns`] for `cheap`
    /// check runs: live-transaction count and wheel/outbox occupancy.
    pub(crate) fn fingerprint_txns_cheap(&self, h: &mut clip_types::Fnv64) {
        h.write_usize(self.live_txns())
            .write_usize(self.events_pending)
            .write_usize(self.outbox_backlog());
    }

    /// Injects a message, spilling to the node's outbox on back-pressure
    /// (or when earlier spilled messages must keep FIFO order).
    pub(crate) fn send_msg(
        &mut self,
        src: usize,
        dst: usize,
        flits: usize,
        prio: Priority,
        pl: NocPayload,
    ) {
        let now = self.clock.now();
        if !self.outbox[src].is_empty() {
            self.outbox[src].push(OutMsg {
                dst,
                flits,
                priority: prio,
                payload: pl,
            });
            return;
        }
        if self
            .noc
            .model
            .send(src, dst, flits, prio, pl.encode(), now)
            .is_err()
        {
            self.outbox[src].push(OutMsg {
                dst,
                flits,
                priority: prio,
                payload: pl,
            });
        }
    }

    pub(crate) fn drain_outboxes(&mut self) {
        let now = self.clock.now();
        // Rotate the starting node each cycle: a fixed order would let
        // low-index tiles win saturated links every cycle and starve the
        // memory controllers' response packets (livelock under flood).
        let n = self.outbox.len();
        for k in 0..n {
            let node = (k + (now as usize % n.max(1))) % n;
            while let Some(m) = self.outbox[node].front() {
                let ok = self
                    .noc
                    .model
                    .send(node, m.dst, m.flits, m.priority, m.payload.encode(), now)
                    .is_ok();
                if ok {
                    self.outbox[node].pop();
                } else {
                    break;
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Uncore message flow: LLC slices and memory controllers. Engine-owned:
// these paths never touch a tile, so the uncore state machine is closed
// under `Engine` and `System` only forwards tile-facing events.
// ----------------------------------------------------------------------

impl Engine {
    #[inline]
    pub(crate) fn home_of(&self, line: LineAddr) -> usize {
        (clip_types::hash64(line.raw() ^ 0x110C) as usize) % self.params.cores
    }

    #[inline]
    pub(crate) fn mc_node(&self, channel: usize) -> usize {
        let nodes = self.params.nodes;
        (channel * nodes / self.params.channels) % nodes
    }

    /// Drains the clocked components' output channels into the uncore
    /// handlers: NoC deliveries, DRAM completions, due LLC lookups. The
    /// `lose_deliveries` flag is the `LoseDelivery` fault: packets arrive
    /// and vanish.
    pub(crate) fn drain_uncore(&mut self, now: Cycle, lose_deliveries: bool) {
        while let Some(d) = self.noc.delivered.pop() {
            if lose_deliveries {
                continue;
            }
            self.handle_delivery(d.node, d.payload, now);
        }
        while let Some(c) = self.dram.completed.pop() {
            self.handle_dram_completion(c.id);
        }
        while let Some(txn) = self.llc.ready.pop() {
            self.llc_lookup(txn, now);
        }
    }

    pub(crate) fn dram_enqueue(&mut self, txn: TxnId, now: Cycle) {
        match self.txns[txn as usize].probe {
            ProbeState::Done => {
                // Hermes probe already fetched the data at the controller.
                self.txns[txn as usize].level = MemLevel::Dram;
                self.data_from_mc(txn);
                return;
            }
            ProbeState::Pending => {
                self.txns[txn as usize].probe = ProbeState::TxnWaiting;
                return;
            }
            _ => {}
        }
        let tx = self.txns[txn as usize];
        let channel = self.dram.mem.channel_for(tx.line);
        let prio = self.txn_priority(txn);
        if self
            .dram
            .mem
            .enqueue_read(channel, ReqId(txn as u64), tx.line, prio, now)
            .is_err()
        {
            self.schedule(now + RETRY_DELAY, Ev::DramEnqueue { txn });
        }
    }

    /// Enqueues a dirty-line write at its controller, retrying through
    /// the event wheel when the write queue is full.
    pub(crate) fn wb_dram(&mut self, line: LineAddr, now: Cycle) {
        if self.dram.mem.enqueue_write(line, now).is_err() {
            self.schedule(now + RETRY_DELAY * 2, Ev::WbDram { line });
        }
    }

    /// Sends the DRAM response packet toward the LLC home slice.
    fn data_from_mc(&mut self, txn: TxnId) {
        let tx = self.txns[txn as usize];
        let channel = self.dram.mem.channel_for(tx.line);
        let mc = self.mc_node(channel);
        let home = self.home_of(tx.line);
        let prio = self.txn_priority(txn);
        self.send_msg(
            mc,
            home,
            self.params.data_packet_flits,
            prio,
            NocPayload::DataLlc(txn),
        );
    }

    pub(crate) fn handle_dram_completion(&mut self, id: ReqId) {
        if id.0 & PROBE_BIT != 0 {
            let pid = id.0 & !PROBE_BIT;
            // Orphaned probes (owner already serviced on-chip) miss here.
            let Some(txn) = self.probe_map.remove(&pid) else {
                return;
            };
            self.txns[txn as usize].probe_id = None;
            match self.txns[txn as usize].probe {
                ProbeState::TxnWaiting => {
                    self.txns[txn as usize].level = MemLevel::Dram;
                    self.data_from_mc(txn);
                }
                ProbeState::Pending => self.txns[txn as usize].probe = ProbeState::Done,
                ProbeState::None | ProbeState::Done => {}
            }
            return;
        }
        let txn = id.0 as TxnId;
        if !self.txns[txn as usize].live {
            return;
        }
        self.txns[txn as usize].level = MemLevel::Dram;
        self.data_from_mc(txn);
    }

    pub(crate) fn handle_delivery(&mut self, node: usize, pl: u64, now: Cycle) {
        match NocPayload::decode(pl) {
            NocPayload::ReqLlc(txn) => {
                let delay = self.params.llc_latency;
                self.llc.schedule_lookup(txn, now, delay);
            }
            NocPayload::ReqMc(txn) => {
                self.schedule(now + 1, Ev::DramEnqueue { txn });
            }
            NocPayload::DataLlc(txn) => {
                self.llc_fill_and_forward(txn, now);
            }
            NocPayload::DataTile(txn) => {
                self.schedule(now + 1, Ev::TileData { txn });
            }
            NocPayload::WbLlc(line) => self.llc_writeback(node, line, now),
            NocPayload::WbMc(line) => self.wb_dram(line, now),
        }
    }

    pub(crate) fn writeback_to_dram(&mut self, from_node: usize, line: LineAddr) {
        let channel = self.dram.mem.channel_for(line);
        let mc = self.mc_node(channel);
        self.send_msg(
            from_node,
            mc,
            self.params.data_packet_flits,
            Priority::Writeback,
            NocPayload::WbMc(line),
        );
    }
}
