//! The integrity auditor: forward-progress watchdog + conservation
//! audits over the whole Tick stack.
//!
//! The cycle loop calls [`System::integrity_tick`] after every tick; at
//! the configured cadence it runs the component audits (NoC flit
//! conservation, DRAM command legality, LLC lookup-ring occupancy, every
//! MSHR file's allocation/release balance, every core's ROB/load-queue
//! balance, and every tile's prefetch-queue conservation + address
//! legality), captures a per-component state fingerprint under
//! `CLIP_CHECK=full` (see [`crate::fingerprint`]), and samples a global
//! progress signature. If the signature does not change for a whole
//! watchdog window while work is still in flight, the run is declared
//! deadlocked with a report naming the stuck transactions and every
//! queue's occupancy. All checks are read-only: simulation results are
//! bit-identical across [`CheckLevel`]s.

use crate::system::System;
use clip_dram::DramModel;
use clip_noc::NocModel;
use clip_types::{CheckLevel, Cycle, SimError, SimErrorKind};
use std::time::{Duration, Instant};

/// Default audit cadence in cycles.
pub(crate) const DEFAULT_CHECK_CADENCE: Cycle = 2048;
/// Default forward-progress window in cycles. Generous: FR-FCFS can
/// legitimately starve a plain prefetch for thousands of cycles under
/// saturation, but *some* global progress always happens within this
/// window unless the system is truly wedged.
pub(crate) const DEFAULT_WATCHDOG_WINDOW: Cycle = 50_000;

/// How many stuck transactions the deadlock report names.
const REPORT_TXNS: usize = 5;

/// Auditor state owned by the [`System`].
pub(crate) struct Integrity {
    pub(crate) level: CheckLevel,
    pub(crate) cadence: Cycle,
    pub(crate) window: Cycle,
    /// Last cycle the progress signature changed.
    last_progress: Cycle,
    /// (retired, noc delivered, dram reads+writes, llc lookups fired).
    signature: (u64, u64, u64, u64),
}

impl Integrity {
    pub(crate) fn new(level: CheckLevel, cadence: Cycle, window: Cycle) -> Self {
        Integrity {
            level,
            cadence,
            window,
            last_progress: 0,
            signature: (0, 0, 0, 0),
        }
    }
}

/// An armed wall-clock budget for one run (see `RunOptions::deadline`).
///
/// The clock is the *host's*, so which cadence boundary trips it depends
/// on machine speed — but the error itself is deterministic at any given
/// boundary: the detail is built only from simulated state. A zero budget
/// (the forced-timeout test knob) trips at the first boundary on every
/// host, making full `SimError` equality testable serial vs parallel.
pub(crate) struct JobDeadline {
    pub(crate) start: Instant,
    pub(crate) budget: Duration,
}

impl System {
    /// Runs the watchdog + audits if the cadence divides `now`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SimError`].
    pub(crate) fn integrity_tick(&mut self, now: Cycle) -> Result<(), SimError> {
        if !self.integrity.level.audits_enabled() || !now.is_multiple_of(self.integrity.cadence) {
            return Ok(());
        }
        let full = self.integrity.level.full();

        self.engine
            .noc
            .model
            .audit(full)
            .map_err(|e| component_error(now, "noc", e))?;
        self.engine
            .dram
            .mem
            .audit(now, full)
            .map_err(|e| component_error(now, "dram", e))?;
        self.engine
            .llc
            .audit(now, full)
            .map_err(|e| component_error(now, "llc", e))?;
        if full {
            self.engine
                .audit_txns()
                .map_err(|e| component_error(now, "txns", e))?;
        }
        for (i, t) in self.tiles.iter().enumerate() {
            t.l1_mshr
                .audit(now, full)
                .map_err(|e| component_error(now, format!("tile{i}.l1-mshr"), e))?;
            t.l2_mshr
                .audit(now, full)
                .map_err(|e| component_error(now, format!("tile{i}.l2-mshr"), e))?;
            t.core
                .as_ref()
                .expect("core present")
                .audit(full)
                .map_err(|e| component_error(now, format!("tile{i}.core"), e))?;
            t.audit_pf_queue(full)
                .map_err(|e| component_error(now, format!("tile{i}.pf-queue"), e))?;
        }

        // Fingerprints are captured at every enabled check level: `full`
        // hashes per-entry state, `cheap` only the O(1) balances — cheap
        // streams are affordable for long sweeps and still localize
        // occupancy-visible divergence (the baseline store keys the two
        // levels separately).
        self.capture_fingerprint(now, full);

        // Forward progress: the signature moves whenever any core retires
        // or any uncore channel drains anything.
        let sig = self.progress_signature();
        if sig != self.integrity.signature {
            self.integrity.signature = sig;
            self.integrity.last_progress = now;
        } else if self.work_in_flight()
            && now - self.integrity.last_progress >= self.integrity.window
        {
            return Err(SimError::new(
                now,
                "watchdog",
                SimErrorKind::Deadlock,
                self.deadlock_report(now),
            ));
        }
        Ok(())
    }

    fn progress_signature(&self) -> (u64, u64, u64, u64) {
        let retired: u64 = self
            .tiles
            .iter()
            .map(|t| t.core.as_ref().expect("core present").retired())
            .sum();
        let ds = self.engine.dram.mem.total_stats();
        (
            retired,
            self.engine.noc.model.delivered_count(),
            ds.reads + ds.writes,
            self.engine.llc.fired(),
        )
    }

    fn work_in_flight(&self) -> bool {
        self.engine.live_txns() > 0
            || self.engine.outbox_backlog() > 0
            || self.engine.pending_events() > 0
    }

    /// A structured report of what is stuck: the oldest live transactions
    /// (tile, line, level, age) and every queue's occupancy, mirroring
    /// the `CLIP_DEBUG_STALL` dump.
    fn deadlock_report(&self, now: Cycle) -> String {
        format!(
            "no forward progress for {} cycles with {}",
            now - self.integrity.last_progress,
            self.queue_snapshot(now),
        )
    }

    /// The shared diagnostic core of the deadlock and timeout reports:
    /// live-transaction count, every queue's occupancy, and the oldest
    /// in-flight transactions (tile, line, level, age). Built from
    /// simulated state only, so it is deterministic at any given cycle.
    fn queue_snapshot(&self, now: Cycle) -> String {
        let mut live: Vec<(Cycle, usize)> = self
            .engine
            .txns
            .iter()
            .enumerate()
            .filter(|(_, t)| t.live)
            .map(|(i, t)| (t.issue, i))
            .collect();
        live.sort_unstable();
        let mut stuck = String::new();
        for &(issue, i) in live.iter().take(REPORT_TXNS) {
            let t = &self.engine.txns[i];
            stuck.push_str(&format!(
                " txn{i}{{tile={} line={:#x} level={:?} age={}}}",
                t.tile,
                t.line.raw(),
                t.level,
                now.saturating_sub(issue)
            ));
        }
        let l1m: usize = self.tiles.iter().map(|t| t.l1_mshr.len()).sum();
        let l2m: usize = self.tiles.iter().map(|t| t.l2_mshr.len()).sum();
        let rq: usize = (0..self.cfg.dram.channels)
            .map(|c| self.engine.dram.mem.read_queue_len(c))
            .sum();
        format!(
            "{} live txns \
             (l1_mshr={l1m} l2_mshr={l2m} llc_mshr={} outbox={} pf_queue={} \
             dram_read_q={rq} pending_events={}); oldest:{stuck}",
            live.len(),
            self.engine.llc.mshr_occupancy(),
            self.engine.outbox_backlog(),
            self.tiles.iter().map(|t| t.pf_queue.len()).sum::<usize>(),
            self.engine.pending_events(),
        )
    }

    /// Trips [`SimErrorKind::Timeout`] once the armed wall-clock budget is
    /// spent. Checked only at audit-cadence boundaries so the skip-ahead
    /// scheduler, the step oracle, and the parallel driver all observe the
    /// deadline at the same simulated cycle; runs independently of the
    /// [`CheckLevel`] (a watchdog for the *host*, not the model).
    pub(crate) fn deadline_tick(&self, now: Cycle) -> Result<(), SimError> {
        let Some(d) = self.deadline.as_ref() else {
            return Ok(());
        };
        if !now.is_multiple_of(self.integrity.cadence) || d.start.elapsed() < d.budget {
            return Ok(());
        }
        Err(SimError::new(
            now,
            "deadline",
            SimErrorKind::Timeout,
            format!(
                "wall-clock deadline of {}ms exceeded at cycle {now} with {}",
                d.budget.as_millis(),
                self.queue_snapshot(now),
            ),
        ))
    }
}

/// Wraps a component audit failure, classifying legality-scan failures
/// (stale or future-dated entries, addresses outside the simulated
/// space) as illegal state rather than lost work.
fn component_error(now: Cycle, component: impl Into<String>, detail: String) -> SimError {
    let kind = if detail.contains("future")
        || detail.contains("stale")
        || detail.contains("outside the simulated address space")
    {
        SimErrorKind::IllegalState
    } else {
        SimErrorKind::Conservation
    };
    SimError::new(now, component, kind, detail)
}
