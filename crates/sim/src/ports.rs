//! Typed message vocabulary for the on-chip network.
//!
//! Every packet the system injects carries a [`NocPayload`]; the NoC
//! itself moves opaque `u64`s, so the payload round-trips through a
//! 8-bit-tag / 56-bit-value encoding at the injection and delivery
//! boundaries. Keeping the enum (rather than raw tag constants) at every
//! call site means the compiler checks the message dataflow:
//! tile → LLC home → memory controller → LLC home → tile.

use clip_types::{LineAddr, Priority};

/// Transaction slot index, the currency of the request/response flow.
pub(crate) type TxnId = u32;

/// One message travelling the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NocPayload {
    /// Tile → LLC home slice: demand/prefetch request.
    ReqLlc(TxnId),
    /// LLC home → memory controller: LLC miss heading off-chip.
    ReqMc(TxnId),
    /// Memory controller → LLC home: DRAM data returning.
    DataLlc(TxnId),
    /// LLC home → tile: data for the requesting tile.
    DataTile(TxnId),
    /// Tile → LLC home: dirty L2 victim.
    WbLlc(LineAddr),
    /// LLC home → memory controller: dirty LLC victim.
    WbMc(LineAddr),
}

const TAG_REQ_LLC: u64 = 0;
const TAG_REQ_MC: u64 = 1;
const TAG_DATA_LLC: u64 = 2;
const TAG_DATA_TILE: u64 = 3;
const TAG_WB_LLC: u64 = 4;
const TAG_WB_MC: u64 = 5;

impl NocPayload {
    /// Packs into the NoC's opaque `u64`: tag in the top byte, value in
    /// the low 56 bits.
    pub(crate) fn encode(self) -> u64 {
        let (tag, value) = match self {
            NocPayload::ReqLlc(t) => (TAG_REQ_LLC, t as u64),
            NocPayload::ReqMc(t) => (TAG_REQ_MC, t as u64),
            NocPayload::DataLlc(t) => (TAG_DATA_LLC, t as u64),
            NocPayload::DataTile(t) => (TAG_DATA_TILE, t as u64),
            NocPayload::WbLlc(l) => (TAG_WB_LLC, l.raw()),
            NocPayload::WbMc(l) => (TAG_WB_MC, l.raw()),
        };
        debug_assert!(value < (1 << 56));
        (tag << 56) | value
    }

    /// Unpacks a delivered `u64`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag — that would mean a corrupted packet.
    pub(crate) fn decode(p: u64) -> Self {
        let (tag, value) = (p >> 56, p & ((1 << 56) - 1));
        match tag {
            TAG_REQ_LLC => NocPayload::ReqLlc(value as TxnId),
            TAG_REQ_MC => NocPayload::ReqMc(value as TxnId),
            TAG_DATA_LLC => NocPayload::DataLlc(value as TxnId),
            TAG_DATA_TILE => NocPayload::DataTile(value as TxnId),
            TAG_WB_LLC => NocPayload::WbLlc(LineAddr::new(value)),
            TAG_WB_MC => NocPayload::WbMc(LineAddr::new(value)),
            _ => unreachable!("unknown message tag {tag}"),
        }
    }
}

/// A packet waiting in a node's injection outbox because the NoC
/// refused it (injection queue full) or ordering demands FIFO behind an
/// earlier refusal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutMsg {
    pub dst: usize,
    pub flits: usize,
    pub priority: Priority,
    pub payload: NocPayload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        for p in [
            NocPayload::ReqLlc(0),
            NocPayload::ReqMc(12345),
            NocPayload::DataLlc(u32::MAX),
            NocPayload::DataTile(7),
            NocPayload::WbLlc(LineAddr::new((1 << 56) - 1)),
            NocPayload::WbMc(LineAddr::new(42)),
        ] {
            assert_eq!(NocPayload::decode(p.encode()), p);
        }
    }
}
