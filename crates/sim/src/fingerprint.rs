//! State-fingerprint divergence localization.
//!
//! Under `CLIP_CHECK=full` the integrity loop folds each component's
//! architectural + queue state into an FNV-1a hash every cadence window
//! (cores and ROBs, private MSHR files, prefetch queues, LLC MSHRs, the
//! live-transaction slab). Two same-seed runs that must be bit-identical
//! — serial vs parallel, or corrupted vs clean — can then be diffed
//! window by window: instead of "the final IPC is wrong", [`compare`]
//! reports *"first divergent window N (cycle C), component X"* as a
//! [`SimErrorKind::Divergence`] error. This is the only detector for
//! corruption that stays conserved (e.g. [`crate::FaultKind::FlipCriticality`]:
//! nothing is lost, arbitration just decides differently from then on).
//!
//! Fingerprints ride in [`SimResult::fingerprints`] but are deliberately
//! excluded from its JSON form: artifacts stay byte-identical whether or
//! not a run captured them.

use crate::result::SimResult;
use crate::system::System;
use crate::{run_jobs_checked, RunOptions, SweepJob};
use clip_types::{Cycle, Fnv64, SimError, SimErrorKind};

/// One cadence window's per-component state hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFingerprint {
    /// Window index (`cycle / check_cadence`).
    pub window: u64,
    /// Cycle the window was sampled at.
    pub cycle: Cycle,
    /// One hash per component, laid out as `tile0..tileN-1, llc, txns`
    /// (see [`component_name`]).
    pub hashes: Vec<u64>,
}

/// Names the component at `index` in a [`WindowFingerprint::hashes`]
/// layout with `tiles` tiles: `tile{i}`, then `llc`, then `txns`.
pub fn component_name(index: usize, tiles: usize) -> String {
    if index < tiles {
        format!("tile{index}")
    } else if index == tiles {
        "llc".to_string()
    } else {
        "txns".to_string()
    }
}

impl System {
    /// Captures one window's per-component fingerprint. Read-only.
    pub(crate) fn capture_fingerprint(&mut self, now: Cycle) {
        let cadence = self.integrity.cadence.max(1);
        let mut hashes = Vec::with_capacity(self.tiles.len() + 2);
        for t in &self.tiles {
            let mut h = Fnv64::new();
            t.fingerprint(&mut h);
            hashes.push(h.finish());
        }
        let mut h = Fnv64::new();
        self.engine.llc.fingerprint(&mut h);
        hashes.push(h.finish());
        let mut h = Fnv64::new();
        self.engine.fingerprint_txns(&mut h);
        hashes.push(h.finish());
        self.fingerprints.push(WindowFingerprint {
            window: now / cadence,
            cycle: now,
            hashes,
        });
    }
}

/// Diffs two same-seed runs' fingerprint streams window by window.
///
/// Both runs must have been captured under `CLIP_CHECK=full` with the
/// same `check_cadence`; when either side recorded no fingerprints there
/// is nothing to compare and the result is `Ok`.
///
/// # Errors
///
/// Returns a [`SimErrorKind::Divergence`] error naming the first
/// divergent cadence window and the component that diverged — or, when
/// every shared window agrees but the streams have different lengths,
/// the first unmatched window (the runs took different numbers of
/// cycles, itself a divergence).
pub fn compare(reference: &SimResult, candidate: &SimResult) -> Result<(), SimError> {
    let (a, b) = (&reference.fingerprints, &candidate.fingerprints);
    if a.is_empty() || b.is_empty() {
        return Ok(());
    }
    for (wa, wb) in a.iter().zip(b.iter()) {
        let tiles = wa.hashes.len().saturating_sub(2);
        if wa.window != wb.window {
            return Err(SimError::new(
                wa.cycle.min(wb.cycle),
                "fingerprint",
                SimErrorKind::Divergence,
                format!(
                    "window streams desynchronized: window {} vs {} (check_cadence differs?)",
                    wa.window, wb.window
                ),
            ));
        }
        for (i, (ha, hb)) in wa.hashes.iter().zip(wb.hashes.iter()).enumerate() {
            if ha != hb {
                return Err(SimError::new(
                    wa.cycle,
                    component_name(i, tiles),
                    SimErrorKind::Divergence,
                    format!(
                        "first divergent window {} (cycle {}), component {}: \
                         state hash {:#018x} vs {:#018x}",
                        wa.window,
                        wa.cycle,
                        component_name(i, tiles),
                        ha,
                        hb
                    ),
                ));
            }
        }
    }
    if a.len() != b.len() {
        let first_unmatched = a.len().min(b.len());
        let longer = if a.len() > b.len() { a } else { b };
        let w = &longer[first_unmatched];
        return Err(SimError::new(
            w.cycle,
            "fingerprint",
            SimErrorKind::Divergence,
            format!(
                "runs recorded {} vs {} windows; first unmatched window {} (cycle {})",
                a.len(),
                b.len(),
                w.window,
                w.cycle
            ),
        ));
    }
    Ok(())
}

/// Runs a batch through [`run_jobs_checked`] and localizes divergence the
/// auditors cannot see: when `opts.fault` is armed, each job that still
/// completes cleanly is re-run with the fault disarmed and its
/// fingerprint stream diffed against the clean run via [`compare`]. A
/// conserved corruption (e.g. `FlipCriticality`) thereby surfaces as a
/// `Divergence` error naming the first divergent window and component
/// instead of silently skewing the result.
///
/// Requires `CLIP_CHECK=full` (or `opts.check = Some(CheckLevel::Full)`)
/// to capture fingerprints; at lower levels this is exactly
/// `run_jobs_checked`. Without an armed fault there is no reference to
/// diff against and the batch also passes through unchanged.
pub fn run_jobs_localized(
    jobs: &[SweepJob],
    opts: &RunOptions,
) -> Vec<Result<SimResult, SimError>> {
    let outcomes = run_jobs_checked(jobs, opts);
    if opts.fault.is_none() {
        return outcomes;
    }
    let clean_opts = RunOptions {
        fault: None,
        ..opts.clone()
    };
    let clean = run_jobs_checked(jobs, &clean_opts);
    outcomes
        .into_iter()
        .zip(clean)
        .map(|(faulted, clean)| match (faulted, clean) {
            (Ok(f), Ok(c)) => compare(&c, &f).map(|()| f),
            (faulted, _) => faulted,
        })
        .collect()
}
