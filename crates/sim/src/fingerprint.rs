//! State-fingerprint divergence localization.
//!
//! Whenever audits are enabled the integrity loop folds each component's
//! state into an FNV-1a hash every cadence window. Under `CLIP_CHECK=full`
//! the hash covers per-entry architectural + queue state (cores and ROBs,
//! private MSHR files, prefetch queues, LLC MSHRs, the live-transaction
//! slab); under the default `cheap` level it covers only the O(1)
//! occupancy balances each component already maintains — far less
//! sensitive, but free enough to leave on for long sweeps. The two
//! depths share a layout but are never comparable to each other; the
//! baseline store keys them apart. Two same-seed runs that must be
//! bit-identical
//! — serial vs parallel, or corrupted vs clean — can then be diffed
//! window by window: instead of "the final IPC is wrong", [`compare`]
//! reports *"first divergent window N (cycle C), component X"* as a
//! [`SimErrorKind::Divergence`] error. This is the only detector for
//! corruption that stays conserved (e.g. [`crate::FaultKind::FlipCriticality`]:
//! nothing is lost, arbitration just decides differently from then on).
//!
//! The same machinery also works *across* runs: a stream serialized via
//! [`stream_to_json`] and persisted by a known-good revision (see the
//! `clip-bench` fingerprint-baseline store, gated by `CLIP_FP_BASELINE`)
//! can be handed to [`compare_against_baseline`] by a later revision,
//! localizing a behavioural regression introduced by a code change to its
//! first divergent cadence window and component.
//!
//! Fingerprints ride in [`SimResult::fingerprints`] but are deliberately
//! excluded from its JSON form: artifacts stay byte-identical whether or
//! not a run captured them.

use crate::result::SimResult;
use crate::system::System;
use crate::{run_jobs_checked, RunOptions, SweepJob};
use clip_stats::Json;
use clip_types::{Cycle, Fnv64, SimError, SimErrorKind};

/// One cadence window's per-component state hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFingerprint {
    /// Window index (`cycle / check_cadence`).
    pub window: u64,
    /// Cycle the window was sampled at.
    pub cycle: Cycle,
    /// One hash per component, laid out as
    /// `tile0..tileN-1, llc, txns, noc, dram` (see [`component_name`]).
    pub hashes: Vec<u64>,
}

/// Names the component at `index` in a [`WindowFingerprint::hashes`]
/// layout with `tiles` tiles: `tile{i}`, then `llc`, `txns`, `noc`,
/// `dram`.
pub fn component_name(index: usize, tiles: usize) -> String {
    if index < tiles {
        return format!("tile{index}");
    }
    match index - tiles {
        0 => "llc",
        1 => "txns",
        2 => "noc",
        _ => "dram",
    }
    .to_string()
}

/// Serializes a fingerprint stream as a JSON array of
/// `{"window", "cycle", "hashes"}` objects. Hashes are `u64` and render
/// as exact integers (the JSON tree keeps unsigned integers distinct
/// from floats), so streams round-trip bit-exactly through
/// [`stream_from_json`].
pub fn stream_to_json(stream: &[WindowFingerprint]) -> Json {
    Json::array(stream.iter().map(|w| {
        Json::object([
            ("window", Json::from(w.window)),
            ("cycle", Json::from(w.cycle)),
            (
                "hashes",
                Json::array(w.hashes.iter().map(|&h| Json::from(h))),
            ),
        ])
    }))
}

/// Parses a stream back from the [`stream_to_json`] schema. Returns
/// `None` on any shape mismatch — callers (the on-disk baseline store)
/// treat that as a damaged entry.
pub fn stream_from_json(v: &Json) -> Option<Vec<WindowFingerprint>> {
    let mut out = Vec::new();
    for w in v.as_array()? {
        out.push(WindowFingerprint {
            window: w.get("window")?.as_u64()?,
            cycle: w.get("cycle")?.as_u64()?,
            hashes: w
                .get("hashes")?
                .as_array()?
                .iter()
                .map(|h| h.as_u64())
                .collect::<Option<Vec<u64>>>()?,
        });
    }
    Some(out)
}

impl System {
    /// Captures one window's per-component fingerprint. Read-only.
    ///
    /// `full` selects the hash depth: per-entry state under
    /// `CLIP_CHECK=full`, O(1) occupancy balances under `cheap`. Both
    /// use the same `tile0..tileN-1, llc, txns, noc, dram` layout so
    /// [`compare`] and [`component_name`] work unchanged; the two depths
    /// are never comparable to each other (the baseline store keys them
    /// apart).
    pub(crate) fn capture_fingerprint(&mut self, now: Cycle, full: bool) {
        use clip_dram::DramModel;
        use clip_noc::NocModel;
        let cadence = self.integrity.cadence.max(1);
        let mut hashes = Vec::with_capacity(self.tiles.len() + 4);
        for t in &self.tiles {
            let mut h = Fnv64::new();
            if full {
                t.fingerprint(&mut h);
            } else {
                t.fingerprint_cheap(&mut h);
            }
            hashes.push(h.finish());
        }
        let mut h = Fnv64::new();
        if full {
            self.engine.llc.fingerprint(&mut h);
        } else {
            self.engine.llc.fingerprint_cheap(&mut h);
        }
        hashes.push(h.finish());
        let mut h = Fnv64::new();
        if full {
            self.engine.fingerprint_txns(&mut h);
        } else {
            self.engine.fingerprint_txns_cheap(&mut h);
        }
        hashes.push(h.finish());
        let mut h = Fnv64::new();
        self.engine.noc.model.fingerprint(&mut h, full);
        hashes.push(h.finish());
        let mut h = Fnv64::new();
        self.engine.dram.mem.fingerprint(&mut h, full);
        hashes.push(h.finish());
        self.fingerprints.push(WindowFingerprint {
            window: now / cadence,
            cycle: now,
            hashes,
        });
    }
}

/// Diffs two same-seed runs' fingerprint streams window by window.
///
/// Both runs must have been captured under `CLIP_CHECK=full` with the
/// same `check_cadence`; when either side recorded no fingerprints there
/// is nothing to compare and the result is `Ok`.
///
/// # Errors
///
/// Returns a [`SimErrorKind::Divergence`] error naming the first
/// divergent cadence window and the component that diverged — or, when
/// every shared window agrees but the streams have different lengths,
/// the first unmatched window (the runs took different numbers of
/// cycles, itself a divergence).
pub fn compare(reference: &SimResult, candidate: &SimResult) -> Result<(), SimError> {
    compare_streams(&reference.fingerprints, &candidate.fingerprints)
}

/// [`compare`] over raw streams: the reference side may come from a
/// deserialized on-disk baseline rather than a live run.
pub fn compare_streams(a: &[WindowFingerprint], b: &[WindowFingerprint]) -> Result<(), SimError> {
    if a.is_empty() || b.is_empty() {
        return Ok(());
    }
    for (wa, wb) in a.iter().zip(b.iter()) {
        let tiles = wa.hashes.len().saturating_sub(4);
        if wa.window != wb.window {
            return Err(SimError::new(
                wa.cycle.min(wb.cycle),
                "fingerprint",
                SimErrorKind::Divergence,
                format!(
                    "window streams desynchronized: window {} vs {} (check_cadence differs?)",
                    wa.window, wb.window
                ),
            ));
        }
        // Runs built with different component counts (e.g. different tile
        // counts) must not be silently truncated to the shorter layout:
        // the zip below would otherwise drop the unmatched tail.
        if wa.hashes.len() != wb.hashes.len() {
            return Err(SimError::new(
                wa.cycle,
                "fingerprint",
                SimErrorKind::Divergence,
                format!(
                    "window {} recorded {} vs {} component hashes (tile counts differ?)",
                    wa.window,
                    wa.hashes.len(),
                    wb.hashes.len()
                ),
            ));
        }
        for (i, (ha, hb)) in wa.hashes.iter().zip(wb.hashes.iter()).enumerate() {
            if ha != hb {
                return Err(SimError::new(
                    wa.cycle,
                    component_name(i, tiles),
                    SimErrorKind::Divergence,
                    format!(
                        "first divergent window {} (cycle {}), component {}: \
                         state hash {:#018x} vs {:#018x}",
                        wa.window,
                        wa.cycle,
                        component_name(i, tiles),
                        ha,
                        hb
                    ),
                ));
            }
        }
    }
    if a.len() != b.len() {
        let first_unmatched = a.len().min(b.len());
        let longer = if a.len() > b.len() { a } else { b };
        let w = &longer[first_unmatched];
        return Err(SimError::new(
            w.cycle,
            "fingerprint",
            SimErrorKind::Divergence,
            format!(
                "runs recorded {} vs {} windows; first unmatched window {} (cycle {})",
                a.len(),
                b.len(),
                w.window,
                w.cycle
            ),
        ));
    }
    Ok(())
}

/// Verifies a live run against a persisted known-good stream.
///
/// An empty baseline means "nothing was ever recorded" and passes (there
/// is no claim to check). A *live* run without fingerprints is different:
/// the caller explicitly asked for verification, so silently skipping it
/// would report a regression-free run that was never actually checked —
/// that surfaces as a [`SimErrorKind::Internal`] error instead.
///
/// # Errors
///
/// Returns the first [`SimErrorKind::Divergence`] between the streams
/// (see [`compare`]), or an `Internal` error when the live run captured
/// no fingerprints (it was run with audits off entirely).
pub fn compare_against_baseline(
    baseline: &[WindowFingerprint],
    live: &SimResult,
) -> Result<(), SimError> {
    if baseline.is_empty() {
        return Ok(());
    }
    if live.fingerprints.is_empty() {
        return Err(SimError::new(
            0,
            "fingerprint",
            SimErrorKind::Internal,
            "baseline verification requested but the live run captured no fingerprints \
             (fingerprints require audits: CLIP_CHECK=full or the default cheap level)",
        ));
    }
    compare_streams(baseline, &live.fingerprints)
}

/// Localizes one job's faulted outcome against its clean re-run: diff
/// the fingerprint streams when both completed, surface the clean run's
/// failure as an `Internal` error when the reference is missing (a
/// silently skipped localization would report the faulted result as
/// verified), and pass faulted failures through untouched.
fn localize_outcome(
    faulted: Result<SimResult, SimError>,
    clean: Result<SimResult, SimError>,
) -> Result<SimResult, SimError> {
    match (faulted, clean) {
        (Ok(f), Ok(c)) => compare(&c, &f).map(|()| f),
        (Ok(_), Err(e)) => Err(SimError::new(
            e.cycle,
            "fingerprint",
            SimErrorKind::Internal,
            format!("divergence localization skipped: the clean reference re-run failed: {e}"),
        )),
        (faulted, _) => faulted,
    }
}

/// Runs a batch through [`run_jobs_checked`] and localizes divergence the
/// auditors cannot see: when `opts.fault` is armed, each job that still
/// completes cleanly is re-run with the fault disarmed and its
/// fingerprint stream diffed against the clean run via [`compare`]. A
/// conserved corruption (e.g. `FlipCriticality`) thereby surfaces as a
/// `Divergence` error naming the first divergent window and component
/// instead of silently skewing the result.
///
/// Capturing fingerprints requires audits: under `CLIP_CHECK=full` the
/// streams are maximally sensitive, under the default `cheap` level only
/// occupancy-visible corruption localizes, and with audits off this is
/// exactly `run_jobs_checked`. Without an armed fault there is no reference to
/// diff against and the batch also passes through unchanged. A clean
/// re-run that itself fails surfaces as an [`SimErrorKind::Internal`]
/// error naming the reference failure — never as a silently unverified
/// faulted result.
pub fn run_jobs_localized(
    jobs: &[SweepJob],
    opts: &RunOptions,
) -> Vec<Result<SimResult, SimError>> {
    let outcomes = run_jobs_checked(jobs, opts);
    if opts.fault.is_none() {
        return outcomes;
    }
    let clean_opts = RunOptions {
        fault: None,
        ..opts.clone()
    };
    let clean = run_jobs_checked(jobs, &clean_opts);
    outcomes
        .into_iter()
        .zip(clean)
        .map(|(faulted, clean)| localize_outcome(faulted, clean))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(window: u64, cycle: Cycle, hashes: &[u64]) -> WindowFingerprint {
        WindowFingerprint {
            window,
            cycle,
            hashes: hashes.to_vec(),
        }
    }

    fn result_with(stream: Vec<WindowFingerprint>) -> SimResult {
        SimResult {
            fingerprints: stream,
            ..SimResult::default()
        }
    }

    #[test]
    fn component_names_follow_the_layout() {
        // (index, tiles) -> expected name, over the documented layout:
        // tile0..tileN-1, llc, txns, noc, dram.
        let table: &[(usize, usize, &str)] = &[
            (0, 4, "tile0"),
            (3, 4, "tile3"),
            (4, 4, "llc"),
            (5, 4, "txns"),
            (6, 4, "noc"),
            (7, 4, "dram"),
            (0, 1, "tile0"),
            (1, 1, "llc"),
            (2, 1, "txns"),
            (3, 1, "noc"),
            (4, 1, "dram"),
            // Indices past the layout still name the last slot (defensive).
            (9, 4, "dram"),
        ];
        for &(index, tiles, expect) in table {
            assert_eq!(
                component_name(index, tiles),
                expect,
                "component_name({index}, {tiles})"
            );
        }
    }

    #[test]
    fn identical_and_empty_streams_compare_clean() {
        let a = vec![window(0, 16, &[1, 2, 3]), window(1, 32, &[4, 5, 6])];
        compare_streams(&a, &a.clone()).expect("identical streams agree");
        compare_streams(&[], &a).expect("an empty side has nothing to check");
        compare_streams(&a, &[]).expect("an empty side has nothing to check");
    }

    #[test]
    fn first_divergent_component_is_named() {
        let a = vec![
            window(0, 16, &[1, 2, 3, 4, 5, 6]),
            window(1, 32, &[5, 6, 7, 8, 9, 10]),
        ];
        let mut b = a.clone();
        b[1].hashes[2] = 99; // tiles = 6 - 4 = 2, so index 2 is "llc".
        let err = compare_streams(&a, &b).expect_err("must diverge");
        assert_eq!(err.kind, SimErrorKind::Divergence);
        assert_eq!(err.component, "llc");
        assert_eq!(err.cycle, 32);
        assert!(err.detail.contains("first divergent window 1"), "{err}");
    }

    #[test]
    fn component_count_mismatch_is_reported_not_truncated() {
        // The shorter window's hashes are a strict prefix of the longer
        // one's: a plain zip would see no difference and walk on. The
        // length check must fire before the per-component loop does.
        let a = vec![window(0, 16, &[1, 2, 3, 4])];
        let b = vec![window(0, 16, &[1, 2, 3, 4, 5, 6])];
        let err = compare_streams(&a, &b).expect_err("layouts differ");
        assert_eq!(err.kind, SimErrorKind::Divergence);
        assert_eq!(err.component, "fingerprint");
        assert!(err.detail.contains("4 vs 6 component hashes"), "{err}");
    }

    #[test]
    fn desynchronized_windows_are_reported() {
        let a = vec![window(0, 16, &[1, 2, 3])];
        let b = vec![window(2, 48, &[1, 2, 3])];
        let err = compare_streams(&a, &b).expect_err("cadences differ");
        assert_eq!(err.kind, SimErrorKind::Divergence);
        assert!(err.detail.contains("desynchronized"), "{err}");
        assert!(err.detail.contains("window 0 vs 2"), "{err}");
    }

    #[test]
    fn length_mismatch_tail_names_the_first_unmatched_window() {
        let shared = window(0, 16, &[1, 2, 3]);
        let a = vec![shared.clone()];
        let b = vec![shared, window(1, 32, &[4, 5, 6])];
        let err = compare_streams(&a, &b).expect_err("stream lengths differ");
        assert_eq!(err.kind, SimErrorKind::Divergence);
        assert!(err.detail.contains("1 vs 2 windows"), "{err}");
        assert!(err.detail.contains("first unmatched window 1"), "{err}");
        assert_eq!(err.cycle, 32);
    }

    #[test]
    fn streams_roundtrip_through_json_bit_exactly() {
        // u64::MAX would be mangled by any float detour.
        let stream = vec![
            window(0, 16, &[u64::MAX, 0, 0xdead_beef_cafe_f00d]),
            window(1, 32, &[1, 2, 3]),
        ];
        let text = stream_to_json(&stream).render();
        let back = stream_from_json(&Json::parse(&text).expect("parses")).expect("roundtrips");
        assert_eq!(back, stream);
        assert!(stream_from_json(&Json::parse("[{\"window\":0}]").unwrap()).is_none());
    }

    #[test]
    fn baseline_comparison_requires_live_fingerprints() {
        let baseline = vec![window(0, 16, &[1, 2, 3])];
        compare_against_baseline(&[], &result_with(Vec::new()))
            .expect("no baseline means nothing to check");
        let err = compare_against_baseline(&baseline, &result_with(Vec::new()))
            .expect_err("an unverified live run must not pass silently");
        assert_eq!(err.kind, SimErrorKind::Internal);
        assert!(err.detail.contains("CLIP_CHECK=full"), "{err}");
        compare_against_baseline(&baseline, &result_with(baseline.clone()))
            .expect("matching live stream verifies");
    }

    #[test]
    fn failed_clean_rerun_surfaces_instead_of_skipping_localization() {
        // Regression: the (Ok, Err) arm used to fall through to the
        // faulted result, silently skipping localization.
        let clean_err = SimError::new(7, "watchdog", SimErrorKind::Deadlock, "stuck");
        let err = localize_outcome(Ok(SimResult::default()), Err(clean_err))
            .expect_err("a missing reference must be loud");
        assert_eq!(err.kind, SimErrorKind::Internal);
        assert_eq!(err.component, "fingerprint");
        assert_eq!(err.cycle, 7);
        assert!(
            err.detail.contains("clean reference re-run failed"),
            "{err}"
        );
        assert!(err.detail.contains("deadlock"), "{err}");

        // Faulted failures still pass through untouched.
        let faulted_err = SimError::new(3, "noc", SimErrorKind::Conservation, "flit lost");
        let out = localize_outcome(Err(faulted_err.clone()), Ok(SimResult::default()))
            .expect_err("faulted failure passes through");
        assert_eq!(out, faulted_err);
    }
}
