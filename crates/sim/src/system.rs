//! The many-core system: wiring and the cycle loop.
//!
//! `System` composes the per-core tiles ([`crate::tile`]) and the
//! [`Engine`] (clock, NoC, DRAM, the clocked LLC — [`crate::llc`] —
//! transactions, event wheel). Demand and prefetch requests flow
//! L1D → L2 → (NoC) → LLC slice → (NoC) → DRAM channel and back, with
//! MSHRs at every level providing merging and back-pressure. All the
//! contention the paper depends on is modeled: finite MSHRs, NoC link/VC
//! arbitration, DRAM queues, banks and the data bus.
//!
//! The subsystem logic lives next to its state: core-side paths in
//! `tile.rs`, uncore message flow in `engine.rs`, delta reporting in
//! `snapshot.rs`. This file only builds the parts and drives them
//! through the [`Tick`] contract each cycle.

use crate::engine::{DramImpl, Engine, EngineParams, Ev, NocChoice, NocImpl};
use crate::fault::{FaultHarness, FaultKind, FaultSpec};
use crate::integrity::{Integrity, JobDeadline, DEFAULT_CHECK_CADENCE, DEFAULT_WATCHDOG_WINDOW};
use crate::result::SimResult;
use crate::scheme::Scheme;
use crate::tile::{Tile, TileTick, PF_QUEUE_CAP};
use clip_cache::{Cache, MshrFile};
use clip_core::DynamicClip;
use clip_cpu::Core;
use clip_crit::{EvalCounts, PredictorEvaluator};
use clip_dram::DramModel;
use clip_noc::NocModel;
use clip_offchip::{DsPatch, Hermes};
use clip_prefetch::PrefetchCandidate;
use clip_throttle::EpochFeedback;
use clip_trace::Mix;
use clip_types::{CheckLevel, Cycle, MemLevel, Port, PrefetcherKind, SimConfig, SimError, Tick};
use std::collections::HashMap;

const THROTTLE_EPOCH: Cycle = 8192;
const DSPATCH_EPOCH: Cycle = 2048;

/// The simulated many-core system.
pub struct System {
    pub(crate) cfg: SimConfig,
    pub(crate) scheme: Scheme,
    pub(crate) tiles: Vec<Tile>,
    /// Shared non-tile state: clock, NoC, DRAM, LLC, transactions, events.
    pub(crate) engine: Engine,
    pub(crate) cand_scratch: Vec<PrefetchCandidate>,
    pub(crate) branch_scratch: Vec<bool>,
    dspatch_prev_channel: Vec<u64>,
    /// Timeline sampling interval in cycles (0 = off).
    pub(crate) timeline_interval: Cycle,
    pub(crate) timeline: Vec<crate::result::TimelinePoint>,
    pub(crate) tl_prev: (u64, u64, u64), // (retired, dram transfers, prefetches)
    pub(crate) tl_start: Cycle,
    /// Watchdog + auditor state (see [`crate::integrity`]).
    pub(crate) integrity: Integrity,
    /// Armed wall-clock budget, if any (see [`crate::integrity`]).
    pub(crate) deadline: Option<JobDeadline>,
    /// Armed fault, if any (see [`crate::fault`]).
    pub(crate) fault: Option<FaultHarness>,
    /// Per-window state fingerprints, captured under `CLIP_CHECK=full`
    /// (see [`crate::fingerprint`]).
    pub(crate) fingerprints: Vec<crate::fingerprint::WindowFingerprint>,
}

impl System {
    /// Builds the system for a mix under a scheme.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the mix does not match
    /// `cfg.cores`.
    pub fn new(cfg: &SimConfig, scheme: &Scheme, mix: &Mix, seed: u64, noc: NocChoice) -> Self {
        cfg.validate().expect("valid configuration");
        assert_eq!(mix.cores(), cfg.cores, "mix must match core count");

        let tiles = (0..cfg.cores)
            .map(|i| {
                let spec = &mix.workloads[i];
                let clip_at_l1 = cfg.l1_prefetcher != PrefetcherKind::None;
                Tile {
                    core: Some(Core::new(&cfg.core)),
                    gen: Some(spec.generator(seed ^ (i as u64).wrapping_mul(0x9E37))),
                    addr_base: ((i as u64) + 1) << 42,
                    l1d: Cache::new(&cfg.l1d),
                    l1_mshr: MshrFile::new(cfg.l1d.mshrs),
                    l2: Cache::new(&cfg.l2),
                    l2_mshr: MshrFile::new(cfg.l2.mshrs),
                    l1_pf: (cfg.l1_prefetcher != PrefetcherKind::None)
                        .then(|| clip_prefetch::build(cfg.l1_prefetcher)),
                    l2_pf: (cfg.l2_prefetcher != PrefetcherKind::None)
                        .then(|| clip_prefetch::build(cfg.l2_prefetcher)),
                    clip: scheme.clip.clone().map(|mut c| {
                        // CLIP arbitrates between the member engines of a
                        // composite ensemble at its attachment level.
                        let attached = if clip_at_l1 {
                            cfg.l1_prefetcher
                        } else {
                            cfg.l2_prefetcher
                        };
                        if attached == PrefetcherKind::Composite {
                            c.engines = clip_prefetch::COMPOSITE_ENGINES;
                        }
                        match &scheme.dynamic {
                            Some(d) => DynamicClip::new(clip_core::DynamicClipConfig {
                                clip: c,
                                ..d.clone()
                            }),
                            None => DynamicClip::pinned(c),
                        }
                    }),
                    clip_at_l1,
                    clip_eval: EvalCounts::default(),
                    ip_behavior: HashMap::new(),
                    crit_gate: scheme.crit_gate.map(clip_crit::build),
                    throttler: scheme.throttler.map(clip_throttle::build),
                    hermes: scheme.hermes.then(Hermes::new),
                    dspatch: scheme.dspatch.then(DsPatch::new),
                    evaluators: if scheme.evaluate_baselines {
                        clip_crit::BaselineKind::all()
                            .into_iter()
                            .map(|k| PredictorEvaluator::new(clip_crit::build(k)))
                            .collect()
                    } else {
                        Vec::new()
                    },
                    pf_queue: Port::bounded(PF_QUEUE_CAP),
                    lat: crate::result::LatencyReport::default(),
                    pf_candidates: 0,
                    pf_issued: 0,
                    l1_window_accesses: 0,
                    window_start: 0,
                    epoch_useful: 0,
                    epoch_useless: 0,
                    epoch_late: 0,
                    warmup_retired: 0,
                    finish_cycle: None,
                    pf_queued: 0,
                    pf_dequeued: 0,
                    pf_queued_eng: [0; clip_types::MAX_PF_ENGINES],
                    pf_dequeued_eng: [0; clip_types::MAX_PF_ENGINES],
                }
            })
            .collect();

        System {
            cfg: cfg.clone(),
            scheme: scheme.clone(),
            tiles,
            engine: Engine::new(
                NocImpl::build(noc, cfg),
                DramImpl::build(&cfg.dram),
                crate::llc::ClockedLlc::new(cfg),
                EngineParams::from_config(cfg),
            ),
            cand_scratch: Vec::with_capacity(32),
            branch_scratch: Vec::with_capacity(16),
            dspatch_prev_channel: vec![0; cfg.dram.channels],
            timeline_interval: 0,
            timeline: Vec::new(),
            tl_prev: (0, 0, 0),
            tl_start: 0,
            integrity: Integrity::new(
                CheckLevel::from_env(),
                DEFAULT_CHECK_CADENCE,
                DEFAULT_WATCHDOG_WINDOW,
            ),
            fault: None,
            deadline: None,
            fingerprints: Vec::new(),
        }
    }

    /// Overrides the auditor configuration (`0` keeps a default).
    pub(crate) fn set_integrity(&mut self, level: CheckLevel, cadence: Cycle, window: Cycle) {
        self.integrity = Integrity::new(
            level,
            if cadence == 0 {
                DEFAULT_CHECK_CADENCE
            } else {
                cadence
            },
            if window == 0 {
                DEFAULT_WATCHDOG_WINDOW
            } else {
                window
            },
        );
    }

    /// Arms a fault for this run.
    pub(crate) fn set_fault(&mut self, spec: FaultSpec, seed: u64) {
        self.fault = Some(FaultHarness::new(spec, seed));
    }

    /// Arms (or clears) the wall-clock budget for this run; the clock
    /// starts now, not at the first tick.
    pub(crate) fn set_deadline(&mut self, budget: Option<std::time::Duration>) {
        self.deadline = budget.map(|budget| JobDeadline {
            start: std::time::Instant::now(),
            budget,
        });
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.engine.now()
    }

    // ------------------------------------------------------------------
    // The cycle loop.
    // ------------------------------------------------------------------

    /// Advances the whole system one cycle: spilled packets re-inject,
    /// the clocked NoC, DRAM and LLC components tick and their output
    /// channels drain into the uncore handlers, the event wheel fires,
    /// and every tile ticks (prefetch issue + core).
    pub fn tick(&mut self) {
        let now = self.engine.now();

        self.apply_faults(now);
        self.engine.drain_outboxes();

        // Clocked components produce into their output channels...
        self.engine.noc.tick(now);
        self.engine.dram.tick(now);
        self.engine.llc.tick(now);

        // ...which drain into the engine-owned uncore handlers.
        let lose_deliveries = self
            .fault
            .as_ref()
            .is_some_and(|f| f.spec.kind == FaultKind::LoseDelivery && now >= f.spec.at);
        self.engine.drain_uncore(now, lose_deliveries);

        // Local scheduled events: tile-facing ones are handled here,
        // uncore ones forward straight back into the engine.
        for ev in self.engine.take_events() {
            self.handle_event(ev);
        }

        // Tiles: prefetch issue + core tick.
        for t in 0..self.tiles.len() {
            TileTick { sys: self, t }.tick(now);
        }

        // Periodic controllers.
        if now > 0 && now.is_multiple_of(THROTTLE_EPOCH) {
            self.throttle_epoch(now);
        }
        if now > 0 && now.is_multiple_of(DSPATCH_EPOCH) {
            self.dspatch_epoch();
            // Dynamic CLIP samples *overall* utilization (not the myopic
            // per-controller view).
            let bw = self.engine.dram.mem.bandwidth_utilization(now.max(1));
            for tile in self.tiles.iter_mut() {
                if let Some(clip) = tile.clip.as_mut() {
                    clip.on_bandwidth_sample(bw);
                }
            }
        }

        self.engine.clock.advance();
    }

    /// Dispatches one event-wheel entry. Tile-facing events (responses,
    /// L2 lookups, data returns) need tile state and stay here; the
    /// uncore events forward to the [`Engine`], which owns those paths.
    pub(crate) fn handle_event(&mut self, ev: Ev) {
        let now = self.engine.now();
        match ev {
            Ev::L1Respond { tile, req, issue } => {
                self.respond_core(tile as usize, req, MemLevel::L1, issue, now);
            }
            Ev::L2Lookup { txn } => self.l2_lookup(txn, now),
            Ev::TileData { txn } => self.tile_data(txn, now),
            Ev::DramEnqueue { txn } => self.engine.dram_enqueue(txn, now),
            Ev::WbDram { line } => self.engine.wb_dram(line, now),
        }
    }

    // ------------------------------------------------------------------
    // The skip-ahead scheduler.
    // ------------------------------------------------------------------

    /// The earliest cycle `>= now` that must actually be simulated: the
    /// minimum over every component's [`Tick::next_activity`] answer and
    /// the engine-level wheel constraints (periodic controllers, audit
    /// cadence, timeline sampling, the armed fault's trigger cycle).
    /// Always finite — the DSPatch epoch recurs every `DSPATCH_EPOCH`
    /// cycles and mutates controller state unconditionally, so no skip
    /// ever exceeds one epoch.
    fn next_interesting(&mut self, in_measure: bool, debug_stall: bool) -> Cycle {
        let now = self.engine.now();
        // Periodic controllers fire on every positive multiple of
        // DSPATCH_EPOCH (THROTTLE_EPOCH is a multiple of it).
        let mut next = if now == 0 {
            DSPATCH_EPOCH
        } else {
            now.next_multiple_of(DSPATCH_EPOCH)
        };
        let fold = |cand: Cycle, next: &mut Cycle| {
            if cand < *next {
                *next = cand;
            }
        };
        // Audits + watchdog + fingerprints run post-advance at cadence
        // multiples: simulating cycle `m - 1` makes `integrity_tick(m)`
        // fire exactly as in a cycle-by-cycle run. An armed deadline
        // shares those boundaries (even at `CLIP_CHECK=off`), so it trips
        // at the same simulated cycle under skip-ahead and stepping.
        if self.integrity.level.audits_enabled() || self.deadline.is_some() {
            fold(
                (now + 1).next_multiple_of(self.integrity.cadence) - 1,
                &mut next,
            );
        }
        // Timeline samples are taken post-advance at interval multiples
        // relative to the measurement start.
        if in_measure && self.timeline_interval > 0 {
            let rel = (now + 1).saturating_sub(self.tl_start);
            fold(
                self.tl_start + rel.next_multiple_of(self.timeline_interval) - 1,
                &mut next,
            );
        }
        // CLIP_DEBUG_STALL dumps post-advance every 100k cycles.
        if debug_stall {
            fold((now + 1).next_multiple_of(100_000) - 1, &mut next);
        }
        // An armed, unfired fault must attempt injection at its trigger
        // cycle and then on *every* later cycle until it lands: the
        // selector draws from the seeded RNG per attempt, so skipping
        // retries would desynchronize it from a cycle-by-cycle run.
        if let Some(f) = self.fault.as_ref() {
            if f.fired.is_none() {
                fold(f.spec.at.max(now), &mut next);
            }
        }
        // Component answers are always `>= now`, so the fold can never go
        // below `now`: bail out the moment any source pins the minimum
        // there — every later scan is pure overhead.
        if let Some(c) = self.engine.next_activity(now) {
            fold(c, &mut next);
            if next == now {
                return now;
            }
        }
        for t in &self.tiles {
            if let Some(c) = t.next_activity(now) {
                fold(c, &mut next);
                if next == now {
                    return now;
                }
            }
        }
        next
    }

    /// Advances the clock straight to `target`, settling the per-cycle
    /// bulk accounting the skipped ticks would have done (core stall /
    /// dispatch-block counters, the DRAM bus-busy tail). Only sound when
    /// every cycle in `now..target` is quiescent per
    /// [`System::next_interesting`].
    fn skip_to(&mut self, target: Cycle) {
        let now = self.engine.now();
        debug_assert!(target > now);
        let span = target - now;
        for t in self.tiles.iter_mut() {
            t.core
                .as_mut()
                .expect("core present")
                .skip_stalled(now, span);
        }
        self.engine.dram.mem.skip_idle(now, target);
        self.engine.clock.advance_to(target);
    }

    /// One scheduler step: when the next interesting cycle is in the
    /// future, skip straight to it (capped at `max_cycles`) and report
    /// `true`; otherwise the current cycle must be ticked.
    fn try_skip(&mut self, max_cycles: Cycle, in_measure: bool, debug_stall: bool) -> bool {
        let now = self.engine.now();
        let target = self
            .next_interesting(in_measure, debug_stall)
            .min(max_cycles);
        if target > now {
            self.skip_to(target);
            true
        } else {
            false
        }
    }

    /// Triggers the armed one-shot fault once `now` reaches its cycle,
    /// retrying each cycle until a victim exists. `LoseDelivery` only
    /// records its start here; the delivery-drain loop does the damage.
    fn apply_faults(&mut self, now: Cycle) {
        let Some(f) = self.fault.as_ref() else { return };
        if f.fired.is_some() || now < f.spec.at {
            return;
        }
        let kind = f.spec.kind;
        let sel = self
            .fault
            .as_mut()
            .expect("checked present above")
            .selector();
        let landed = match kind {
            FaultKind::DropFlit => self.engine.noc.model.inject_drop_flit(sel),
            FaultKind::SwallowDramCompletion => self.engine.dram.mem.inject_swallow_completion(sel),
            FaultKind::LeakLlcMshr => self.engine.llc.inject_mshr_leak(sel),
            FaultKind::LoseDelivery => true,
            FaultKind::FlipCriticality => self.engine.flip_prefetch_criticality(sel),
            FaultKind::DuplicateDelivery => self.inject_duplicate_delivery(sel),
            FaultKind::CorruptPrefetchAddr => self.inject_corrupt_prefetch(sel),
            FaultKind::StaleRetire => self.inject_stale_retire(sel),
        };
        if landed {
            self.fault.as_mut().expect("checked present above").fired = Some(now);
        }
    }

    /// Fault injection: duplicated load wakeup on the `sel`-th tile with a
    /// load in flight (see [`Core::inject_duplicate_wakeup`]).
    fn inject_duplicate_delivery(&mut self, sel: u64) -> bool {
        let candidates: Vec<usize> = self
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.core.as_ref().is_some_and(|c| c.loads_in_flight() > 0))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let t = candidates[(sel % candidates.len() as u64) as usize];
        self.tiles[t]
            .core
            .as_mut()
            .expect("core present")
            .inject_duplicate_wakeup(sel)
    }

    /// Fault injection: corrupted queued-prefetch address on the `sel`-th
    /// tile with a non-empty prefetch queue.
    fn inject_corrupt_prefetch(&mut self, sel: u64) -> bool {
        let candidates: Vec<usize> = self
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.pf_queue.is_empty())
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let t = candidates[(sel % candidates.len() as u64) as usize];
        self.tiles[t].corrupt_queued_prefetch(sel).is_some()
    }

    /// Fault injection: uncredited ROB-head retire on the `sel`-th tile
    /// with a non-empty ROB.
    fn inject_stale_retire(&mut self, sel: u64) -> bool {
        let candidates: Vec<usize> = self
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.core.as_ref().is_some_and(|c| c.rob_occupancy() > 0))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let t = candidates[(sel % candidates.len() as u64) as usize];
        self.tiles[t]
            .core
            .as_mut()
            .expect("core present")
            .inject_stale_retire()
    }

    fn throttle_epoch(&mut self, now: Cycle) {
        let bw = self
            .engine
            .dram
            .mem
            .bandwidth_utilization(THROTTLE_EPOCH.max(now));
        let total_transfers: u64 = {
            let s = self.engine.dram.mem.total_stats();
            s.reads + s.writes
        };
        let cores = self.cfg.cores as f64;
        for t in 0..self.tiles.len() {
            if self.tiles[t].throttler.is_none() {
                continue;
            }
            let (useful, useless, late) = {
                let tile = &self.tiles[t];
                (tile.useful(), tile.useless(), tile.late())
            };
            let tile = &mut self.tiles[t];
            let du = useful - tile.epoch_useful;
            let dl = useless - tile.epoch_useless;
            let dlate = late - tile.epoch_late;
            tile.epoch_useful = useful;
            tile.epoch_useless = useless;
            tile.epoch_late = late;
            let resolved = du + dl;
            let accuracy = if resolved == 0 {
                1.0
            } else {
                du as f64 / resolved as f64
            };
            let lateness = if du + dlate == 0 {
                0.0
            } else {
                dlate as f64 / (du + dlate) as f64
            };
            let fb = EpochFeedback {
                accuracy,
                lateness,
                pollution: if resolved == 0 {
                    0.0
                } else {
                    (dl as f64 / resolved as f64).min(1.0)
                },
                bandwidth_util: bw,
                traffic_share: if total_transfers == 0 {
                    0.0
                } else {
                    // Approximation: assume this core's share is its
                    // prefetch issue intensity relative to the system.
                    1.0 / cores
                },
                utility: accuracy * (du as f64 / (resolved.max(1)) as f64),
            };
            let level = tile
                .throttler
                .as_mut()
                .expect("checked above")
                .on_epoch(&fb);
            if let Some(pf) = tile.l1_pf.as_mut() {
                pf.set_level(level);
            }
            if let Some(pf) = tile.l2_pf.as_mut() {
                pf.set_level(level);
            }
        }
    }

    fn dspatch_epoch(&mut self) {
        // Per-controller utilization over the last epoch — the myopic
        // signal DSPatch uses.
        let mut max_util = 0.0f64;
        for ch in 0..self.cfg.dram.channels {
            let s = self.engine.dram.mem.stats(ch);
            let transfers = s.reads + s.writes;
            let delta = transfers - self.dspatch_prev_channel[ch];
            self.dspatch_prev_channel[ch] = transfers;
            let peak = DSPATCH_EPOCH as f64 / self.cfg.dram.burst_cycles as f64;
            max_util = max_util.max(delta as f64 / peak);
        }
        for tile in self.tiles.iter_mut() {
            if let Some(ds) = tile.dspatch.as_mut() {
                ds.set_bandwidth(max_util.min(1.0));
            }
        }
    }

    // ------------------------------------------------------------------
    // Run driver.
    // ------------------------------------------------------------------

    /// Runs warmup + measurement and assembles the result, panicking on
    /// an integrity failure. Prefer [`System::run_checked`] where the
    /// caller can surface errors.
    ///
    /// # Panics
    ///
    /// Panics when the watchdog or an auditor reports a [`SimError`].
    pub fn run(&mut self, warmup: u64, measure: u64, max_cycles: Cycle) -> SimResult {
        self.run_checked(warmup, measure, max_cycles)
            .unwrap_or_else(|e| panic!("simulation integrity failure: {e}"))
    }

    /// Runs warmup + measurement and assembles the result.
    ///
    /// Cores that reach `measure` retired instructions keep executing (the
    /// paper's replay rule) until every core is done. `max_cycles` bounds
    /// pathological runs; unfinished cores report their partial IPC.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the forward-progress watchdog or a
    /// conservation auditor fires (see [`crate::integrity`]). Audits are
    /// read-only: a run that completes returns bit-identical results at
    /// every [`CheckLevel`].
    pub fn run_checked(
        &mut self,
        warmup: u64,
        measure: u64,
        max_cycles: Cycle,
    ) -> Result<SimResult, SimError> {
        // Warmup phase.
        let debug_stall = std::env::var("CLIP_DEBUG_STALL").is_ok();
        let step = crate::step_mode();
        while self.cycle() < max_cycles {
            if self
                .tiles
                .iter()
                .all(|t| t.core.as_ref().expect("core present").retired() >= warmup)
            {
                break;
            }
            if !step && self.try_skip(max_cycles, false, debug_stall) {
                continue;
            }
            self.tick();
            self.integrity_tick(self.cycle())?;
            self.deadline_tick(self.cycle())?;
            if debug_stall && self.cycle().is_multiple_of(100_000) {
                self.dump_state();
            }
        }
        for t in self.tiles.iter_mut() {
            t.warmup_retired = t.core.as_ref().expect("core present").retired();
            t.finish_cycle = None;
        }
        let snap = self.snapshot();
        self.tl_start = self.cycle();
        self.tl_prev = self.timeline_totals();

        // Measurement phase.
        while self.cycle() < max_cycles {
            let mut all_done = true;
            for t in self.tiles.iter_mut() {
                if t.finish_cycle.is_none() {
                    let retired = t.core.as_ref().expect("core present").retired();
                    if retired >= t.warmup_retired + measure {
                        t.finish_cycle = Some(0); // filled below with cycle
                    } else {
                        all_done = false;
                    }
                }
            }
            // Record the actual finish cycle for cores that just finished.
            let now = self.cycle();
            for t in self.tiles.iter_mut() {
                if t.finish_cycle == Some(0) {
                    t.finish_cycle = Some(now.max(snap.cycle + 1));
                }
            }
            if all_done {
                break;
            }
            if !step && self.try_skip(max_cycles, true, false) {
                continue;
            }
            self.tick();
            self.integrity_tick(self.cycle())?;
            self.deadline_tick(self.cycle())?;
            if self.timeline_interval > 0
                && (self.cycle() - self.tl_start).is_multiple_of(self.timeline_interval)
            {
                self.sample_timeline(self.cycle());
            }
        }

        Ok(self.assemble(snap, measure))
    }
}
