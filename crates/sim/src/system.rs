//! The many-core system: tiles (core + private L1D/L2 + prefetcher +
//! optional CLIP / throttler / gates), sliced LLC, mesh NoC, and DRAM
//! channels, advanced one cycle at a time.
//!
//! Demand and prefetch requests flow L1D → L2 → (NoC) → LLC slice →
//! (NoC) → DRAM channel and back, with MSHRs at every level providing
//! merging and back-pressure. All the contention the paper depends on is
//! modeled: finite MSHRs, NoC link/VC arbitration, DRAM queues, banks and
//! the data bus.

use crate::result::{ClipReport, LatencyReport, MissReport, PrefetchReport, SimResult};
use crate::scheme::Scheme;
use clip_cache::{Cache, LookupOutcome, MshrFile};
use clip_core::{Decision, DynamicClip};
use clip_cpu::{Core, MemIssuePort};
use clip_crit::{CriticalityPredictor, EvalCounts, PredictorEvaluator};
use clip_dram::DramSystem;
use clip_noc::{AnalyticNoc, MeshNoc, NocModel};
use clip_offchip::{DsPatch, Hermes};
use clip_prefetch::{AccessInfo, PrefetchCandidate, Prefetcher};
use clip_stats::energy::EnergyCounts;
use clip_throttle::{EpochFeedback, Throttler};
use clip_trace::{InstrKind, Mix, TraceGenerator};
use clip_types::{Addr, Cycle, Ip, LineAddr, MemLevel, PrefetcherKind, Priority, ReqId, SimConfig};
use std::collections::{HashMap, VecDeque};

const EVENT_RING: usize = 1 << 15;
const PF_QUEUE_CAP: usize = 32;
const PF_ISSUE_PER_CYCLE: usize = 2;
const RETRY_DELAY: Cycle = 4;
/// L2 MSHR entries kept free for demand misses; prefetches beyond this
/// occupancy are dropped.
const L2_MSHR_PF_RESERVE: usize = 8;
const THROTTLE_EPOCH: Cycle = 8192;
const DSPATCH_EPOCH: Cycle = 2048;

/// Which NoC implementation a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NocChoice {
    /// Flit-level wormhole mesh (default; the full substrate).
    #[default]
    Mesh,
    /// Link-schedule analytic model (fast, for wide sweeps).
    Analytic,
}

enum NocImpl {
    Mesh(MeshNoc),
    Analytic(AnalyticNoc),
}

impl NocImpl {
    fn as_model(&mut self) -> &mut dyn NocModel {
        match self {
            NocImpl::Mesh(m) => m,
            NocImpl::Analytic(a) => a,
        }
    }

    fn flit_hops(&self) -> u64 {
        match self {
            NocImpl::Mesh(m) => m.flit_hops(),
            NocImpl::Analytic(a) => a.flit_hops(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    Demand,
    Store,
    Prefetch {
        fill_l1: bool,
        critical: bool,
        trigger_ip: Ip,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeState {
    None,
    Pending,
    Done,
    /// The transaction reached the memory controller while the probe was
    /// still in flight; respond as soon as the probe lands.
    TxnWaiting,
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    tile: u16,
    ip: Ip,
    line: LineAddr,
    kind: TxnKind,
    issue: Cycle,
    level: MemLevel,
    probe: ProbeState,
    /// Unique id of this transaction's Hermes probe, if one is in flight.
    probe_id: Option<u64>,
    live: bool,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// L1 hit: respond to the core.
    L1Respond {
        tile: u16,
        req: ReqId,
        issue: Cycle,
    },
    L2Lookup {
        txn: u32,
    },
    LlcLookup {
        txn: u32,
    },
    DramEnqueue {
        txn: u32,
    },
    TileData {
        txn: u32,
    },
    /// Retry a DRAM writeback that found the write queue full.
    WbDram {
        line: LineAddr,
    },
}

// NoC payload tags.
const MSG_REQ_LLC: u64 = 0;
const MSG_REQ_MC: u64 = 1;
const MSG_DATA_LLC: u64 = 2;
const MSG_DATA_TILE: u64 = 3;
const MSG_WB_LLC: u64 = 4;
const MSG_WB_MC: u64 = 5;

fn payload(tag: u64, value: u64) -> u64 {
    debug_assert!(value < (1 << 56));
    (tag << 56) | value
}

fn decode(p: u64) -> (u64, u64) {
    (p >> 56, p & ((1 << 56) - 1))
}

/// DRAM ReqId bit marking a Hermes probe.
const PROBE_BIT: u64 = 1 << 62;

#[derive(Debug, Clone, Copy)]
struct QueuedPrefetch {
    line: LineAddr,
    trigger_ip: Ip,
    fill_l1: bool,
    /// True when the candidate came from the L1-trained prefetcher.
    from_l1: bool,
}

struct OutMsg {
    dst: usize,
    flits: usize,
    priority: Priority,
    payload: u64,
}

/// Everything private to one core's tile.
pub(crate) struct Tile {
    core: Option<Core>,
    gen: Option<TraceGenerator>,
    addr_base: u64,
    l1d: Cache,
    l1_mshr: MshrFile,
    l2: Cache,
    l2_mshr: MshrFile,
    l1_pf: Option<Box<dyn Prefetcher>>,
    l2_pf: Option<Box<dyn Prefetcher>>,
    clip: Option<DynamicClip>,
    /// True when CLIP is attached at the L1 (Berti/IPCP); false for the
    /// L2 attachment (Bingo/SPP-PPF).
    clip_at_l1: bool,
    clip_eval: EvalCounts,
    /// Observed criticality per IP: (head-stall count, non-critical
    /// completions, predicted-critical at least once). Drives Figure 15's
    /// static/dynamic split and the Figure 13/14 IP-set metrics.
    ip_behavior: HashMap<u64, (u32, u32, bool)>,
    crit_gate: Option<Box<dyn CriticalityPredictor>>,
    throttler: Option<Box<dyn Throttler>>,
    hermes: Option<Hermes>,
    dspatch: Option<DsPatch>,
    evaluators: Vec<PredictorEvaluator>,
    pf_queue: VecDeque<QueuedPrefetch>,
    lat: LatencyReport,
    pf_candidates: u64,
    pf_issued: u64,
    l1_window_accesses: u64,
    /// Cycle the current CLIP exploration window started (APC sampling).
    window_start: Cycle,
    // Throttler epoch snapshots.
    epoch_useful: u64,
    epoch_useless: u64,
    epoch_late: u64,
    // Measurement bookkeeping.
    warmup_retired: u64,
    finish_cycle: Option<Cycle>,
}

impl Tile {
    fn useful(&self) -> u64 {
        self.l1d.stats().useful_prefetches + self.l2.stats().useful_prefetches
    }

    fn useless(&self) -> u64 {
        self.l1d.stats().useless_prefetches + self.l2.stats().useless_prefetches
    }

    fn late(&self) -> u64 {
        self.l1_mshr.late_prefetch_merges() + self.l2_mshr.late_prefetch_merges()
    }
}

/// Snapshot of counters at the end of warmup, for delta-based reporting.
#[derive(Default, Clone)]
struct Snapshot {
    lat: Vec<LatencyReport>,
    cand: Vec<u64>,
    issued: Vec<u64>,
    useful: Vec<u64>,
    useless: Vec<u64>,
    late: Vec<u64>,
    l1_acc: Vec<u64>,
    l1_miss: Vec<u64>,
    l2_acc: Vec<u64>,
    l2_miss: Vec<u64>,
    llc_acc: u64,
    llc_miss: u64,
    dram_reads: u64,
    dram_writes: u64,
    dram_row_hits: u64,
    noc_hops: u64,
    cycle: Cycle,
    clip_eval: Vec<EvalCounts>,
    l1_fills: Vec<u64>,
    l2_fills: Vec<u64>,
    llc_fills: u64,
}

/// The simulated many-core system.
pub struct System {
    cfg: SimConfig,
    scheme: Scheme,
    tiles: Vec<Tile>,
    llc: Vec<Cache>,
    llc_mshr: Vec<MshrFile>,
    noc: NocImpl,
    dram: DramSystem,
    txns: Vec<Txn>,
    free_txns: Vec<u32>,
    ring: Vec<Vec<Ev>>,
    outbox: Vec<VecDeque<OutMsg>>,
    cycle: Cycle,
    next_req: u64,
    cand_scratch: Vec<PrefetchCandidate>,
    branch_scratch: Vec<bool>,
    dspatch_prev_channel: Vec<u64>,
    /// Timeline sampling interval in cycles (0 = off).
    timeline_interval: Cycle,
    timeline: Vec<crate::result::TimelinePoint>,
    tl_prev: (u64, u64, u64), // (retired, dram transfers, prefetches)
    tl_start: Cycle,
    /// In-flight Hermes probes: unique probe id → owning transaction.
    /// Probe ids must be generation-unique (not slot-derived): transaction
    /// slots are recycled, and a stale completion keyed by slot would be
    /// credited to the wrong transaction, eventually stranding one in
    /// `ProbeState::TxnWaiting` forever.
    probe_map: HashMap<u64, u32>,
    next_probe: u64,
}

impl System {
    /// Builds the system for a mix under a scheme.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or the mix does not match
    /// `cfg.cores`.
    pub fn new(cfg: &SimConfig, scheme: &Scheme, mix: &Mix, seed: u64, noc: NocChoice) -> Self {
        cfg.validate().expect("valid configuration");
        assert_eq!(mix.cores(), cfg.cores, "mix must match core count");

        let nodes = cfg.noc.mesh_cols * cfg.noc.mesh_rows;
        let tiles = (0..cfg.cores)
            .map(|i| {
                let spec = &mix.workloads[i];
                let clip_at_l1 = cfg.l1_prefetcher != PrefetcherKind::None;
                Tile {
                    core: Some(Core::new(&cfg.core)),
                    gen: Some(spec.generator(seed ^ (i as u64).wrapping_mul(0x9E37))),
                    addr_base: ((i as u64) + 1) << 42,
                    l1d: Cache::new(&cfg.l1d),
                    l1_mshr: MshrFile::new(cfg.l1d.mshrs),
                    l2: Cache::new(&cfg.l2),
                    l2_mshr: MshrFile::new(cfg.l2.mshrs),
                    l1_pf: (cfg.l1_prefetcher != PrefetcherKind::None)
                        .then(|| clip_prefetch::build(cfg.l1_prefetcher)),
                    l2_pf: (cfg.l2_prefetcher != PrefetcherKind::None)
                        .then(|| clip_prefetch::build(cfg.l2_prefetcher)),
                    clip: scheme.clip.clone().map(|c| match &scheme.dynamic {
                        Some(d) => DynamicClip::new(clip_core::DynamicClipConfig {
                            clip: c,
                            ..d.clone()
                        }),
                        None => DynamicClip::pinned(c),
                    }),
                    clip_at_l1,
                    clip_eval: EvalCounts::default(),
                    ip_behavior: HashMap::new(),
                    crit_gate: scheme.crit_gate.map(clip_crit::build),
                    throttler: scheme.throttler.map(clip_throttle::build),
                    hermes: scheme.hermes.then(Hermes::new),
                    dspatch: scheme.dspatch.then(DsPatch::new),
                    evaluators: if scheme.evaluate_baselines {
                        clip_crit::BaselineKind::all()
                            .into_iter()
                            .map(|k| PredictorEvaluator::new(clip_crit::build(k)))
                            .collect()
                    } else {
                        Vec::new()
                    },
                    pf_queue: VecDeque::with_capacity(PF_QUEUE_CAP),
                    lat: LatencyReport::default(),
                    pf_candidates: 0,
                    pf_issued: 0,
                    l1_window_accesses: 0,
                    window_start: 0,
                    epoch_useful: 0,
                    epoch_useless: 0,
                    epoch_late: 0,
                    warmup_retired: 0,
                    finish_cycle: None,
                }
            })
            .collect();

        System {
            cfg: cfg.clone(),
            scheme: scheme.clone(),
            tiles,
            llc: (0..cfg.cores).map(|_| Cache::new(&cfg.llc_slice)).collect(),
            llc_mshr: (0..cfg.cores)
                .map(|_| MshrFile::new(cfg.llc_slice.mshrs))
                .collect(),
            noc: match noc {
                NocChoice::Mesh => NocImpl::Mesh(MeshNoc::new(&cfg.noc)),
                NocChoice::Analytic => NocImpl::Analytic(AnalyticNoc::new(&cfg.noc)),
            },
            dram: DramSystem::new(&cfg.dram),
            txns: Vec::with_capacity(4096),
            free_txns: Vec::new(),
            ring: (0..EVENT_RING).map(|_| Vec::new()).collect(),
            outbox: (0..nodes).map(|_| VecDeque::new()).collect(),
            cycle: 0,
            next_req: 1,
            cand_scratch: Vec::with_capacity(32),
            branch_scratch: Vec::with_capacity(16),
            dspatch_prev_channel: vec![0; cfg.dram.channels],
            timeline_interval: 0,
            timeline: Vec::new(),
            tl_prev: (0, 0, 0),
            tl_start: 0,
            probe_map: HashMap::new(),
            next_probe: 0,
        }
    }

    /// Enables timeline sampling every `interval` cycles (0 disables).
    pub fn set_timeline_interval(&mut self, interval: Cycle) {
        self.timeline_interval = interval;
    }

    fn timeline_totals(&self) -> (u64, u64, u64) {
        let retired: u64 = self
            .tiles
            .iter()
            .map(|t| t.core.as_ref().expect("core present").retired())
            .sum();
        let ds = self.dram.total_stats();
        let pf: u64 = self.tiles.iter().map(|t| t.pf_issued).sum();
        (retired, ds.reads + ds.writes, pf)
    }

    fn sample_timeline(&mut self, now: Cycle) {
        let (retired, transfers, prefetches) = self.timeline_totals();
        let interval = self.timeline_interval;
        let d_transfers = transfers - self.tl_prev.1;
        let peak =
            self.cfg.dram.channels as f64 * interval as f64 / self.cfg.dram.burst_cycles as f64;
        self.timeline.push(crate::result::TimelinePoint {
            cycle: now.saturating_sub(self.tl_start),
            retired: retired - self.tl_prev.0,
            dram_transfers: d_transfers,
            bw_util: if peak > 0.0 {
                (d_transfers as f64 / peak).min(1.0)
            } else {
                0.0
            },
            prefetches: prefetches - self.tl_prev.2,
        });
        self.tl_prev = (retired, transfers, prefetches);
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    #[inline]
    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn alloc_txn(&mut self, txn: Txn) -> u32 {
        if let Some(i) = self.free_txns.pop() {
            self.txns[i as usize] = txn;
            i
        } else {
            self.txns.push(txn);
            (self.txns.len() - 1) as u32
        }
    }

    fn free_txn(&mut self, i: u32) {
        if let Some(pid) = self.txns[i as usize].probe_id.take() {
            // Orphan any in-flight probe so its completion is discarded
            // instead of being credited to a future occupant of this slot.
            self.probe_map.remove(&pid);
        }
        self.txns[i as usize].live = false;
        self.free_txns.push(i);
    }

    #[inline]
    fn schedule(&mut self, at: Cycle, ev: Ev) {
        let at = at.max(self.cycle + 1);
        debug_assert!(
            at - self.cycle < EVENT_RING as u64,
            "event beyond ring horizon"
        );
        self.ring[(at as usize) % EVENT_RING].push(ev);
    }

    #[inline]
    fn home_of(&self, line: LineAddr) -> usize {
        (clip_types::hash64(line.raw() ^ 0x110C) as usize) % self.cfg.cores
    }

    #[inline]
    fn mc_node(&self, channel: usize) -> usize {
        let nodes = self.cfg.noc.mesh_cols * self.cfg.noc.mesh_rows;
        (channel * nodes / self.cfg.dram.channels) % nodes
    }

    fn send_msg(&mut self, src: usize, dst: usize, flits: usize, prio: Priority, pl: u64) {
        let now = self.cycle;
        if !self.outbox[src].is_empty() {
            self.outbox[src].push_back(OutMsg {
                dst,
                flits,
                priority: prio,
                payload: pl,
            });
            return;
        }
        if self
            .noc
            .as_model()
            .send(src, dst, flits, prio, pl, now)
            .is_err()
        {
            self.outbox[src].push_back(OutMsg {
                dst,
                flits,
                priority: prio,
                payload: pl,
            });
        }
    }

    fn drain_outboxes(&mut self) {
        let now = self.cycle;
        // Rotate the starting node each cycle: a fixed order would let
        // low-index tiles win saturated links every cycle and starve the
        // memory controllers' response packets (livelock under flood).
        let n = self.outbox.len();
        for k in 0..n {
            let node = (k + (now as usize % n.max(1))) % n;
            while let Some(m) = self.outbox[node].front() {
                let ok = self
                    .noc
                    .as_model()
                    .send(node, m.dst, m.flits, m.priority, m.payload, now)
                    .is_ok();
                if ok {
                    self.outbox[node].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn txn_priority(&self, t: u32) -> Priority {
        match self.txns[t as usize].kind {
            TxnKind::Demand | TxnKind::Store => Priority::Demand,
            TxnKind::Prefetch { critical, .. } => {
                if critical {
                    Priority::Demand
                } else {
                    Priority::Prefetch
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Core-side issue paths (called through `CorePort`).
    // ------------------------------------------------------------------

    fn tile_issue_load(&mut self, t: usize, ip: Ip, addr: Addr, now: Cycle) -> Option<ReqId> {
        let line = addr.line();
        // Back-pressure check first so retried issues do not perturb
        // statistics or prefetcher training.
        {
            let tile = &self.tiles[t];
            if !tile.l1d.contains(line) && tile.l1_mshr.is_full() && !tile.l1_mshr.contains(line) {
                return None;
            }
        }
        {
            let tile = &mut self.tiles[t];
            tile.l1_window_accesses += 1;
            if tile.clip_at_l1 {
                if let Some(clip) = tile.clip.as_mut() {
                    clip.on_demand_access(line);
                }
            }
        }
        let outcome = self.tiles[t].l1d.lookup(line, false, now);
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(line, true);
                    }
                }
                let req = self.fresh_req();
                self.schedule(
                    now + self.cfg.l1d.latency,
                    Ev::L1Respond {
                        tile: t as u16,
                        req,
                        issue: now,
                    },
                );
                self.train_l1_prefetcher(t, ip, addr, true, false, now);
                Some(req)
            }
            LookupOutcome::Miss => {
                // Back-pressure check: merging is allowed even when full.
                if self.tiles[t].l1_mshr.is_full() && !self.tiles[t].l1_mshr.contains(line) {
                    return None;
                }
                let req = self.fresh_req();
                let alloc = self.tiles[t]
                    .l1_mshr
                    .alloc(line, req, false, now)
                    .expect("room checked above");
                self.on_l1_miss_bookkeeping(t, now);
                if matches!(alloc, clip_cache::AllocOutcome::New) {
                    let txn = self.alloc_txn(Txn {
                        tile: t as u16,
                        ip,
                        line,
                        kind: TxnKind::Demand,
                        issue: now,
                        level: MemLevel::L1,
                        probe: ProbeState::None,
                        probe_id: None,
                        live: true,
                    });
                    self.maybe_hermes_probe(t, txn, ip, line, now);
                    self.schedule(now + self.cfg.l1d.latency, Ev::L2Lookup { txn });
                }
                self.train_l1_prefetcher(t, ip, addr, false, false, now);
                Some(req)
            }
        }
    }

    fn tile_issue_store(&mut self, t: usize, ip: Ip, addr: Addr, now: Cycle) -> bool {
        let line = addr.line();
        {
            let tile = &self.tiles[t];
            if !tile.l1d.contains(line) && tile.l1_mshr.is_full() && !tile.l1_mshr.contains(line) {
                return false;
            }
        }
        self.tiles[t].l1_window_accesses += 1;
        let outcome = self.tiles[t].l1d.lookup(line, true, now);
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(line, true);
                    }
                }
                self.train_l1_prefetcher(t, ip, addr, true, true, now);
                true
            }
            LookupOutcome::Miss => {
                if self.tiles[t].l1_mshr.is_full() && !self.tiles[t].l1_mshr.contains(line) {
                    return false;
                }
                let req = self.fresh_req();
                let alloc = self.tiles[t]
                    .l1_mshr
                    .alloc(line, req, false, now)
                    .expect("room checked above");
                self.on_l1_miss_bookkeeping(t, now);
                if matches!(alloc, clip_cache::AllocOutcome::New) {
                    let txn = self.alloc_txn(Txn {
                        tile: t as u16,
                        ip,
                        line,
                        kind: TxnKind::Store,
                        issue: now,
                        level: MemLevel::L1,
                        probe: ProbeState::None,
                        probe_id: None,
                        live: true,
                    });
                    self.schedule(now + self.cfg.l1d.latency, Ev::L2Lookup { txn });
                }
                self.train_l1_prefetcher(t, ip, addr, false, true, now);
                true
            }
        }
    }

    fn on_l1_miss_bookkeeping(&mut self, t: usize, now: Cycle) {
        let tile = &mut self.tiles[t];
        if tile.clip_at_l1 {
            Self::clip_window_advance(tile, now);
        }
    }

    /// Advances CLIP's exploration window on one training-level miss; at a
    /// window boundary, feeds the APC sample of the elapsed window (the
    /// paper averages APC over the last 16 exploration windows).
    fn clip_window_advance(tile: &mut Tile, now: Cycle) {
        let Some(clip) = tile.clip.as_mut() else {
            return;
        };
        if clip.on_l1_miss() {
            let accesses = tile.l1_window_accesses;
            tile.l1_window_accesses = 0;
            let cycles = now.saturating_sub(tile.window_start).max(1);
            tile.window_start = now;
            clip.on_apc_sample(accesses, cycles);
        }
    }

    fn maybe_hermes_probe(&mut self, t: usize, txn: u32, ip: Ip, line: LineAddr, now: Cycle) {
        let predicted = match self.tiles[t].hermes.as_mut() {
            Some(h) => h.predict_offchip(ip, line),
            None => return,
        };
        if !predicted {
            return;
        }
        let channel = self.dram.channel_for(line);
        self.next_probe += 1;
        let pid = self.next_probe;
        let id = ReqId(pid | PROBE_BIT);
        if self
            .dram
            .enqueue_read(channel, id, line, Priority::Demand, now)
            .is_ok()
        {
            self.txns[txn as usize].probe = ProbeState::Pending;
            self.txns[txn as usize].probe_id = Some(pid);
            self.probe_map.insert(pid, txn);
        }
    }

    /// Trains the L1 prefetcher and runs its candidates through the gates.
    fn train_l1_prefetcher(
        &mut self,
        t: usize,
        ip: Ip,
        addr: Addr,
        hit: bool,
        is_store: bool,
        now: Cycle,
    ) {
        if self.tiles[t].l1_pf.is_none() {
            return;
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        {
            let tile = &mut self.tiles[t];
            let pf = tile.l1_pf.as_mut().expect("checked above");
            pf.on_access(
                &AccessInfo {
                    ip,
                    addr,
                    hit,
                    is_store,
                    cycle: now,
                },
                &mut cands,
            );
        }
        self.gate_and_queue(t, true, &mut cands);
        self.cand_scratch = cands;
    }

    /// Applies DSPatch, a baseline criticality gate, and CLIP to a
    /// candidate list, then queues the survivors.
    fn gate_and_queue(&mut self, t: usize, at_l1: bool, cands: &mut Vec<PrefetchCandidate>) {
        if cands.is_empty() {
            return;
        }
        self.tiles[t].pf_candidates += cands.len() as u64;
        // Dedup against caches / MSHRs / queue before gating so CLIP's
        // issue accounting reflects prefetches that can actually go out.
        {
            let tile = &mut self.tiles[t];
            let (l1d, l2, l1m, l2m, q) = (
                &tile.l1d,
                &tile.l2,
                &tile.l1_mshr,
                &tile.l2_mshr,
                &tile.pf_queue,
            );
            cands.retain(|c| {
                !l1d.contains(c.line)
                    && !l2.contains(c.line)
                    && !l1m.contains(c.line)
                    && !l2m.contains(c.line)
                    && !q.iter().any(|p| p.line == c.line)
            });
        }
        if let Some(ds) = self.tiles[t].dspatch.as_mut() {
            ds.modulate(cands);
        }
        if let Some(gate) = self.tiles[t].crit_gate.as_ref() {
            cands.retain(|c| gate.predict(c.trigger_ip, c.line.byte_addr()));
        }
        for c in cands.drain(..) {
            let tile = &mut self.tiles[t];
            if tile.pf_queue.len() >= PF_QUEUE_CAP {
                tile.pf_queue.pop_front();
            }
            tile.pf_queue.push_back(QueuedPrefetch {
                line: c.line,
                trigger_ip: c.trigger_ip,
                fill_l1: c.fill_l1,
                from_l1: at_l1,
            });
        }
    }

    /// Issues queued prefetches into the hierarchy.
    fn issue_prefetches(&mut self, t: usize, now: Cycle) {
        for _ in 0..PF_ISSUE_PER_CYCLE {
            let Some(&q) = self.tiles[t].pf_queue.front() else {
                return;
            };
            // Re-check dedup (state may have changed since queueing).
            {
                let tile = &self.tiles[t];
                if tile.l1d.contains(q.line)
                    || tile.l1_mshr.contains(q.line)
                    || tile.l2_mshr.contains(q.line)
                    || (!q.fill_l1 && tile.l2.contains(q.line))
                {
                    self.tiles[t].pf_queue.pop_front();
                    continue;
                }
            }
            self.tiles[t].pf_queue.pop_front();
            // CLIP gates at the issue point so its per-IP issue accounting
            // matches prefetches that actually enter the hierarchy.
            let clip_here = self.tiles[t].clip_at_l1 == q.from_l1;
            let mut fill_l1 = q.fill_l1;
            let mut critical = false;
            if let Some(clip) = self.tiles[t].clip.as_mut() {
                if clip_here {
                    match clip.filter_prefetch(q.line, q.trigger_ip) {
                        Decision::AllowCritical => {
                            critical = true;
                            // CLIP fetches its survivors all the way to L1
                            // (§4.2) when attached there.
                            fill_l1 = fill_l1 || q.from_l1;
                        }
                        Decision::AllowExplore => {}
                        _ => continue,
                    }
                }
            }
            // Prefetches do not hold L1 MSHRs: the L1 fill happens
            // directly on arrival, and a concurrent demand for the same
            // line merges at the L2 MSHR (where lateness is detected).
            // Their in-flight parallelism is bounded at the L2 (with a
            // reserve for demands) — the ChampSim PQ arrangement.
            self.tiles[t].pf_issued += 1;
            let txn = self.alloc_txn(Txn {
                tile: t as u16,
                ip: q.trigger_ip,
                line: q.line,
                kind: TxnKind::Prefetch {
                    fill_l1,
                    critical,
                    trigger_ip: q.trigger_ip,
                },
                issue: now,
                level: MemLevel::L1,
                probe: ProbeState::None,
                probe_id: None,
                live: true,
            });
            self.schedule(now + 1, Ev::L2Lookup { txn });
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn handle_event(&mut self, ev: Ev) {
        let now = self.cycle;
        match ev {
            Ev::L1Respond { tile, req, issue } => {
                self.respond_core(tile as usize, req, MemLevel::L1, issue, now);
            }
            Ev::L2Lookup { txn } => self.l2_lookup(txn, now),
            Ev::LlcLookup { txn } => self.llc_lookup(txn, now),
            Ev::DramEnqueue { txn } => self.dram_enqueue(txn, now),
            Ev::TileData { txn } => self.tile_data(txn, now),
            Ev::WbDram { line } => {
                if self.dram.enqueue_write(line, now).is_err() {
                    self.schedule(now + RETRY_DELAY * 2, Ev::WbDram { line });
                }
            }
        }
    }

    fn l2_lookup(&mut self, txn: u32, now: Cycle) {
        let tx = self.txns[txn as usize];
        let t = tx.tile as usize;
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        // Back-pressure before touching the cache so retries do not skew
        // statistics.
        if (!is_pf || !self.tiles[t].l2.contains(tx.line))
            && self.tiles[t].l2_mshr.is_full()
            && !self.tiles[t].l2_mshr.contains(tx.line)
        {
            // Only a miss would need the MSHR; a hit does not. Peek
            // cheaply first.
            if !self.tiles[t].l2.contains(tx.line) {
                self.schedule(now + RETRY_DELAY, Ev::L2Lookup { txn });
                return;
            }
        }

        let outcome = if is_pf {
            self.tiles[t].l2.lookup_prefetch(tx.line, now)
        } else {
            self.tiles[t].l2.lookup(tx.line, false, now)
        };
        // L2-trained prefetchers observe the demand stream at the L2.
        if !is_pf {
            self.train_l2_prefetcher(t, tx.ip, tx.line, outcome.is_hit(), now);
        }
        match outcome {
            LookupOutcome::Hit { first_prefetch_use } => {
                if first_prefetch_use {
                    if let Some(pf) = self.tiles[t].l2_pf.as_mut() {
                        pf.on_prefetch_result(tx.line, true);
                    }
                }
                self.txns[txn as usize].level = MemLevel::L2;
                self.schedule(now + self.cfg.l2.latency, Ev::TileData { txn });
            }
            LookupOutcome::Miss => {
                // CLIP attached at the L2 counts L2 misses as its window.
                if !self.tiles[t].clip_at_l1 {
                    if !is_pf {
                        if let Some(clip) = self.tiles[t].clip.as_mut() {
                            clip.on_demand_access(tx.line);
                        }
                    }
                    Self::clip_window_advance(&mut self.tiles[t], now);
                }
                // Prefetch admission control: keep a demand reserve at the
                // L2 MSHRs; prefetches beyond it are dropped, not stalled.
                if is_pf
                    && !self.tiles[t].l2_mshr.contains(tx.line)
                    && self.tiles[t].l2_mshr.len() + L2_MSHR_PF_RESERVE
                        >= self.tiles[t].l2_mshr.capacity()
                {
                    if let TxnKind::Prefetch { trigger_ip, .. } = tx.kind {
                        if let Some(clip) = self.tiles[t].clip.as_mut() {
                            clip.cancel_prefetch(tx.line, trigger_ip);
                        }
                    }
                    self.free_txn(txn);
                    return;
                }
                let alloc = self.tiles[t]
                    .l2_mshr
                    .alloc(tx.line, ReqId(txn as u64), is_pf, now);
                match alloc {
                    Ok(clip_cache::AllocOutcome::New) => {
                        let home = self.home_of(tx.line);
                        let prio = self.txn_priority(txn);
                        self.send_msg(
                            t,
                            home,
                            self.cfg.noc.addr_packet_flits,
                            prio,
                            payload(MSG_REQ_LLC, txn as u64),
                        );
                    }
                    Ok(clip_cache::AllocOutcome::Merged { .. }) => {}
                    Err(_) => {
                        self.schedule(now + RETRY_DELAY, Ev::L2Lookup { txn });
                    }
                }
            }
        }
    }

    fn train_l2_prefetcher(&mut self, t: usize, ip: Ip, line: LineAddr, hit: bool, now: Cycle) {
        if self.tiles[t].l2_pf.is_none() {
            return;
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        {
            let tile = &mut self.tiles[t];
            let pf = tile.l2_pf.as_mut().expect("checked above");
            pf.on_access(
                &AccessInfo {
                    ip,
                    addr: line.byte_addr(),
                    hit,
                    is_store: false,
                    cycle: now,
                },
                &mut cands,
            );
        }
        self.gate_and_queue(t, false, &mut cands);
        self.cand_scratch = cands;
    }

    fn llc_lookup(&mut self, txn: u32, now: Cycle) {
        let tx = self.txns[txn as usize];
        let home = self.home_of(tx.line);
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        if self.llc_mshr[home].is_full()
            && !self.llc_mshr[home].contains(tx.line)
            && !self.llc[home].contains(tx.line)
        {
            self.schedule(now + RETRY_DELAY, Ev::LlcLookup { txn });
            return;
        }

        let outcome = if is_pf {
            self.llc[home].lookup_prefetch(tx.line, now)
        } else {
            self.llc[home].lookup(tx.line, false, now)
        };
        match outcome {
            LookupOutcome::Hit { .. } => {
                self.txns[txn as usize].level = MemLevel::Llc;
                let prio = self.txn_priority(txn);
                self.send_msg(
                    home,
                    tx.tile as usize,
                    self.cfg.noc.data_packet_flits,
                    prio,
                    payload(MSG_DATA_TILE, txn as u64),
                );
            }
            LookupOutcome::Miss => {
                let alloc = self.llc_mshr[home].alloc(tx.line, ReqId(txn as u64), is_pf, now);
                match alloc {
                    Ok(clip_cache::AllocOutcome::New) => {
                        let channel = self.dram.channel_for(tx.line);
                        let mc = self.mc_node(channel);
                        let prio = self.txn_priority(txn);
                        self.send_msg(
                            home,
                            mc,
                            self.cfg.noc.addr_packet_flits,
                            prio,
                            payload(MSG_REQ_MC, txn as u64),
                        );
                    }
                    Ok(clip_cache::AllocOutcome::Merged { .. }) => {}
                    Err(_) => self.schedule(now + RETRY_DELAY, Ev::LlcLookup { txn }),
                }
            }
        }
    }

    fn dram_enqueue(&mut self, txn: u32, now: Cycle) {
        match self.txns[txn as usize].probe {
            ProbeState::Done => {
                // Hermes probe already fetched the data at the controller.
                self.txns[txn as usize].level = MemLevel::Dram;
                self.data_from_mc(txn);
                return;
            }
            ProbeState::Pending => {
                self.txns[txn as usize].probe = ProbeState::TxnWaiting;
                return;
            }
            _ => {}
        }
        let tx = self.txns[txn as usize];
        let channel = self.dram.channel_for(tx.line);
        let prio = self.txn_priority(txn);
        if self
            .dram
            .enqueue_read(channel, ReqId(txn as u64), tx.line, prio, now)
            .is_err()
        {
            self.schedule(now + RETRY_DELAY, Ev::DramEnqueue { txn });
        }
    }

    /// Sends the DRAM response packet toward the LLC home slice.
    fn data_from_mc(&mut self, txn: u32) {
        let tx = self.txns[txn as usize];
        let channel = self.dram.channel_for(tx.line);
        let mc = self.mc_node(channel);
        let home = self.home_of(tx.line);
        let prio = self.txn_priority(txn);
        self.send_msg(
            mc,
            home,
            self.cfg.noc.data_packet_flits,
            prio,
            payload(MSG_DATA_LLC, txn as u64),
        );
    }

    fn handle_dram_completion(&mut self, id: ReqId) {
        if id.0 & PROBE_BIT != 0 {
            let pid = id.0 & !PROBE_BIT;
            // Orphaned probes (owner already serviced on-chip) miss here.
            let Some(txn) = self.probe_map.remove(&pid) else {
                return;
            };
            self.txns[txn as usize].probe_id = None;
            match self.txns[txn as usize].probe {
                ProbeState::TxnWaiting => {
                    self.txns[txn as usize].level = MemLevel::Dram;
                    self.data_from_mc(txn);
                }
                ProbeState::Pending => self.txns[txn as usize].probe = ProbeState::Done,
                ProbeState::None | ProbeState::Done => {}
            }
            return;
        }
        let txn = id.0 as u32;
        if !self.txns[txn as usize].live {
            return;
        }
        self.txns[txn as usize].level = MemLevel::Dram;
        self.data_from_mc(txn);
    }

    fn handle_delivery(&mut self, node: usize, pl: u64, now: Cycle) {
        let (tag, value) = decode(pl);
        match tag {
            MSG_REQ_LLC => {
                let txn = value as u32;
                self.schedule(now + self.cfg.llc_slice.latency, Ev::LlcLookup { txn });
            }
            MSG_REQ_MC => {
                let txn = value as u32;
                self.schedule(now + 1, Ev::DramEnqueue { txn });
            }
            MSG_DATA_LLC => {
                let txn = value as u32;
                self.llc_fill_and_forward(txn, now);
            }
            MSG_DATA_TILE => {
                let txn = value as u32;
                self.schedule(now + 1, Ev::TileData { txn });
            }
            MSG_WB_LLC => {
                let line = LineAddr::new(value);
                let home = self.home_of(line);
                debug_assert_eq!(home, node);
                if let Some(ev) = self.llc[home].fill(line, true, false, now) {
                    if ev.dirty {
                        self.writeback_to_dram(home, ev.line);
                    }
                }
            }
            MSG_WB_MC => {
                let line = LineAddr::new(value);
                if self.dram.enqueue_write(line, now).is_err() {
                    self.schedule(now + RETRY_DELAY * 2, Ev::WbDram { line });
                }
            }
            _ => unreachable!("unknown message tag {tag}"),
        }
    }

    fn writeback_to_dram(&mut self, from_node: usize, line: LineAddr) {
        let channel = self.dram.channel_for(line);
        let mc = self.mc_node(channel);
        self.send_msg(
            from_node,
            mc,
            self.cfg.noc.data_packet_flits,
            Priority::Writeback,
            payload(MSG_WB_MC, line.raw()),
        );
    }

    /// DRAM data arrived at the LLC home: fill the slice, complete the LLC
    /// MSHR, and forward data packets to the requesting tile(s).
    fn llc_fill_and_forward(&mut self, txn: u32, now: Cycle) {
        let tx = self.txns[txn as usize];
        let home = self.home_of(tx.line);
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });
        if let Some(ev) = self.llc[home].fill(tx.line, false, is_pf, now) {
            if ev.dirty {
                self.writeback_to_dram(home, ev.line);
            }
        }
        let mut to_send = vec![txn];
        if let Some(entry) = self.llc_mshr[home].complete(tx.line) {
            for w in entry.waiters {
                let wt = w.0 as u32;
                if wt != txn && self.txns[wt as usize].live {
                    self.txns[wt as usize].level = tx.level;
                    to_send.push(wt);
                }
            }
            // `entry.primary` is this txn (or the first merged one).
            let p = entry.primary.0 as u32;
            if p != txn && self.txns[p as usize].live {
                self.txns[p as usize].level = tx.level;
                to_send.push(p);
            }
        }
        to_send.sort_unstable();
        to_send.dedup();
        for t in to_send {
            let dst = self.txns[t as usize].tile as usize;
            let prio = self.txn_priority(t);
            self.send_msg(
                home,
                dst,
                self.cfg.noc.data_packet_flits,
                prio,
                payload(MSG_DATA_TILE, t as u64),
            );
        }
    }

    /// Data arrived at the tile: fill L2/L1, complete MSHRs, respond.
    fn tile_data(&mut self, txn: u32, now: Cycle) {
        let tx = self.txns[txn as usize];
        let t = tx.tile as usize;
        let is_pf = matches!(tx.kind, TxnKind::Prefetch { .. });

        let fills_l1_dest = match tx.kind {
            TxnKind::Demand | TxnKind::Store => true,
            TxnKind::Prefetch { fill_l1, .. } => fill_l1,
        };
        // Fill the L2 when data came from beyond it. A prefetch is marked
        // as such only at its destination level, so one prefetch cannot be
        // counted useful twice (once per level).
        if matches!(tx.level, MemLevel::Llc | MemLevel::Dram) {
            let mark_l2 = is_pf && !fills_l1_dest;
            let ev = self.tiles[t].l2.fill(tx.line, false, mark_l2, now);
            if let Some(e) = ev {
                if e.dirty {
                    let home = self.home_of(e.line);
                    self.send_msg(
                        t,
                        home,
                        self.cfg.noc.data_packet_flits,
                        Priority::Writeback,
                        payload(MSG_WB_LLC, e.line.raw()),
                    );
                }
                if e.was_useless_prefetch {
                    if let Some(pf) = self.tiles[t].l2_pf.as_mut() {
                        pf.on_prefetch_result(e.line, false);
                    }
                }
            }
            // Wake L2-level waiters (same-tile txns merged at the L2 MSHR).
            if let Some(entry) = self.tiles[t].l2_mshr.complete(tx.line) {
                let mut wake = entry.waiters.clone();
                wake.push(entry.primary);
                for w in wake {
                    let wt = w.0 as u32;
                    if wt != txn && self.txns[wt as usize].live {
                        self.txns[wt as usize].level = tx.level;
                        self.schedule(now + 1, Ev::TileData { txn: wt });
                    }
                }
            }
        }

        let fills_l1 = fills_l1_dest;
        if fills_l1 {
            let dirty = matches!(tx.kind, TxnKind::Store);
            let ev = self.tiles[t].l1d.fill(tx.line, dirty, is_pf, now);
            if let Some(e) = ev {
                if e.was_useless_prefetch {
                    if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                        pf.on_prefetch_result(e.line, false);
                    }
                }
                if e.dirty {
                    // Victim goes to the L2 (non-inclusive hierarchy).
                    let ev2 = self.tiles[t].l2.fill(e.line, true, false, now);
                    if let Some(e2) = ev2 {
                        if e2.dirty {
                            let home = self.home_of(e2.line);
                            self.send_msg(
                                t,
                                home,
                                self.cfg.noc.data_packet_flits,
                                Priority::Writeback,
                                payload(MSG_WB_LLC, e2.line.raw()),
                            );
                        }
                    }
                }
            }
            if let Some(pf) = self.tiles[t].l1_pf.as_mut() {
                pf.on_fill(tx.line, now);
            }
            if let Some(entry) = self.tiles[t].l1_mshr.complete(tx.line) {
                let mut reqs = entry.waiters.clone();
                reqs.push(entry.primary);
                for r in reqs {
                    self.respond_core(t, r, tx.level, tx.issue, now);
                }
            }
        }
        self.free_txn(txn);
    }

    /// Delivers a load response to the core and fans the resulting
    /// [`clip_cpu::LoadOutcome`] out to every training consumer.
    fn respond_core(&mut self, t: usize, req: ReqId, level: MemLevel, issue: Cycle, now: Cycle) {
        let outcome = {
            let core = self.tiles[t].core.as_mut().expect("core present");
            core.complete_load(req, level, now)
        };
        let Some(mut o) = outcome else {
            return; // store / prefetch pseudo-request
        };
        o.latency = now.saturating_sub(issue);
        let tile = &mut self.tiles[t];
        if level.is_beyond_l1() {
            tile.lat.l1_miss.record(o.latency);
            match level {
                MemLevel::L2 => tile.lat.by_l2.record(o.latency),
                MemLevel::Llc => tile.lat.by_llc.record(o.latency),
                MemLevel::Dram => tile.lat.by_dram.record(o.latency),
                MemLevel::L1 => {}
            }
        }

        // CLIP: evaluate its criticality prediction, then train it.
        if let Some(clip) = tile.clip.as_mut() {
            // For the L2 attachment, criticality is defined on loads
            // serviced beyond the L2; remap the outcome's level so the
            // shared mechanism sees the right "miss level".
            let adapted = if tile.clip_at_l1 {
                o
            } else {
                let mut a = o;
                a.level = match o.level {
                    MemLevel::L1 | MemLevel::L2 => MemLevel::L1,
                    deeper => deeper,
                };
                a
            };
            if adapted.level.is_beyond_l1() {
                let predicted = clip.predict_critical(adapted.ip, adapted.addr.line());
                let actual = adapted.stalled_head;
                match (predicted, actual) {
                    (true, true) => tile.clip_eval.true_positive += 1,
                    (true, false) => tile.clip_eval.false_positive += 1,
                    (false, true) => tile.clip_eval.false_negative += 1,
                    (false, false) => tile.clip_eval.true_negative += 1,
                }
                let rec = tile
                    .ip_behavior
                    .entry(adapted.ip.raw())
                    .or_insert((0, 0, false));
                if actual {
                    rec.0 += 1;
                } else {
                    rec.1 += 1;
                }
                if predicted {
                    rec.2 = true;
                }
            }
            clip.on_load_complete(&adapted);
        }
        for ev in tile.evaluators.iter_mut() {
            ev.observe(&o);
        }
        if let Some(gate) = tile.crit_gate.as_mut() {
            gate.on_load_complete(&o);
        }
        if let Some(h) = tile.hermes.as_mut() {
            h.train(o.ip, o.addr.line(), level == MemLevel::Dram);
        }
    }

    // ------------------------------------------------------------------
    // The cycle loop.
    // ------------------------------------------------------------------

    /// Advances the whole system one cycle.
    pub fn tick(&mut self) {
        let now = self.cycle;

        self.drain_outboxes();

        // NoC deliveries.
        let delivered = self.noc.as_model().tick(now);
        for d in delivered {
            self.handle_delivery(d.node, d.payload, now);
        }

        // DRAM completions.
        let completions = self.dram.tick(now);
        for c in completions {
            self.handle_dram_completion(c.id);
        }

        // Local scheduled events.
        let evs = std::mem::take(&mut self.ring[(now as usize) % EVENT_RING]);
        for ev in evs {
            self.handle_event(ev);
        }

        // Per-tile prefetch issue + core tick.
        for t in 0..self.tiles.len() {
            self.issue_prefetches(t, now);
            self.tick_core(t, now);
        }

        // Periodic controllers.
        if now > 0 && now.is_multiple_of(THROTTLE_EPOCH) {
            self.throttle_epoch(now);
        }
        if now > 0 && now.is_multiple_of(DSPATCH_EPOCH) {
            self.dspatch_epoch();
            // Dynamic CLIP samples *overall* utilization (not the myopic
            // per-controller view).
            let bw = self.dram.bandwidth_utilization(self.cycle.max(1));
            for tile in self.tiles.iter_mut() {
                if let Some(clip) = tile.clip.as_mut() {
                    clip.on_bandwidth_sample(bw);
                }
            }
        }

        self.cycle += 1;
    }

    fn tick_core(&mut self, t: usize, now: Cycle) {
        let mut core = self.tiles[t].core.take().expect("core present");
        let mut gen = self.tiles[t].gen.take().expect("generator present");
        let base = self.tiles[t].addr_base;
        let mut branches = std::mem::take(&mut self.branch_scratch);
        branches.clear();
        {
            let mut port = CorePort { sys: self, tile: t };
            let mut fetch = || {
                let mut i = gen.next_instr();
                match &mut i.kind {
                    InstrKind::Load { addr, .. } => *addr = Addr::new(addr.raw() | base),
                    InstrKind::Store { addr } => *addr = Addr::new(addr.raw() | base),
                    InstrKind::Branch { taken } => branches.push(*taken),
                    InstrKind::Alu { .. } => {}
                }
                i
            };
            core.tick(now, &mut fetch, &mut port);
        }
        if let Some(clip) = self.tiles[t].clip.as_mut() {
            for &b in &branches {
                clip.on_branch(b);
            }
        }
        self.branch_scratch = branches;
        self.tiles[t].core = Some(core);
        self.tiles[t].gen = Some(gen);
    }

    fn throttle_epoch(&mut self, _now: Cycle) {
        let bw = self
            .dram
            .bandwidth_utilization(THROTTLE_EPOCH.max(self.cycle));
        let total_transfers: u64 = {
            let s = self.dram.total_stats();
            s.reads + s.writes
        };
        let cores = self.cfg.cores as f64;
        for t in 0..self.tiles.len() {
            if self.tiles[t].throttler.is_none() {
                continue;
            }
            let (useful, useless, late) = {
                let tile = &self.tiles[t];
                (tile.useful(), tile.useless(), tile.late())
            };
            let tile = &mut self.tiles[t];
            let du = useful - tile.epoch_useful;
            let dl = useless - tile.epoch_useless;
            let dlate = late - tile.epoch_late;
            tile.epoch_useful = useful;
            tile.epoch_useless = useless;
            tile.epoch_late = late;
            let resolved = du + dl;
            let accuracy = if resolved == 0 {
                1.0
            } else {
                du as f64 / resolved as f64
            };
            let lateness = if du + dlate == 0 {
                0.0
            } else {
                dlate as f64 / (du + dlate) as f64
            };
            let fb = EpochFeedback {
                accuracy,
                lateness,
                pollution: if resolved == 0 {
                    0.0
                } else {
                    (dl as f64 / resolved as f64).min(1.0)
                },
                bandwidth_util: bw,
                traffic_share: if total_transfers == 0 {
                    0.0
                } else {
                    // Approximation: assume this core's share is its
                    // prefetch issue intensity relative to the system.
                    1.0 / cores
                },
                utility: accuracy * (du as f64 / (resolved.max(1)) as f64),
            };
            let level = tile
                .throttler
                .as_mut()
                .expect("checked above")
                .on_epoch(&fb);
            if let Some(pf) = tile.l1_pf.as_mut() {
                pf.set_level(level);
            }
            if let Some(pf) = tile.l2_pf.as_mut() {
                pf.set_level(level);
            }
        }
    }

    fn dspatch_epoch(&mut self) {
        // Per-controller utilization over the last epoch — the myopic
        // signal DSPatch uses.
        let mut max_util = 0.0f64;
        for ch in 0..self.cfg.dram.channels {
            let s = self.dram.stats(ch);
            let transfers = s.reads + s.writes;
            let delta = transfers - self.dspatch_prev_channel[ch];
            self.dspatch_prev_channel[ch] = transfers;
            let peak = DSPATCH_EPOCH as f64 / self.cfg.dram.burst_cycles as f64;
            max_util = max_util.max(delta as f64 / peak);
        }
        for tile in self.tiles.iter_mut() {
            if let Some(ds) = tile.dspatch.as_mut() {
                ds.set_bandwidth(max_util.min(1.0));
            }
        }
    }

    // ------------------------------------------------------------------
    // Run driver + reporting.
    // ------------------------------------------------------------------

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            lat: self.tiles.iter().map(|t| t.lat).collect(),
            cand: self.tiles.iter().map(|t| t.pf_candidates).collect(),
            issued: self.tiles.iter().map(|t| t.pf_issued).collect(),
            useful: self.tiles.iter().map(|t| t.useful()).collect(),
            useless: self.tiles.iter().map(|t| t.useless()).collect(),
            late: self.tiles.iter().map(|t| t.late()).collect(),
            l1_acc: self
                .tiles
                .iter()
                .map(|t| t.l1d.stats().demand_accesses)
                .collect(),
            l1_miss: self
                .tiles
                .iter()
                .map(|t| t.l1d.stats().demand_misses())
                .collect(),
            l2_acc: self
                .tiles
                .iter()
                .map(|t| t.l2.stats().demand_accesses)
                .collect(),
            l2_miss: self
                .tiles
                .iter()
                .map(|t| t.l2.stats().demand_misses())
                .collect(),
            llc_acc: self.llc.iter().map(|c| c.stats().demand_accesses).sum(),
            llc_miss: self.llc.iter().map(|c| c.stats().demand_misses()).sum(),
            dram_reads: self.dram.total_stats().reads,
            dram_writes: self.dram.total_stats().writes,
            dram_row_hits: self.dram.total_stats().row_hits,
            noc_hops: self.noc.flit_hops(),
            cycle: self.cycle,
            clip_eval: self.tiles.iter().map(|t| t.clip_eval).collect(),
            l1_fills: self.tiles.iter().map(|t| t.l1d.stats().fills).collect(),
            l2_fills: self.tiles.iter().map(|t| t.l2.stats().fills).collect(),
            llc_fills: self.llc.iter().map(|c| c.stats().fills).sum(),
        }
    }

    /// Runs warmup + measurement and assembles the result.
    ///
    /// Cores that reach `measure` retired instructions keep executing (the
    /// paper's replay rule) until every core is done. `max_cycles` bounds
    /// pathological runs; unfinished cores report their partial IPC.
    pub fn run(&mut self, warmup: u64, measure: u64, max_cycles: Cycle) -> SimResult {
        // Warmup phase.
        let debug_stall = std::env::var("CLIP_DEBUG_STALL").is_ok();
        while self.cycle < max_cycles {
            if self
                .tiles
                .iter()
                .all(|t| t.core.as_ref().expect("core present").retired() >= warmup)
            {
                break;
            }
            self.tick();
            if debug_stall && self.cycle.is_multiple_of(100_000) {
                self.dump_state();
            }
        }
        for t in self.tiles.iter_mut() {
            t.warmup_retired = t.core.as_ref().expect("core present").retired();
            t.finish_cycle = None;
        }
        let snap = self.snapshot();
        self.tl_start = self.cycle;
        self.tl_prev = self.timeline_totals();

        // Measurement phase.
        while self.cycle < max_cycles {
            let mut all_done = true;
            for t in self.tiles.iter_mut() {
                if t.finish_cycle.is_none() {
                    let retired = t.core.as_ref().expect("core present").retired();
                    if retired >= t.warmup_retired + measure {
                        t.finish_cycle = Some(0); // filled below with cycle
                    } else {
                        all_done = false;
                    }
                }
            }
            // Record the actual finish cycle for cores that just finished.
            let now = self.cycle;
            for t in self.tiles.iter_mut() {
                if t.finish_cycle == Some(0) {
                    t.finish_cycle = Some(now.max(snap.cycle + 1));
                }
            }
            if all_done {
                break;
            }
            self.tick();
            if self.timeline_interval > 0
                && (self.cycle - self.tl_start).is_multiple_of(self.timeline_interval)
            {
                self.sample_timeline(self.cycle);
            }
        }

        self.assemble(snap, measure)
    }

    /// Prints a one-line stall diagnostic (enabled by `CLIP_DEBUG_STALL`).
    fn dump_state(&self) {
        let retired: u64 = self
            .tiles
            .iter()
            .map(|t| t.core.as_ref().expect("core present").retired())
            .sum();
        let l1m: usize = self.tiles.iter().map(|t| t.l1_mshr.len()).sum();
        let l2m: usize = self.tiles.iter().map(|t| t.l2_mshr.len()).sum();
        let llcm: usize = self.llc_mshr.iter().map(|m| m.len()).sum();
        let outbox: usize = self.outbox.iter().map(|o| o.len()).sum();
        let pfq: usize = self.tiles.iter().map(|t| t.pf_queue.len()).sum();
        let live = self.txns.iter().filter(|t| t.live).count();
        let rq: usize = (0..self.cfg.dram.channels)
            .map(|c| self.dram.read_queue_len(c))
            .sum();
        let ring: usize = self.ring.iter().map(|r| r.len()).sum();
        eprintln!(
            "[stall] cyc={} retired={retired} l1m={l1m} l2m={l2m} llcm={llcm} outbox={outbox} pfq={pfq} txn={live} dram_rq={rq} ring_ev={ring}",
            self.cycle
        );
    }

    fn assemble(&mut self, snap: Snapshot, measure: u64) -> SimResult {
        let end_cycle = self.cycle;
        let elapsed = end_cycle.saturating_sub(snap.cycle).max(1);
        let per_core_ipc: Vec<f64> = self
            .tiles
            .iter()
            .map(|t| {
                match t.finish_cycle {
                    Some(f) if f > snap.cycle => measure as f64 / (f - snap.cycle) as f64,
                    _ => {
                        // Unfinished: partial progress.
                        let retired = t.core.as_ref().expect("core present").retired();
                        (retired - t.warmup_retired) as f64 / elapsed as f64
                    }
                }
            })
            .collect();

        let mut lat = LatencyReport::default();
        for (i, t) in self.tiles.iter().enumerate() {
            let mut d = t.lat;
            sub_lat(&mut d, &snap.lat[i]);
            lat.l1_miss.merge(&d.l1_miss);
            lat.by_l2.merge(&d.by_l2);
            lat.by_llc.merge(&d.by_llc);
            lat.by_dram.merge(&d.by_dram);
        }

        let sum = |f: &dyn Fn(&Tile) -> u64, s: &[u64]| -> u64 {
            self.tiles
                .iter()
                .zip(s)
                .map(|(t, &b)| f(t).saturating_sub(b))
                .sum()
        };
        let prefetch = PrefetchReport {
            candidates: sum(&|t| t.pf_candidates, &snap.cand),
            issued: sum(&|t| t.pf_issued, &snap.issued),
            useful: sum(&|t: &Tile| t.useful(), &snap.useful),
            useless: sum(&|t: &Tile| t.useless(), &snap.useless),
            late: sum(&|t: &Tile| t.late(), &snap.late),
        };
        let misses = MissReport {
            l1_accesses: sum(&|t| t.l1d.stats().demand_accesses, &snap.l1_acc),
            l1_misses: sum(&|t| t.l1d.stats().demand_misses(), &snap.l1_miss),
            l2_accesses: sum(&|t| t.l2.stats().demand_accesses, &snap.l2_acc),
            l2_misses: sum(&|t| t.l2.stats().demand_misses(), &snap.l2_miss),
            llc_accesses: self
                .llc
                .iter()
                .map(|c| c.stats().demand_accesses)
                .sum::<u64>()
                .saturating_sub(snap.llc_acc),
            llc_misses: self
                .llc
                .iter()
                .map(|c| c.stats().demand_misses())
                .sum::<u64>()
                .saturating_sub(snap.llc_miss),
        };

        let ds = self.dram.total_stats();
        let dram_transfers = (ds.reads + ds.writes) - (snap.dram_reads + snap.dram_writes);
        let dram_row_hits = ds.row_hits - snap.dram_row_hits;
        let peak_transfers =
            self.cfg.dram.channels as f64 * elapsed as f64 / self.cfg.dram.burst_cycles as f64;
        let mut max_ch = 0.0f64;
        for ch in 0..self.cfg.dram.channels {
            let s = self.dram.stats(ch);
            let u =
                (s.reads + s.writes) as f64 / (elapsed as f64 / self.cfg.dram.burst_cycles as f64);
            max_ch = max_ch.max(u);
        }

        let clip = if self.scheme.clip.is_some() {
            let mut eval = EvalCounts::default();
            let mut crit_ips = 0usize;
            let mut dynamic = 0usize;
            let mut with_crit = 0usize;
            for (i, t) in self.tiles.iter().enumerate() {
                let mut e = t.clip_eval;
                sub_eval(&mut e, &snap.clip_eval[i]);
                eval.true_positive += e.true_positive;
                eval.false_positive += e.false_positive;
                eval.false_negative += e.false_negative;
                eval.true_negative += e.true_negative;
                crit_ips += t.clip.as_ref().expect("clip present").critical_ip_count();
                for &(stalls, nonstalls, _) in t.ip_behavior.values() {
                    if stalls > 0 {
                        with_crit += 1;
                        if nonstalls > 0 {
                            dynamic += 1;
                        }
                    }
                }
            }
            let n = self.tiles.len() as f64;
            let dyn_frac = if with_crit == 0 {
                0.0
            } else {
                dynamic as f64 / with_crit as f64
            };
            // IP-set granularity (Figure 13/14): predicted vs actual
            // critical IP sets.
            let mut ip_eval = EvalCounts::default();
            for t in &self.tiles {
                for &(stalls, _, predicted) in t.ip_behavior.values() {
                    let actually = stalls >= clip_crit::evaluate::IP_CRITICAL_STALLS;
                    match (predicted, actually) {
                        (true, true) => ip_eval.true_positive += 1,
                        (true, false) => ip_eval.false_positive += 1,
                        (false, true) => ip_eval.false_negative += 1,
                        (false, false) => ip_eval.true_negative += 1,
                    }
                }
            }
            Some(ClipReport {
                stats: {
                    let mut s = clip_core::ClipStats::default();
                    for t in &self.tiles {
                        let cs = t.clip.as_ref().expect("clip present").stats();
                        s.candidates += cs.candidates;
                        s.allowed_critical += cs.allowed_critical;
                        s.allowed_explore += cs.allowed_explore;
                        s.dropped_not_critical += cs.dropped_not_critical;
                        s.dropped_predicted += cs.dropped_predicted;
                        s.dropped_low_accuracy += cs.dropped_low_accuracy;
                        s.dropped_phase += cs.dropped_phase;
                        s.phase_changes += cs.phase_changes;
                        s.windows += cs.windows;
                    }
                    s
                },
                eval,
                ip_eval,
                critical_ips: crit_ips as f64 / n,
                dynamic_ips: crit_ips as f64 * dyn_frac / n,
            })
        } else {
            None
        };

        let baseline_evals = if self.scheme.evaluate_baselines {
            let mut out: Vec<(&'static str, EvalCounts)> = Vec::new();
            for t in &self.tiles {
                for ev in &t.evaluators {
                    let c = ev.ip_counts();
                    if let Some(slot) = out.iter_mut().find(|(n, _)| *n == ev.name()) {
                        slot.1.true_positive += c.true_positive;
                        slot.1.false_positive += c.false_positive;
                        slot.1.false_negative += c.false_negative;
                        slot.1.true_negative += c.true_negative;
                    } else {
                        out.push((ev.name(), c));
                    }
                }
            }
            out
        } else {
            Vec::new()
        };

        let energy = EnergyCounts {
            l1_reads: misses.l1_accesses,
            l1_writes: self
                .tiles
                .iter()
                .zip(&snap.l1_fills)
                .map(|(t, &b)| t.l1d.stats().fills - b)
                .sum(),
            l2_reads: misses.l2_accesses,
            l2_writes: self
                .tiles
                .iter()
                .zip(&snap.l2_fills)
                .map(|(t, &b)| t.l2.stats().fills - b)
                .sum(),
            llc_reads: misses.llc_accesses,
            llc_writes: self.llc.iter().map(|c| c.stats().fills).sum::<u64>() - snap.llc_fills,
            dram_row_hits,
            dram_row_misses: dram_transfers - dram_row_hits,
            noc_flit_hops: self.noc.flit_hops() - snap.noc_hops,
            clip_lookups: clip.map(|c| c.stats.candidates).unwrap_or(0),
        };

        let timeline = std::mem::take(&mut self.timeline);
        SimResult {
            label: String::new(),
            per_core_ipc,
            cycles: elapsed,
            latency: lat,
            prefetch,
            misses,
            dram_transfers,
            dram_row_hits,
            dram_bw_util: (dram_transfers as f64 / peak_transfers).min(1.0),
            dram_max_channel_util: max_ch.min(1.0),
            noc_flit_hops: energy.noc_flit_hops,
            clip,
            baseline_evals,
            energy,
            timeline,
        }
    }
}

fn sub_lat(a: &mut LatencyReport, b: &LatencyReport) {
    a.l1_miss.count -= b.l1_miss.count;
    a.l1_miss.total -= b.l1_miss.total;
    a.by_l2.count -= b.by_l2.count;
    a.by_l2.total -= b.by_l2.total;
    a.by_llc.count -= b.by_llc.count;
    a.by_llc.total -= b.by_llc.total;
    a.by_dram.count -= b.by_dram.count;
    a.by_dram.total -= b.by_dram.total;
}

fn sub_eval(a: &mut EvalCounts, b: &EvalCounts) {
    a.true_positive -= b.true_positive;
    a.false_positive -= b.false_positive;
    a.false_negative -= b.false_negative;
    a.true_negative -= b.true_negative;
}

struct CorePort<'a> {
    sys: &'a mut System,
    tile: usize,
}

impl MemIssuePort for CorePort<'_> {
    fn issue_load(&mut self, ip: Ip, addr: Addr, now: Cycle) -> Option<ReqId> {
        self.sys.tile_issue_load(self.tile, ip, addr, now)
    }

    fn issue_store(&mut self, ip: Ip, addr: Addr, now: Cycle) -> bool {
        self.sys.tile_issue_store(self.tile, ip, addr, now)
    }
}
