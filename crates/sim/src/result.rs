//! Simulation results: everything the figure harness consumes.

use clip_core::ClipStats;
use clip_crit::EvalCounts;
use clip_stats::energy::EnergyCounts;
use clip_stats::{Json, LatencyStat};
use clip_types::{Cycle, MAX_PF_ENGINES};

fn lat_stat_json(s: &LatencyStat) -> Json {
    Json::object([
        ("count", Json::from(s.count)),
        ("total", Json::from(s.total)),
    ])
}

fn eval_counts_json(c: &EvalCounts) -> Json {
    Json::object([
        ("true_positive", Json::from(c.true_positive)),
        ("false_positive", Json::from(c.false_positive)),
        ("false_negative", Json::from(c.false_negative)),
        ("true_negative", Json::from(c.true_negative)),
    ])
}

fn clip_report_json(c: &ClipReport) -> Json {
    let mut fields = vec![
        (
            "stats",
            Json::object([
                ("candidates", Json::from(c.stats.candidates)),
                ("allowed_critical", Json::from(c.stats.allowed_critical)),
                ("allowed_explore", Json::from(c.stats.allowed_explore)),
                (
                    "dropped_not_critical",
                    Json::from(c.stats.dropped_not_critical),
                ),
                ("dropped_predicted", Json::from(c.stats.dropped_predicted)),
                (
                    "dropped_low_accuracy",
                    Json::from(c.stats.dropped_low_accuracy),
                ),
                ("dropped_phase", Json::from(c.stats.dropped_phase)),
                ("phase_changes", Json::from(c.stats.phase_changes)),
                ("windows", Json::from(c.stats.windows)),
            ]),
        ),
        ("eval", eval_counts_json(&c.eval)),
        ("ip_eval", eval_counts_json(&c.ip_eval)),
        ("critical_ips", Json::Float(c.critical_ips)),
        ("dynamic_ips", Json::Float(c.dynamic_ips)),
    ];
    // Per-engine counters exist only for composite ensembles; the key is
    // omitted entirely otherwise so single-engine artifacts (and their
    // committed goldens) are byte-identical to the pre-composite schema.
    if c.num_engines > 0 {
        fields.push((
            "engines",
            Json::array(
                c.engines[..c.num_engines.min(MAX_PF_ENGINES)]
                    .iter()
                    .map(|e| {
                        Json::object([
                            ("issued", Json::from(e.issued)),
                            ("hits", Json::from(e.hits)),
                            ("min_level", Json::from(u64::from(e.min_level))),
                        ])
                    }),
            ),
        ));
    }
    Json::object(fields)
}

/// Per-level demand latency aggregation for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyReport {
    /// Latency of demand loads that missed the L1 (all outstanding txns).
    pub l1_miss: LatencyStat,
    /// Demand loads serviced by the L2.
    pub by_l2: LatencyStat,
    /// Demand loads serviced by an LLC slice.
    pub by_llc: LatencyStat,
    /// Demand loads serviced by DRAM.
    pub by_dram: LatencyStat,
}

/// Prefetch effectiveness aggregates across a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchReport {
    /// Candidates produced by the prefetcher(s) before any gating.
    pub candidates: u64,
    /// Prefetch transactions actually sent into the hierarchy.
    pub issued: u64,
    /// Prefetched lines touched by demand (useful).
    pub useful: u64,
    /// Prefetched lines evicted untouched (useless).
    pub useless: u64,
    /// Demands that merged into an in-flight prefetch (late prefetches).
    pub late: u64,
}

impl PrefetchReport {
    /// Prefetch accuracy: useful / resolved.
    pub fn accuracy(&self) -> f64 {
        let resolved = self.useful + self.useless;
        if resolved == 0 {
            1.0
        } else {
            self.useful as f64 / resolved as f64
        }
    }

    /// Lateness: late / (late + useful on time). Late prefetches are also
    /// useful by the paper's definition.
    pub fn lateness(&self) -> f64 {
        let useful_any = self.useful + self.late;
        if useful_any == 0 {
            0.0
        } else {
            self.late as f64 / useful_any as f64
        }
    }
}

/// Per-cache-level demand-miss counts (for the miss-coverage figure).
#[derive(Debug, Clone, Copy, Default)]
pub struct MissReport {
    /// Demand accesses / misses at L1D.
    pub l1_accesses: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L2 demand accesses.
    pub l2_accesses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// LLC demand accesses.
    pub llc_accesses: u64,
    /// LLC demand misses.
    pub llc_misses: u64,
}

/// CLIP's view of one engine of a composite ensemble, aggregated over
/// all cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClipEngineReport {
    /// Prefetches CLIP let through for this engine (all cores).
    pub issued: u64,
    /// Demand hits the utility buffers credited to this engine.
    pub hits: u64,
    /// Lowest arbitration level (1..=5) any core ended the run at — the
    /// most-starved view of the engine.
    pub min_level: u8,
}

/// CLIP-specific outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClipReport {
    /// Gate statistics (candidates, drops by reason).
    pub stats: ClipStats,
    /// Critical-load prediction confusion counts at instance granularity.
    pub eval: EvalCounts,
    /// Critical-load prediction confusion counts at IP-set granularity —
    /// the metric of Figures 4/13/14 ("predicting critical load IPs").
    pub ip_eval: EvalCounts,
    /// Critical-and-accurate IPs at the end of the run, averaged per core.
    pub critical_ips: f64,
    /// IPs that flipped predicted criticality at least once
    /// (dynamic-critical, Figure 15), averaged per core.
    pub dynamic_ips: f64,
    /// Per-engine accuracy counters (composite ensembles only; slots past
    /// `num_engines` stay zero).
    pub engines: [ClipEngineReport; MAX_PF_ENGINES],
    /// Engines CLIP arbitrated between; 0 for single-engine runs, which
    /// also suppresses the `engines` key in the JSON artifact.
    pub num_engines: usize,
}

/// One sample of the run's time series (taken every
/// `RunOptions::timeline_interval` cycles during measurement).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimelinePoint {
    /// Cycle (relative to the start of measurement) this sample closes.
    pub cycle: Cycle,
    /// Instructions retired across all cores during the interval.
    pub retired: u64,
    /// DRAM transfers during the interval.
    pub dram_transfers: u64,
    /// DRAM bandwidth utilization within the interval, in [0, 1].
    pub bw_util: f64,
    /// Prefetches issued during the interval.
    pub prefetches: u64,
}

impl TimelinePoint {
    /// System IPC over the interval (`interval` cycles long).
    pub fn ipc(&self, interval: Cycle, cores: usize) -> f64 {
        if interval == 0 || cores == 0 {
            0.0
        } else {
            self.retired as f64 / interval as f64 / cores as f64
        }
    }
}

/// The complete result of simulating one mix under one scheme.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Label (scheme + mix).
    pub label: String,
    /// Per-core IPC over the measured window.
    pub per_core_ipc: Vec<f64>,
    /// Cycles in the measured window (to global completion).
    pub cycles: Cycle,
    /// Demand latency aggregation.
    pub latency: LatencyReport,
    /// Prefetch effectiveness.
    pub prefetch: PrefetchReport,
    /// Demand miss counts by level.
    pub misses: MissReport,
    /// DRAM reads + writes serviced.
    pub dram_transfers: u64,
    /// DRAM row hits among those.
    pub dram_row_hits: u64,
    /// Overall DRAM bandwidth utilization in \[0,1\].
    pub dram_bw_util: f64,
    /// Maximum single-channel utilization (what DSPatch samples).
    pub dram_max_channel_util: f64,
    /// NoC flit-hops (energy).
    pub noc_flit_hops: u64,
    /// CLIP outputs when CLIP was enabled.
    pub clip: Option<ClipReport>,
    /// Baseline criticality predictor evaluations (Figure 4), when
    /// requested: (name, counts).
    pub baseline_evals: Vec<(&'static str, EvalCounts)>,
    /// Energy event counts for the energy model.
    pub energy: EnergyCounts,
    /// Per-interval time series (empty unless requested via
    /// `RunOptions::timeline_interval`).
    pub timeline: Vec<TimelinePoint>,
    /// Per-window state fingerprints (empty unless the run was audited
    /// under `CLIP_CHECK=full`; see [`crate::fingerprint`]). Deliberately
    /// excluded from [`SimResult::to_json`] — artifacts stay byte-identical
    /// whether or not fingerprints were captured — so they do not survive
    /// a disk-cache round trip. Cross-run persistence goes through the
    /// separate `clip-bench` fingerprint-baseline store (`target/clip-fp/`,
    /// gated by `CLIP_FP_BASELINE`), which serializes this stream via
    /// [`crate::fingerprint::stream_to_json`] instead.
    pub fingerprints: Vec<crate::fingerprint::WindowFingerprint>,
}

impl SimResult {
    /// Serializes the result as a JSON object whose keys mirror the
    /// struct fields exactly (what a derive-based serializer would emit),
    /// so external consumers can rely on the Rust names.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("label", Json::from(self.label.as_str())),
            (
                "per_core_ipc",
                Json::array(self.per_core_ipc.iter().map(|&x| Json::Float(x))),
            ),
            ("cycles", Json::from(self.cycles)),
            (
                "latency",
                Json::object([
                    ("l1_miss", lat_stat_json(&self.latency.l1_miss)),
                    ("by_l2", lat_stat_json(&self.latency.by_l2)),
                    ("by_llc", lat_stat_json(&self.latency.by_llc)),
                    ("by_dram", lat_stat_json(&self.latency.by_dram)),
                ]),
            ),
            (
                "prefetch",
                Json::object([
                    ("candidates", Json::from(self.prefetch.candidates)),
                    ("issued", Json::from(self.prefetch.issued)),
                    ("useful", Json::from(self.prefetch.useful)),
                    ("useless", Json::from(self.prefetch.useless)),
                    ("late", Json::from(self.prefetch.late)),
                ]),
            ),
            (
                "misses",
                Json::object([
                    ("l1_accesses", Json::from(self.misses.l1_accesses)),
                    ("l1_misses", Json::from(self.misses.l1_misses)),
                    ("l2_accesses", Json::from(self.misses.l2_accesses)),
                    ("l2_misses", Json::from(self.misses.l2_misses)),
                    ("llc_accesses", Json::from(self.misses.llc_accesses)),
                    ("llc_misses", Json::from(self.misses.llc_misses)),
                ]),
            ),
            ("dram_transfers", Json::from(self.dram_transfers)),
            ("dram_row_hits", Json::from(self.dram_row_hits)),
            ("dram_bw_util", Json::Float(self.dram_bw_util)),
            (
                "dram_max_channel_util",
                Json::Float(self.dram_max_channel_util),
            ),
            ("noc_flit_hops", Json::from(self.noc_flit_hops)),
            (
                "clip",
                match &self.clip {
                    Some(c) => clip_report_json(c),
                    None => Json::Null,
                },
            ),
            (
                "baseline_evals",
                Json::array(self.baseline_evals.iter().map(|(name, counts)| {
                    Json::object([
                        ("name", Json::from(*name)),
                        ("counts", eval_counts_json(counts)),
                    ])
                })),
            ),
            (
                "energy",
                Json::object([
                    ("l1_reads", Json::from(self.energy.l1_reads)),
                    ("l1_writes", Json::from(self.energy.l1_writes)),
                    ("l2_reads", Json::from(self.energy.l2_reads)),
                    ("l2_writes", Json::from(self.energy.l2_writes)),
                    ("llc_reads", Json::from(self.energy.llc_reads)),
                    ("llc_writes", Json::from(self.energy.llc_writes)),
                    ("dram_row_hits", Json::from(self.energy.dram_row_hits)),
                    ("dram_row_misses", Json::from(self.energy.dram_row_misses)),
                    ("noc_flit_hops", Json::from(self.energy.noc_flit_hops)),
                    ("clip_lookups", Json::from(self.energy.clip_lookups)),
                ]),
            ),
            (
                "timeline",
                Json::array(self.timeline.iter().map(|p| {
                    Json::object([
                        ("cycle", Json::from(p.cycle)),
                        ("retired", Json::from(p.retired)),
                        ("dram_transfers", Json::from(p.dram_transfers)),
                        ("bw_util", Json::Float(p.bw_util)),
                        ("prefetches", Json::from(p.prefetches)),
                    ])
                })),
            ),
        ])
    }

    /// Parses a result back from the [`SimResult::to_json`] schema.
    ///
    /// Returns `None` on any shape mismatch — callers (the on-disk
    /// baseline cache) treat that as a cache miss and recompute. Finite
    /// floats round-trip exactly; a result containing non-finite floats
    /// (rendered as `null`) does not parse back.
    pub fn from_json(v: &Json) -> Option<SimResult> {
        let f = |node: &Json, key: &str| node.get(key)?.as_f64();
        let u = |node: &Json, key: &str| node.get(key)?.as_u64();
        let lat = |node: &Json, key: &str| -> Option<LatencyStat> {
            let s = node.get(key)?;
            Some(LatencyStat {
                count: u(s, "count")?,
                total: u(s, "total")?,
            })
        };
        let eval = |node: &Json| -> Option<EvalCounts> {
            Some(EvalCounts {
                true_positive: u(node, "true_positive")?,
                false_positive: u(node, "false_positive")?,
                false_negative: u(node, "false_negative")?,
                true_negative: u(node, "true_negative")?,
            })
        };

        let latency = v.get("latency")?;
        let prefetch = v.get("prefetch")?;
        let misses = v.get("misses")?;
        let energy = v.get("energy")?;

        let clip = match v.get("clip")? {
            Json::Null => None,
            c => {
                let s = c.get("stats")?;
                Some(ClipReport {
                    stats: ClipStats {
                        candidates: u(s, "candidates")?,
                        allowed_critical: u(s, "allowed_critical")?,
                        allowed_explore: u(s, "allowed_explore")?,
                        dropped_not_critical: u(s, "dropped_not_critical")?,
                        dropped_predicted: u(s, "dropped_predicted")?,
                        dropped_low_accuracy: u(s, "dropped_low_accuracy")?,
                        dropped_phase: u(s, "dropped_phase")?,
                        phase_changes: u(s, "phase_changes")?,
                        windows: u(s, "windows")?,
                    },
                    eval: eval(c.get("eval")?)?,
                    ip_eval: eval(c.get("ip_eval")?)?,
                    critical_ips: f(c, "critical_ips")?,
                    dynamic_ips: f(c, "dynamic_ips")?,
                    // The `engines` key is optional (absent for every
                    // single-engine run and for artifacts written before
                    // the composite schema existed).
                    engines: {
                        let mut engines = [ClipEngineReport::default(); MAX_PF_ENGINES];
                        if let Some(arr) = c.get("engines").and_then(|e| e.as_array()) {
                            for (slot, entry) in engines.iter_mut().zip(arr) {
                                *slot = ClipEngineReport {
                                    issued: u(entry, "issued")?,
                                    hits: u(entry, "hits")?,
                                    min_level: u8::try_from(u(entry, "min_level")?).ok()?,
                                };
                            }
                        }
                        engines
                    },
                    num_engines: match c.get("engines").and_then(|e| e.as_array()) {
                        Some(arr) => arr.len().min(MAX_PF_ENGINES),
                        None => 0,
                    },
                })
            }
        };

        let mut baseline_evals = Vec::new();
        for entry in v.get("baseline_evals")?.as_array()? {
            // Names are interned against the known predictor set: the
            // field is `&'static str` in the live struct.
            let name = intern_predictor_name(entry.get("name")?.as_str()?)?;
            baseline_evals.push((name, eval(entry.get("counts")?)?));
        }

        let mut timeline = Vec::new();
        for p in v.get("timeline")?.as_array()? {
            timeline.push(TimelinePoint {
                cycle: u(p, "cycle")?,
                retired: u(p, "retired")?,
                dram_transfers: u(p, "dram_transfers")?,
                bw_util: f(p, "bw_util")?,
                prefetches: u(p, "prefetches")?,
            });
        }

        Some(SimResult {
            label: v.get("label")?.as_str()?.to_owned(),
            per_core_ipc: v
                .get("per_core_ipc")?
                .as_array()?
                .iter()
                .map(|x| x.as_f64())
                .collect::<Option<Vec<f64>>>()?,
            cycles: u(v, "cycles")?,
            latency: LatencyReport {
                l1_miss: lat(latency, "l1_miss")?,
                by_l2: lat(latency, "by_l2")?,
                by_llc: lat(latency, "by_llc")?,
                by_dram: lat(latency, "by_dram")?,
            },
            prefetch: PrefetchReport {
                candidates: u(prefetch, "candidates")?,
                issued: u(prefetch, "issued")?,
                useful: u(prefetch, "useful")?,
                useless: u(prefetch, "useless")?,
                late: u(prefetch, "late")?,
            },
            misses: MissReport {
                l1_accesses: u(misses, "l1_accesses")?,
                l1_misses: u(misses, "l1_misses")?,
                l2_accesses: u(misses, "l2_accesses")?,
                l2_misses: u(misses, "l2_misses")?,
                llc_accesses: u(misses, "llc_accesses")?,
                llc_misses: u(misses, "llc_misses")?,
            },
            dram_transfers: u(v, "dram_transfers")?,
            dram_row_hits: u(v, "dram_row_hits")?,
            dram_bw_util: f(v, "dram_bw_util")?,
            dram_max_channel_util: f(v, "dram_max_channel_util")?,
            noc_flit_hops: u(v, "noc_flit_hops")?,
            clip,
            baseline_evals,
            energy: EnergyCounts {
                l1_reads: u(energy, "l1_reads")?,
                l1_writes: u(energy, "l1_writes")?,
                l2_reads: u(energy, "l2_reads")?,
                l2_writes: u(energy, "l2_writes")?,
                llc_reads: u(energy, "llc_reads")?,
                llc_writes: u(energy, "llc_writes")?,
                dram_row_hits: u(energy, "dram_row_hits")?,
                dram_row_misses: u(energy, "dram_row_misses")?,
                noc_flit_hops: u(energy, "noc_flit_hops")?,
                clip_lookups: u(energy, "clip_lookups")?,
            },
            timeline,
            // Never serialized (see the field docs): a cache round trip
            // yields a result without fingerprints.
            fingerprints: Vec::new(),
        })
    }

    /// Mean IPC across cores.
    pub fn mean_ipc(&self) -> f64 {
        if self.per_core_ipc.is_empty() {
            return 0.0;
        }
        self.per_core_ipc.iter().sum::<f64>() / self.per_core_ipc.len() as f64
    }

    /// Prefetch coverage at a level: fraction of the *baseline's* demand
    /// misses removed. Needs the no-prefetch run's miss count.
    pub fn coverage_vs(&self, baseline_misses: u64, own_misses: u64) -> f64 {
        if baseline_misses == 0 {
            0.0
        } else {
            1.0 - (own_misses as f64 / baseline_misses as f64).min(1.0)
        }
    }
}

/// Maps a parsed predictor name back to its `&'static str` (the live
/// struct stores static names). Unknown names fail the whole parse.
fn intern_predictor_name(name: &str) -> Option<&'static str> {
    clip_crit::BaselineKind::all()
        .into_iter()
        .map(|k| clip_crit::build(k).name())
        .find(|&n| n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_report_metrics() {
        let p = PrefetchReport {
            candidates: 100,
            issued: 80,
            useful: 60,
            useless: 20,
            late: 15,
        };
        assert!((p.accuracy() - 0.75).abs() < 1e-12);
        assert!((p.lateness() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_reports_are_neutral() {
        let p = PrefetchReport::default();
        assert_eq!(p.accuracy(), 1.0);
        assert_eq!(p.lateness(), 0.0);
    }

    #[test]
    fn coverage_math() {
        let r = SimResult::default();
        assert!((r.coverage_vs(100, 40) - 0.6).abs() < 1e-12);
        assert_eq!(r.coverage_vs(0, 40), 0.0);
        assert_eq!(r.coverage_vs(100, 150), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = SimResult {
            label: "berti/mix0".into(),
            per_core_ipc: vec![1.25, 0.5],
            cycles: 1234,
            latency: LatencyReport {
                l1_miss: LatencyStat {
                    count: 3,
                    total: 99,
                },
                ..LatencyReport::default()
            },
            prefetch: PrefetchReport {
                candidates: 10,
                issued: 8,
                useful: 5,
                useless: 2,
                late: 1,
            },
            dram_transfers: 77,
            dram_bw_util: 0.375,
            clip: Some(ClipReport {
                critical_ips: 4.5,
                engines: {
                    let mut e = [ClipEngineReport::default(); MAX_PF_ENGINES];
                    e[0] = ClipEngineReport {
                        issued: 40,
                        hits: 30,
                        min_level: 5,
                    };
                    e[1] = ClipEngineReport {
                        issued: 12,
                        hits: 1,
                        min_level: 2,
                    };
                    e
                },
                num_engines: 2,
                ..ClipReport::default()
            }),
            baseline_evals: vec![(
                "FVP",
                EvalCounts {
                    true_positive: 7,
                    ..EvalCounts::default()
                },
            )],
            timeline: vec![TimelinePoint {
                cycle: 100,
                retired: 50,
                dram_transfers: 5,
                bw_util: 0.25,
                prefetches: 2,
            }],
            ..SimResult::default()
        };
        let text = r.to_json().render();
        let back = SimResult::from_json(&Json::parse(&text).expect("parses")).expect("roundtrips");
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.per_core_ipc, r.per_core_ipc);
        assert_eq!(back.baseline_evals[0].0, "FVP");
        let clip = back.clip.expect("clip present");
        assert_eq!(clip.num_engines, 2);
        assert_eq!(clip.engines[1].hits, 1);
        assert_eq!(clip.engines[2], ClipEngineReport::default());

        // Single-engine reports omit the key entirely, keeping the
        // artifact byte-identical to the pre-composite schema.
        let solo = SimResult {
            clip: Some(ClipReport::default()),
            ..SimResult::default()
        };
        let solo_text = solo.to_json().render();
        assert!(!solo_text.contains("\"engines\""));
        let solo_back =
            SimResult::from_json(&Json::parse(&solo_text).expect("parses")).expect("roundtrips");
        assert_eq!(solo_back.clip.expect("clip present").num_engines, 0);

        // Unknown predictor names must fail the parse, not alias.
        let bad = text.replace("\"FVP\"", "\"NOPE\"");
        assert!(SimResult::from_json(&Json::parse(&bad).expect("parses")).is_none());
    }

    #[test]
    fn mean_ipc() {
        let r = SimResult {
            per_core_ipc: vec![1.0, 3.0],
            ..SimResult::default()
        };
        assert!((r.mean_ipc() - 2.0).abs() < 1e-12);
    }
}
