//! Scheme descriptions: which mechanism stack runs on top of the baseline
//! platform (prefetcher + optional CLIP / throttler / baseline criticality
//! gate / Hermes / DSPatch).

use clip_core::{ClipConfig, DynamicClipConfig};
use clip_crit::BaselineKind;
use clip_throttle::ThrottlerKind;
use clip_types::PrefetcherKind;

/// One evaluated mechanism stack.
#[derive(Debug, Clone, Default)]
pub struct Scheme {
    /// Attach CLIP to the active prefetcher (at its training level).
    pub clip: Option<ClipConfig>,
    /// Use the §5.3 Dynamic CLIP governor: CLIP turns itself off when
    /// overall DRAM utilization stays low (requires `clip` to be set; the
    /// watermarks come from this config and its `clip` field is ignored).
    pub dynamic: Option<DynamicClipConfig>,
    /// Attach an epoch-level throttler (Figure 6).
    pub throttler: Option<ThrottlerKind>,
    /// Gate prefetches by a baseline criticality predictor (Figure 5):
    /// a candidate issues only if its trigger IP is predicted critical.
    pub crit_gate: Option<BaselineKind>,
    /// Enable Hermes off-chip prediction with direct DRAM probes (§5.3).
    pub hermes: bool,
    /// Enable DSPatch bandwidth-mode modulation (§5.3).
    pub dspatch: bool,
    /// Run the six baseline criticality predictors in evaluation-only mode
    /// (Figure 4) — they observe loads but gate nothing.
    pub evaluate_baselines: bool,
}

impl Scheme {
    /// The plain prefetcher (or no-prefetch baseline) with no add-ons.
    pub fn plain() -> Self {
        Scheme::default()
    }

    /// Prefetcher + CLIP with the paper's default configuration.
    pub fn with_clip() -> Self {
        Scheme {
            clip: Some(ClipConfig::default()),
            ..Scheme::default()
        }
    }

    /// Prefetcher + Dynamic CLIP (§5.3 future work): CLIP that bypasses
    /// itself when per-core DRAM bandwidth is plentiful.
    pub fn with_dynamic_clip() -> Self {
        Scheme {
            clip: Some(ClipConfig::default()),
            dynamic: Some(DynamicClipConfig::default()),
            ..Scheme::default()
        }
    }

    /// Prefetcher + a throttler.
    pub fn with_throttler(kind: ThrottlerKind) -> Self {
        Scheme {
            throttler: Some(kind),
            ..Scheme::default()
        }
    }

    /// Prefetcher gated by a baseline criticality predictor.
    pub fn with_crit_gate(kind: BaselineKind) -> Self {
        Scheme {
            crit_gate: Some(kind),
            ..Scheme::default()
        }
    }

    /// Prefetcher + Hermes.
    pub fn with_hermes() -> Self {
        Scheme {
            hermes: true,
            ..Scheme::default()
        }
    }

    /// Prefetcher + DSPatch.
    pub fn with_dspatch() -> Self {
        Scheme {
            dspatch: true,
            ..Scheme::default()
        }
    }

    /// A short label for experiment output, given the prefetcher.
    pub fn label(&self, prefetcher: PrefetcherKind) -> String {
        let mut s = prefetcher.name().to_string();
        if let Some(g) = self.crit_gate {
            s.push_str(&format!("+{:?}", g));
        }
        if let Some(t) = self.throttler {
            s.push_str(&format!("+{t}"));
        }
        if self.hermes {
            s.push_str("+Hermes");
        }
        if self.dspatch {
            s.push_str("+DSPatch");
        }
        if self.clip.is_some() {
            if self.dynamic.is_some() {
                s.push_str("+DynCLIP");
            } else {
                s.push_str("+CLIP");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_compose() {
        assert_eq!(Scheme::plain().label(PrefetcherKind::Berti), "Berti");
        assert_eq!(
            Scheme::with_clip().label(PrefetcherKind::Berti),
            "Berti+CLIP"
        );
        assert_eq!(
            Scheme::with_throttler(ThrottlerKind::Fdp).label(PrefetcherKind::Ipcp),
            "IPCP+FDP"
        );
        assert_eq!(
            Scheme::with_hermes().label(PrefetcherKind::Berti),
            "Berti+Hermes"
        );
        assert_eq!(
            Scheme::with_dynamic_clip().label(PrefetcherKind::Berti),
            "Berti+DynCLIP"
        );
    }
}
