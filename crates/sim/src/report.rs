//! Human-readable reports over [`SimResult`]s: the formatting used by the
//! `clipsim` CLI and handy for ad-hoc analysis in tests and notebooks.

use crate::result::SimResult;
use clip_stats::normalized_weighted_speedup;
use std::fmt;

/// A side-by-side comparison of a scheme against its no-prefetch baseline.
#[derive(Debug, Clone)]
pub struct ComparisonReport<'a> {
    /// Scheme label shown in the header.
    pub label: String,
    /// The scheme's result.
    pub result: &'a SimResult,
    /// The no-prefetch baseline on the same platform and mix.
    pub baseline: &'a SimResult,
}

impl<'a> ComparisonReport<'a> {
    /// Builds a comparison report.
    pub fn new(label: impl Into<String>, result: &'a SimResult, baseline: &'a SimResult) -> Self {
        ComparisonReport {
            label: label.into(),
            result,
            baseline,
        }
    }

    /// Normalized weighted speedup vs the baseline.
    pub fn normalized_ws(&self) -> f64 {
        normalized_weighted_speedup(&self.result.per_core_ipc, &self.baseline.per_core_ipc)
    }
}

impl fmt::Display for ComparisonReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.result;
        let b = self.baseline;
        writeln!(f, "scheme              : {}", self.label)?;
        writeln!(
            f,
            "normalized WS       : {:.3}  (no-prefetch = 1.000)",
            self.normalized_ws()
        )?;
        writeln!(
            f,
            "mean IPC            : {:.3} (baseline {:.3})",
            r.mean_ipc(),
            b.mean_ipc()
        )?;
        writeln!(
            f,
            "L1 miss latency     : {:.0} cycles (baseline {:.0})",
            r.latency.l1_miss.avg(),
            b.latency.l1_miss.avg()
        )?;
        writeln!(
            f,
            "  by service level  : L2 {:.0} / LLC {:.0} / DRAM {:.0} cycles",
            r.latency.by_l2.avg(),
            r.latency.by_llc.avg(),
            r.latency.by_dram.avg()
        )?;
        writeln!(
            f,
            "demand misses       : L1 {} / L2 {} / LLC {} (baseline {} / {} / {})",
            r.misses.l1_misses,
            r.misses.l2_misses,
            r.misses.llc_misses,
            b.misses.l1_misses,
            b.misses.l2_misses,
            b.misses.llc_misses
        )?;
        writeln!(
            f,
            "prefetches          : {} issued, {:.1}% accurate, {:.1}% late",
            r.prefetch.issued,
            r.prefetch.accuracy() * 100.0,
            r.prefetch.lateness() * 100.0
        )?;
        write!(
            f,
            "DRAM                : {} transfers ({} baseline), {:.0}% bandwidth utilization",
            r.dram_transfers,
            b.dram_transfers,
            r.dram_bw_util * 100.0
        )?;
        if let Some(c) = &r.clip {
            writeln!(f)?;
            writeln!(
                f,
                "CLIP                : {:.0}% of candidates dropped, {:.1} critical IPs/core ({:.1} dynamic)",
                c.stats.drop_rate() * 100.0,
                c.critical_ips,
                c.dynamic_ips
            )?;
            write!(
                f,
                "CLIP prediction     : {:.0}% accuracy / {:.0}% coverage (critical IPs)",
                c.ip_eval.accuracy() * 100.0,
                c.ip_eval.coverage() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{MissReport, PrefetchReport};

    fn result(ipc: f64) -> SimResult {
        SimResult {
            per_core_ipc: vec![ipc; 4],
            misses: MissReport {
                l1_accesses: 1000,
                l1_misses: 100,
                ..MissReport::default()
            },
            prefetch: PrefetchReport {
                issued: 50,
                useful: 40,
                useless: 10,
                ..PrefetchReport::default()
            },
            dram_transfers: 120,
            ..SimResult::default()
        }
    }

    #[test]
    fn normalized_ws_matches_ratio() {
        let r = result(0.5);
        let b = result(0.4);
        let rep = ComparisonReport::new("Berti", &r, &b);
        assert!((rep.normalized_ws() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn display_has_every_section() {
        let r = result(0.5);
        let b = result(0.4);
        let s = ComparisonReport::new("Berti", &r, &b).to_string();
        for needle in [
            "scheme",
            "normalized WS",
            "L1 miss latency",
            "prefetches",
            "DRAM",
        ] {
            assert!(s.contains(needle), "missing section {needle}: {s}");
        }
        assert!(
            !s.contains("CLIP prediction"),
            "no CLIP section without CLIP"
        );
    }

    #[test]
    fn display_includes_clip_when_present() {
        let mut r = result(0.6);
        r.clip = Some(crate::result::ClipReport::default());
        let b = result(0.4);
        let s = ComparisonReport::new("Berti+CLIP", &r, &b).to_string();
        assert!(s.contains("CLIP prediction"));
    }
}
