//! Deterministic fault injection.
//!
//! A [`FaultSpec`] in [`crate::RunOptions`] arms one fault that the cycle
//! loop triggers at a chosen cycle: drop an in-flight NoC flit, swallow a
//! DRAM completion, leak an LLC MSHR entry, or discard every NoC delivery
//! from that cycle on. The first three each violate exactly one
//! conservation invariant, so tests can prove the matching auditor fires;
//! the last is invisible to every conservation audit and wedges the whole
//! system, exercising the forward-progress watchdog.
//!
//! Victim selection draws from a [`SimRng`] seeded from the run seed, so
//! a given `(options, config, scheme, mix)` always kills the same flit or
//! entry — the resulting [`clip_types::SimError`] is bit-identical across
//! serial and parallel runs.

use clip_types::rng::SimRng;
use clip_types::Cycle;

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Discard one flit buffered inside the NoC fabric. Caught by the
    /// NoC flit-conservation audit.
    DropFlit,
    /// Discard one in-flight DRAM read completion. Caught by the DRAM
    /// read-conservation audit.
    SwallowDramCompletion,
    /// Remove one outstanding LLC MSHR entry without completing it.
    /// Caught by the MSHR allocation/release balance audit.
    LeakLlcMshr,
    /// From the trigger cycle on, discard every NoC delivery after the
    /// network has accounted for it. No conservation audit can see this;
    /// only the forward-progress watchdog reports the hang.
    LoseDelivery,
}

/// One armed fault: what to break and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault class.
    pub kind: FaultKind,
    /// Cycle at which to trigger. If the target structure is empty at
    /// that cycle, the harness retries each cycle until a victim exists.
    pub at: Cycle,
}

/// Run-time state of an armed fault.
pub(crate) struct FaultHarness {
    pub(crate) spec: FaultSpec,
    /// Cycle the fault actually landed, once it has.
    pub(crate) fired: Option<Cycle>,
    rng: SimRng,
}

impl FaultHarness {
    pub(crate) fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultHarness {
            spec,
            fired: None,
            // Decorrelate from the workload generators, which derive
            // their streams from the same run seed.
            rng: SimRng::seed_from_u64(seed ^ 0xFA01_7AB1E),
        }
    }

    /// Draws the next victim selector.
    pub(crate) fn selector(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
