//! Deterministic fault injection.
//!
//! A [`FaultSpec`] in [`crate::RunOptions`] arms one fault that the cycle
//! loop triggers at a chosen cycle. The *loss* kinds make state vanish:
//! drop an in-flight NoC flit, swallow a DRAM completion, leak an LLC
//! MSHR entry, or discard every NoC delivery from that cycle on. The
//! *corruption* kinds change state without losing any: flip a prefetch's
//! criticality bit, duplicate a load wakeup, corrupt a queued prefetch
//! address, or retire a ROB head without credit. Each fault is pinned to
//! the auditor that must catch it by a table-driven test; the two
//! deliberately audit-invisible kinds (`LoseDelivery`, `FlipCriticality`)
//! exercise the watchdog and the fingerprint localizer respectively.
//!
//! Victim selection draws from a [`SimRng`] seeded from the run seed, so
//! a given `(options, config, scheme, mix)` always kills the same flit or
//! entry — the resulting [`clip_types::SimError`] is bit-identical across
//! serial and parallel runs.

use clip_types::rng::SimRng;
use clip_types::Cycle;

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Discard one flit buffered inside the NoC fabric. Caught by the
    /// NoC flit-conservation audit.
    DropFlit,
    /// Discard one in-flight DRAM read completion. Caught by the DRAM
    /// read-conservation audit.
    SwallowDramCompletion,
    /// Remove one outstanding LLC MSHR entry without completing it.
    /// Caught by the MSHR allocation/release balance audit.
    LeakLlcMshr,
    /// From the trigger cycle on, discard every NoC delivery after the
    /// network has accounted for it. No conservation audit can see this;
    /// only the forward-progress watchdog reports the hang.
    LoseDelivery,
    /// Flip the criticality flag of one live prefetch transaction —
    /// corruption, not loss: nothing is unaccounted for, arbitration just
    /// makes different (wrong) decisions from then on. Invisible to every
    /// conservation audit by design; only the state-fingerprint comparison
    /// against a clean same-seed run localizes it.
    FlipCriticality,
    /// Mark one in-flight load done in a core's ROB without recording a
    /// completion, as a duplicated NoC delivery would. Caught by the
    /// core's load-queue conservation audit.
    DuplicateDelivery,
    /// Corrupt the line address of one queued prefetch so it points
    /// outside the simulated address space. Caught by the tile
    /// prefetch-queue legality scan under `CLIP_CHECK=full`.
    CorruptPrefetchAddr,
    /// Pop a core's ROB head without crediting the retired counter — a
    /// stale retire. Caught by the core's ROB conservation audit.
    StaleRetire,
}

/// One armed fault: what to break and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault class.
    pub kind: FaultKind,
    /// Cycle at which to trigger. If the target structure is empty at
    /// that cycle, the harness retries each cycle until a victim exists.
    pub at: Cycle,
}

/// Run-time state of an armed fault.
pub(crate) struct FaultHarness {
    pub(crate) spec: FaultSpec,
    /// Cycle the fault actually landed, once it has.
    pub(crate) fired: Option<Cycle>,
    rng: SimRng,
}

impl FaultHarness {
    pub(crate) fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultHarness {
            spec,
            fired: None,
            // Decorrelate from the workload generators, which derive
            // their streams from the same run seed.
            rng: SimRng::seed_from_u64(seed ^ 0xFA01_7AB1E),
        }
    }

    /// Draws the next victim selector.
    pub(crate) fn selector(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
