//! Property-based tests for the foundational types.

use clip_types::{Addr, BitHistory, Ip, LineAddr, SatCounter};
use proptest::prelude::*;

proptest! {
    /// Line/byte address conversions are consistent for any address.
    #[test]
    fn addr_line_roundtrip(raw in 0u64..(1 << 58)) {
        let a = Addr::new(raw);
        let l = a.line();
        prop_assert_eq!(l.byte_addr().raw(), raw & !63);
        prop_assert_eq!(l.byte_addr().raw() + a.line_offset(), raw);
        prop_assert_eq!(l.page(), a.page());
    }

    /// Page offsets always fit a 4 KiB page.
    #[test]
    fn line_page_offset_bounded(raw in any::<u64>()) {
        prop_assert!(LineAddr::new(raw).page_offset() < 64);
    }

    /// A saturating counter never leaves its range, and msb_set agrees
    /// with the numeric value, under any operation sequence.
    #[test]
    fn sat_counter_invariants(bits in 1u8..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SatCounter::new(bits);
        for up in ops {
            if up { c.inc() } else { c.dec() }
            prop_assert!(c.value() <= c.max());
            prop_assert_eq!(c.msb_set(), c.value() >= (1 << (bits - 1)));
        }
    }

    /// Bit history never holds more than `len` bits and the newest
    /// outcome always lands at bit zero.
    #[test]
    fn bit_history_invariants(len in 1u8..=64, outcomes in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut h = BitHistory::new(len);
        for &o in &outcomes {
            h.push(o);
            prop_assert_eq!(h.bits() & 1, o as u64);
            if len < 64 {
                prop_assert!(h.bits() < (1u64 << len));
            }
        }
    }

    /// IP tags stay within their configured width.
    #[test]
    fn ip_tag_bounded(raw in any::<u64>(), bits in 1u32..=32) {
        prop_assert!(Ip::new(raw).tag(bits) < (1u64 << bits));
    }

    /// hash64 is deterministic.
    #[test]
    fn hash64_deterministic(x in any::<u64>()) {
        prop_assert_eq!(clip_types::hash64(x), clip_types::hash64(x));
    }
}
