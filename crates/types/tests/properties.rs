//! Randomized invariant tests for the foundational types, driven by the
//! workspace's own deterministic [`SimRng`] so they run hermetically.

use clip_types::{Addr, BitHistory, Ip, LineAddr, SatCounter, SimRng};

/// Line/byte address conversions are consistent for any address.
#[test]
fn addr_line_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0xA11C);
    for _ in 0..10_000 {
        let raw = rng.gen_range(0u64..(1 << 58));
        let a = Addr::new(raw);
        let l = a.line();
        assert_eq!(l.byte_addr().raw(), raw & !63);
        assert_eq!(l.byte_addr().raw() + a.line_offset(), raw);
        assert_eq!(l.page(), a.page());
    }
}

/// Page offsets always fit a 4 KiB page.
#[test]
fn line_page_offset_bounded() {
    let mut rng = SimRng::seed_from_u64(0xBEEF);
    for _ in 0..10_000 {
        let raw = rng.next_u64();
        assert!(LineAddr::new(raw).page_offset() < 64);
    }
}

/// A saturating counter never leaves its range, and msb_set agrees with
/// the numeric value, under any operation sequence.
#[test]
fn sat_counter_invariants() {
    let mut rng = SimRng::seed_from_u64(0x5A7);
    for bits in 1u8..=7 {
        let mut c = SatCounter::new(bits);
        for _ in 0..200 {
            if rng.gen_bool(0.5) {
                c.inc()
            } else {
                c.dec()
            }
            assert!(c.value() <= c.max());
            assert_eq!(c.msb_set(), c.value() >= (1 << (bits - 1)));
        }
    }
}

/// Bit history never holds more than `len` bits and the newest outcome
/// always lands at bit zero.
#[test]
fn bit_history_invariants() {
    let mut rng = SimRng::seed_from_u64(0xB17);
    for len in 1u8..=64 {
        let mut h = BitHistory::new(len);
        for _ in 0..100 {
            let o = rng.gen_bool(0.5);
            h.push(o);
            assert_eq!(h.bits() & 1, o as u64);
            if len < 64 {
                assert!(h.bits() < (1u64 << len));
            }
        }
    }
}

/// IP tags stay within their configured width.
#[test]
fn ip_tag_bounded() {
    let mut rng = SimRng::seed_from_u64(0x1B);
    for _ in 0..4_096 {
        let raw = rng.next_u64();
        let bits = rng.gen_range(1u32..=32);
        assert!(Ip::new(raw).tag(bits) < (1u64 << bits));
    }
}

/// hash64 is deterministic.
#[test]
fn hash64_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xDE7);
    for _ in 0..4_096 {
        let x = rng.next_u64();
        assert_eq!(clip_types::hash64(x), clip_types::hash64(x));
    }
}
