//! Memory request/response plumbing shared by caches, NoC, and DRAM.

use crate::{Addr, CoreId, Cycle, Ip, LineAddr};
use std::fmt;

/// Unique identifier of an in-flight memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The level of the memory hierarchy that ultimately serviced a request.
///
/// This is the paper's *miss-level flag* generalised to an enum: `L1` means
/// the ROB's miss-level flag stays zero; anything deeper sets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Serviced by the L1 data cache (or load-store queue forwarding).
    L1,
    /// Serviced by the private L2.
    L2,
    /// Serviced by a shared LLC slice.
    Llc,
    /// Serviced by DRAM.
    Dram,
}

impl MemLevel {
    /// True when the paper's miss-level flag would be non-zero, i.e. the
    /// request was serviced beyond the L1.
    #[inline]
    pub fn is_beyond_l1(self) -> bool {
        self != MemLevel::L1
    }
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::Llc => "LLC",
            MemLevel::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// What kind of access a memory request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load issued by the core.
    Load,
    /// A demand store (write-allocate; does not block retirement).
    Store,
    /// A prefetch issued by a hardware prefetcher. `trigger_ip` is the IP of
    /// the demand load that trained/triggered it — the IP CLIP attributes
    /// the prefetch to.
    Prefetch {
        /// IP of the triggering demand load.
        trigger_ip: Ip,
        /// True when CLIP marked this prefetch critical-and-accurate; such
        /// prefetches receive demand priority at the NoC and DRAM.
        critical: bool,
    },
    /// A dirty line written back toward memory.
    Writeback,
}

impl AccessKind {
    /// True for demand loads/stores.
    #[inline]
    pub fn is_demand(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }

    /// True for prefetches (critical or not).
    #[inline]
    pub fn is_prefetch(self) -> bool {
        matches!(self, AccessKind::Prefetch { .. })
    }

    /// True for demand loads only.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// Scheduling priority at shared resources (NoC and DRAM controller).
///
/// With CLIP, critical-and-accurate prefetches are promoted to
/// [`Priority::Demand`]; plain prefetches stay at [`Priority::Prefetch`]
/// (the PADC / prefetch-aware NoC behaviour of the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Lowest: speculative traffic (plain prefetches).
    Prefetch,
    /// Writebacks: drained opportunistically.
    Writeback,
    /// Highest: demand requests and CLIP-critical prefetches.
    Demand,
}

/// A memory request travelling down the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Transaction id, unique within a simulation.
    pub id: ReqId,
    /// Issuing core (also selects the private caches and NoC source node).
    pub core: CoreId,
    /// Instruction pointer of the access (the trigger IP for prefetches).
    pub ip: Ip,
    /// Byte address accessed.
    pub addr: Addr,
    /// Access kind.
    pub kind: AccessKind,
    /// Cycle the request entered the hierarchy.
    pub issue_cycle: Cycle,
}

impl MemRequest {
    /// Cache line addressed by the request.
    #[inline]
    pub fn line(&self) -> LineAddr {
        self.addr.line()
    }

    /// Scheduling priority of this request at shared resources.
    #[inline]
    pub fn priority(&self) -> Priority {
        match self.kind {
            AccessKind::Load | AccessKind::Store => Priority::Demand,
            AccessKind::Prefetch { critical, .. } => {
                if critical {
                    Priority::Demand
                } else {
                    Priority::Prefetch
                }
            }
            AccessKind::Writeback => Priority::Writeback,
        }
    }
}

/// A response returning up the hierarchy to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The transaction this responds to.
    pub id: ReqId,
    /// The core that issued it.
    pub core: CoreId,
    /// Line serviced.
    pub line: LineAddr,
    /// Deepest level that serviced the request (the miss-level flag).
    pub level: MemLevel,
    /// Cycle the response reached the core.
    pub done_cycle: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: AccessKind) -> MemRequest {
        MemRequest {
            id: ReqId(1),
            core: CoreId(0),
            ip: Ip::new(0x400),
            addr: Addr::new(0x1000),
            kind,
            issue_cycle: 0,
        }
    }

    #[test]
    fn demand_requests_have_demand_priority() {
        assert_eq!(req(AccessKind::Load).priority(), Priority::Demand);
        assert_eq!(req(AccessKind::Store).priority(), Priority::Demand);
    }

    #[test]
    fn plain_prefetch_is_low_priority_critical_is_demand() {
        let plain = req(AccessKind::Prefetch {
            trigger_ip: Ip::new(0x400),
            critical: false,
        });
        let crit = req(AccessKind::Prefetch {
            trigger_ip: Ip::new(0x400),
            critical: true,
        });
        assert_eq!(plain.priority(), Priority::Prefetch);
        assert_eq!(crit.priority(), Priority::Demand);
        assert!(plain.priority() < crit.priority());
    }

    #[test]
    fn writeback_sits_between_prefetch_and_demand() {
        let wb = req(AccessKind::Writeback);
        assert!(wb.priority() > Priority::Prefetch);
        assert!(wb.priority() < Priority::Demand);
    }

    #[test]
    fn mem_level_beyond_l1() {
        assert!(!MemLevel::L1.is_beyond_l1());
        assert!(MemLevel::L2.is_beyond_l1());
        assert!(MemLevel::Llc.is_beyond_l1());
        assert!(MemLevel::Dram.is_beyond_l1());
    }

    #[test]
    fn request_line_matches_addr() {
        let r = req(AccessKind::Load);
        assert_eq!(r.line(), Addr::new(0x1000).line());
    }
}
