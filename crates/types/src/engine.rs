//! Engine-layer contracts shared by every clocked component.
//!
//! The simulator advances in lock-step: each cycle, every component —
//! core, cache hierarchy, NoC, DRAM — is ticked exactly once, and all
//! cross-component communication flows through explicit message ports.
//! This module defines that contract:
//!
//! * [`Tick`] — the single-method clocking interface a component exposes.
//! * [`Port`] / [`Channel`] — typed, bounded/unbounded FIFO message
//!   endpoints replacing ad-hoc `Vec` plumbing between components.
//! * [`SimClock`] — the cycle counter that drives a set of components.
//!
//! Keeping these in `clip-types` (not `clip-sim`) lets component crates
//! implement [`Tick`] directly, so a tile, a NoC, or a DRAM model can be
//! driven by any engine without depending on the system crate.

use crate::Cycle;
use std::collections::VecDeque;

/// A clocked component: advances exactly one cycle per call.
///
/// Implementations must be deterministic — given the same sequence of
/// `tick` calls and port traffic, a component must reach the same state.
/// That property is what makes the parallel sweep driver safe: each
/// simulated system is fully isolated and per-run results are
/// bit-reproducible regardless of host-thread scheduling.
pub trait Tick {
    /// Advances the component to the end of cycle `now`.
    fn tick(&mut self, now: Cycle);

    /// The earliest cycle `>= now` at which ticking this component does
    /// anything beyond bulk-accountable bookkeeping, or `None` when the
    /// component is idle until externally stimulated (a new message on
    /// one of its ports).
    ///
    /// The quiescence contract backing the event-wheel scheduler:
    ///
    /// * `Some(c)` with `c == now` — the component is active *this*
    ///   cycle; it must be ticked.
    /// * `Some(c)` with `c > now` — every tick in `now..c` is a no-op
    ///   (or bulk-accountable, e.g. a busy-cycle counter the engine
    ///   settles before skipping); the engine may advance the clock
    ///   straight to `c`.
    /// * `None` — no amount of clock advancement wakes the component;
    ///   only new port traffic does.
    ///
    /// Implementations must answer *honestly but conservatively*: it is
    /// always correct to return `Some(now)` (the default — components
    /// that never report quiescence are simply ticked every cycle), but
    /// claiming a later cycle than the component's true next state
    /// change breaks bit-exactness of skip-ahead runs.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }
}

/// An unbounded typed FIFO channel between two components.
///
/// One side pushes, the other drains; there is no interior mutability or
/// locking — the engine owns both ends and alternates access, which is
/// exactly the lock-step semantics of a hardware wire and keeps the whole
/// simulator `Send` without atomics.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    queue: VecDeque<T>,
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Channel {
            queue: VecDeque::new(),
        }
    }
}

impl<T> Channel<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message.
    #[inline]
    pub fn push(&mut self, msg: T) {
        self.queue.push_back(msg);
    }

    /// Dequeues the oldest message, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Drains every queued message in FIFO order.
    #[inline]
    pub fn drain(&mut self) -> std::collections::vec_deque::Drain<'_, T> {
        self.queue.drain(..)
    }

    /// Messages currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no message is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Peeks at the oldest message without removing it.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Iterates queued messages oldest-first without removing them.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }

    /// Occupancy hook for the [`Tick::next_activity`] contract: a queued
    /// message means the owning component has work *this* cycle
    /// (`Some(now)`); an empty channel contributes nothing (`None`).
    #[inline]
    pub fn activity(&self, now: Cycle) -> Option<Cycle> {
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }
}

/// A bounded typed port: a [`Channel`] with a capacity, modelling
/// finite buffering (back-pressure) at a component boundary.
#[derive(Debug, Clone)]
pub struct Port<T> {
    channel: Channel<T>,
    capacity: usize,
}

impl<T> Port<T> {
    /// Creates a port holding at most `capacity` messages.
    pub fn bounded(capacity: usize) -> Self {
        Port {
            channel: Channel::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to enqueue; returns `Err(msg)` when the port is full so
    /// the sender can retry (hardware back-pressure).
    #[inline]
    pub fn try_push(&mut self, msg: T) -> Result<(), T> {
        if self.channel.len() >= self.capacity {
            Err(msg)
        } else {
            self.channel.push(msg);
            Ok(())
        }
    }

    /// Dequeues the oldest message, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.channel.pop()
    }

    /// Peeks at the oldest message.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.channel.front()
    }

    /// Messages currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.channel.len()
    }

    /// True when no message is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channel.is_empty()
    }

    /// True when the port cannot accept another message.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.channel.len() >= self.capacity
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates queued messages oldest-first without removing them.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.channel.iter()
    }

    /// Occupancy hook for the [`Tick::next_activity`] contract: see
    /// [`Channel::activity`].
    #[inline]
    pub fn activity(&self, now: Cycle) -> Option<Cycle> {
        self.channel.activity(now)
    }
}

/// The lock-step cycle driver.
///
/// Owns the current cycle; components read it, only the engine advances
/// it. `SimClock` is deliberately dumb — scheduling policy (event wheels,
/// epochs) lives with the engine that owns the components.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock {
    now: Cycle,
}

impl SimClock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        SimClock { now: 0 }
    }

    /// Current cycle.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances to the next cycle and returns it.
    #[inline]
    pub fn advance(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances directly to `target` (the event-wheel skip). A `target`
    /// at or before the current cycle is a no-op — the clock never moves
    /// backwards.
    #[inline]
    pub fn advance_to(&mut self, target: Cycle) -> Cycle {
        self.now = self.now.max(target);
        self.now
    }

    /// Drives a set of components through one cycle at the current time.
    pub fn tick_all<'a>(&self, components: impl IntoIterator<Item = &'a mut dyn Tick>) {
        for c in components {
            c.tick(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_fifo() {
        let mut ch = Channel::new();
        ch.push(1);
        ch.push(2);
        ch.push(3);
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.pop(), Some(1));
        let rest: Vec<i32> = ch.drain().collect();
        assert_eq!(rest, vec![2, 3]);
        assert!(ch.is_empty());
    }

    #[test]
    fn port_applies_backpressure() {
        let mut p = Port::bounded(2);
        assert!(p.try_push(1).is_ok());
        assert!(p.try_push(2).is_ok());
        assert!(p.is_full());
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(p.pop(), Some(1));
        assert!(p.try_push(3).is_ok());
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn next_activity_defaults_to_always_active() {
        struct Plain;
        impl Tick for Plain {
            fn tick(&mut self, _now: Cycle) {}
        }
        // A component that does not opt into the quiescence contract is
        // conservatively active every cycle.
        assert_eq!(Plain.next_activity(0), Some(0));
        assert_eq!(Plain.next_activity(97), Some(97));
    }

    #[test]
    fn occupancy_hooks_report_activity() {
        let mut ch = Channel::new();
        assert_eq!(ch.activity(5), None);
        ch.push(1);
        assert_eq!(ch.activity(5), Some(5));
        let mut p = Port::bounded(1);
        assert_eq!(p.activity(9), None);
        p.try_push(1).unwrap();
        assert_eq!(p.activity(9), Some(9));
    }

    #[test]
    fn clock_advances_to_target_never_backwards() {
        let mut clock = SimClock::new();
        assert_eq!(clock.advance_to(10), 10);
        assert_eq!(clock.now(), 10);
        assert_eq!(clock.advance_to(3), 10, "never backwards");
        assert_eq!(clock.advance(), 11);
    }

    #[test]
    fn clock_drives_components() {
        struct Counter(u64, Vec<Cycle>);
        impl Tick for Counter {
            fn tick(&mut self, now: Cycle) {
                self.0 += 1;
                self.1.push(now);
            }
        }
        let mut clock = SimClock::new();
        let mut a = Counter(0, Vec::new());
        let mut b = Counter(0, Vec::new());
        for _ in 0..3 {
            clock.tick_all([&mut a as &mut dyn Tick, &mut b as &mut dyn Tick]);
            clock.advance();
        }
        assert_eq!(clock.now(), 3);
        assert_eq!(a.0, 3);
        assert_eq!(b.1, vec![0, 1, 2]);
    }
}
