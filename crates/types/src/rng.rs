//! A small, self-contained pseudo-random number generator.
//!
//! The workspace must build with no external crates (the registry is
//! unreachable in CI and in the experiment containers), so workload
//! generation cannot depend on `rand`. [`SimRng`] is a xoshiro256**
//! generator seeded through SplitMix64 — the same construction the
//! reference implementation recommends — giving high-quality, fully
//! deterministic streams from a single `u64` seed.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen_bool`, `gen_f64`, `gen_range` over integer and
//! float ranges), so call sites read the same.
//!
//! # Examples
//!
//! ```
//! use clip_types::rng::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u64..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53-bit mantissa).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection-free
    /// widening multiply (tiny bias below 1/2^64, irrelevant here and —
    /// crucially — deterministic).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform sample from a range, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        R::sample(range, self)
    }
}

/// Range types [`SimRng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draws one uniform sample from `range`.
    fn sample(range: Self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(range: Self, rng: &mut SimRng) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(range: Self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(range: Self, rng: &mut SimRng) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SimRng::seed_from_u64(43);
        let c: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let z = r.gen_range(1u8..=3);
            assert!((1..=3).contains(&z));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn output_spreads_across_words() {
        // Avalanche sanity: adjacent seeds differ in many bits.
        let a = SimRng::seed_from_u64(100).next_u64();
        let b = SimRng::seed_from_u64(101).next_u64();
        assert!((a ^ b).count_ones() > 10);
    }
}
