//! Common vocabulary types for the CLIP many-core simulation workspace.
//!
//! This crate defines the identifiers (addresses, instruction pointers, core
//! ids), memory-request plumbing, and the configuration structs shared by
//! every other crate in the workspace. It deliberately contains no policy —
//! only data.
//!
//! # Examples
//!
//! ```
//! use clip_types::{Addr, LINE_BYTES};
//!
//! let a = Addr::new(0x1234_5678);
//! assert_eq!(a.line().byte_addr().raw() % LINE_BYTES as u64, 0);
//! assert_eq!(a.line_offset(), 0x78 % 64);
//! ```

pub mod check;
pub mod config;
pub mod engine;
pub mod knob;
pub mod request;
pub mod rng;

pub use check::{CheckLevel, SimError, SimErrorKind};
pub use config::{
    CacheLevelConfig, CoreConfig, DramConfig, DramKind, NocConfig, PrefetcherKind, ReplacementKind,
    SimConfig, SimConfigBuilder,
};
pub use engine::{Channel, Port, SimClock, Tick};
pub use request::{AccessKind, MemLevel, MemRequest, MemResponse, Priority, ReqId};
pub use rng::SimRng;

use std::fmt;

/// Number of bytes in a cache line across the entire hierarchy.
pub const LINE_BYTES: usize = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Number of bytes in a (small) virtual page.
pub const PAGE_BYTES: usize = 4096;

/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 12;

/// A simulation timestamp in core clock cycles (4 GHz in the baseline).
pub type Cycle = u64;

/// Upper bound on concurrently running prefetch engines inside one
/// composite prefetcher. Engine tags on prefetch candidates, the per-engine
/// accounting in CLIP's utility buffer, and the tile's per-engine queue
/// balances all size their fixed arrays with this, so reports stay `Copy`.
/// Single-engine prefetchers always use engine 0.
pub const MAX_PF_ENGINES: usize = 4;

/// A byte-granular virtual address.
///
/// The simulator does not model paging faults; virtual addresses are used
/// directly for cache indexing (physically-indexed behaviour is emulated by
/// the per-core address-space offset applied in `clip-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte belongs to.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the page this byte belongs to.
    #[inline]
    pub const fn page(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Returns the byte offset within the cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES as u64 - 1)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granular address (byte address shifted right by
/// [`LINE_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the line.
    #[inline]
    pub const fn byte_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Returns the page number of the line.
    #[inline]
    pub const fn page(self) -> u64 {
        self.0 >> (PAGE_SHIFT - LINE_SHIFT)
    }

    /// Returns the line offset within its 4 KiB page (0..64).
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((PAGE_BYTES as u64 >> LINE_SHIFT) - 1)
    }

    /// Returns the line shifted by a signed delta (in lines), saturating at
    /// zero.
    #[inline]
    pub fn offset_by(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add_signed(delta))
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0 << LINE_SHIFT)
    }
}

/// An instruction pointer (program counter) identifying a static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(u64);

impl Ip {
    /// Creates an instruction pointer from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Ip(raw)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns a small tag of `bits` low-order (folded) bits, as used by the
    /// hardware tables in the paper (6-bit IP tags).
    #[inline]
    pub fn tag(self, bits: u32) -> u64 {
        debug_assert!(bits > 0 && bits <= 32);
        let mask = (1u64 << bits) - 1;
        // Hash the IP so that tags depend on all bits, not just the low ones.
        hash64(self.0) & mask
    }
}

impl From<u64> for Ip {
    fn from(raw: u64) -> Self {
        Ip(raw)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip:{:#x}", self.0)
    }
}

/// Identifies one core (and its tile) in the many-core system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Returns the core index as a `usize` for table indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A fixed-width saturating counter, the workhorse of every predictor table
/// in the paper (e.g. CLIP's 3-bit criticality confidence counters).
///
/// # Examples
///
/// ```
/// use clip_types::SatCounter;
///
/// let mut c = SatCounter::new(3); // 3-bit, initialised to midpoint (4)
/// assert!(c.msb_set());
/// c.dec(); c.dec(); c.dec(); c.dec(); c.dec();
/// assert_eq!(c.value(), 0);
/// assert!(!c.msb_set());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    bits: u8,
}

impl SatCounter {
    /// Creates a `bits`-wide counter initialised to its midpoint
    /// (2^(bits-1)), as the paper specifies for the criticality predictor.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 7.
    pub fn new(bits: u8) -> Self {
        assert!(bits > 0 && bits <= 7, "counter width must be in 1..=7");
        SatCounter {
            value: 1 << (bits - 1),
            bits,
        }
    }

    /// Creates a counter with an explicit starting value (clamped to range).
    pub fn with_value(bits: u8, value: u8) -> Self {
        let mut c = Self::new(bits);
        c.value = value.min(c.max());
        c
    }

    /// Maximum representable value (2^bits - 1).
    #[inline]
    pub fn max(self) -> u8 {
        (1u8 << self.bits) - 1
    }

    /// Current value.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Counter width in bits.
    #[inline]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// True when the most significant bit is set — the paper's "predict
    /// critical" condition.
    #[inline]
    pub fn msb_set(self) -> bool {
        self.value >= (1 << (self.bits - 1))
    }

    /// Resets to the midpoint.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 1 << (self.bits - 1);
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        SatCounter::new(3)
    }
}

/// A fixed-length shift-register history of single-bit outcomes, used for
/// the 32-bit global branch history and 32-bit global criticality history
/// that feed CLIP's critical signature.
///
/// # Examples
///
/// ```
/// use clip_types::BitHistory;
///
/// let mut h = BitHistory::new(32);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.bits() & 0b111, 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitHistory {
    bits: u64,
    len: u8,
}

impl BitHistory {
    /// Creates a history of `len` bits (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 64.
    pub fn new(len: u8) -> Self {
        assert!((1..=64).contains(&len), "history length must be in 1..=64");
        BitHistory { bits: 0, len }
    }

    /// Shifts a new outcome into the history (newest at bit 0).
    #[inline]
    pub fn push(&mut self, outcome: bool) {
        let mask = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        self.bits = ((self.bits << 1) | outcome as u64) & mask;
    }

    /// Returns the packed history bits (newest outcome at bit 0).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Returns the configured history length.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True if no outcome has been recorded and the register is all-zero.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Clears the history register.
    #[inline]
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

/// Mixes a 64-bit value (xorshift-multiply), used by the table-index hash
/// functions throughout the workspace. Deterministic and cheap.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    // splitmix64 finalizer — excellent avalanche, no secret state.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Incremental FNV-1a (64-bit) hasher used by the state-fingerprint
/// auditors: each component folds its architectural and queue state into
/// one `u64` per cadence window. Order-sensitive by design — callers must
/// fold unordered collections (e.g. `HashMap` contents) in a sorted,
/// deterministic order or the fingerprint is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds one 64-bit word, byte by byte (little-endian).
    #[inline]
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        for b in x.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `usize` (as u64, platform-independent for values < 2^64).
    #[inline]
    pub fn write_usize(&mut self, x: usize) -> &mut Self {
        self.write_u64(x as u64)
    }

    /// Folds a boolean as a full word so adjacent flags cannot alias.
    #[inline]
    pub fn write_bool(&mut self, x: bool) -> &mut Self {
        self.write_u64(u64::from(x))
    }

    /// The hash of everything folded so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2).write_bool(true);
        let mut b = Fnv64::new();
        b.write_u64(1).write_u64(2).write_bool(true);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(2).write_u64(1).write_bool(true);
        assert_ne!(a.finish(), c.finish(), "order must matter");
        // Known FNV-1a vector: hashing nothing yields the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn addr_line_and_offset_roundtrip() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().byte_addr().raw(), 0xdead_beef & !63);
        assert_eq!(a.line_offset(), 0xdead_beef % 64);
        assert_eq!(a.page(), 0xdead_beef >> 12);
    }

    #[test]
    fn line_addr_page_offset_is_within_page() {
        for raw in [0u64, 1, 63, 64, 65, 1 << 20, u64::MAX >> 7] {
            let l = LineAddr::new(raw);
            assert!(l.page_offset() < 64, "line offset in 4K page is 0..64");
            assert_eq!(l.page(), l.byte_addr().page());
        }
    }

    #[test]
    fn line_addr_offset_by_moves_by_delta() {
        let l = LineAddr::new(100);
        assert_eq!(l.offset_by(5).raw(), 105);
        assert_eq!(l.offset_by(-5).raw(), 95);
    }

    #[test]
    fn ip_tag_is_masked_and_stable() {
        let ip = Ip::new(0x0040_1a2b_3c4d);
        let t = ip.tag(6);
        assert!(t < 64);
        assert_eq!(t, ip.tag(6), "tag must be deterministic");
    }

    #[test]
    fn ip_tag_differs_for_high_bit_changes() {
        // A plain low-bits mask would alias these; folding should not.
        let a = Ip::new(0x1000_0000_0042);
        let b = Ip::new(0x2000_0000_0042);
        // Not guaranteed for every pair, but this pair is chosen to differ.
        assert_ne!(a.tag(6), b.tag(6));
    }

    #[test]
    fn sat_counter_starts_at_midpoint_with_msb_set() {
        for bits in 1..=7u8 {
            let c = SatCounter::new(bits);
            assert_eq!(c.value(), 1 << (bits - 1));
            assert!(c.msb_set());
        }
    }

    #[test]
    fn sat_counter_saturates_both_ends() {
        let mut c = SatCounter::new(2);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.dec();
        }
        assert_eq!(c.value(), 0);
        assert!(!c.msb_set());
    }

    #[test]
    #[should_panic]
    fn sat_counter_rejects_zero_width() {
        let _ = SatCounter::new(0);
    }

    #[test]
    fn bit_history_keeps_only_len_bits() {
        let mut h = BitHistory::new(4);
        for _ in 0..100 {
            h.push(true);
        }
        assert_eq!(h.bits(), 0b1111);
    }

    #[test]
    fn bit_history_order_is_newest_at_lsb() {
        let mut h = BitHistory::new(8);
        h.push(true);
        h.push(false);
        assert_eq!(h.bits(), 0b10);
    }

    #[test]
    fn bit_history_full_width_works() {
        let mut h = BitHistory::new(64);
        for _ in 0..70 {
            h.push(true);
        }
        assert_eq!(h.bits(), u64::MAX);
    }

    #[test]
    fn hash64_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        // Nearby inputs should map far apart (avalanche sanity check).
        let d = hash64(1) ^ hash64(2);
        assert!(d.count_ones() > 10);
    }

    #[test]
    fn core_id_display_and_index() {
        let c = CoreId(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "core7");
    }
}
