//! System configuration mirroring Table 3 of the paper.
//!
//! [`SimConfig::baseline_64core()`] reproduces the paper's baseline: 64
//! out-of-order cores at 4 GHz, a three-level non-inclusive hierarchy, an
//! 8x8 mesh, and eight DDR4-3200 channels. [`SimConfigBuilder`] supports the
//! sensitivity sweeps (channels, cores, LLC capacity).

/// Which hardware prefetcher drives a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Berti local-delta L1 prefetcher (MICRO '22) — the paper's main host.
    Berti,
    /// Instruction-pointer classifier prefetching (ISCA '20).
    Ipcp,
    /// Bingo spatial prefetcher (HPCA '19).
    Bingo,
    /// Signature-path prefetching with perceptron filtering (MICRO '16 + ISCA '19).
    SppPpf,
    /// Classic IP-stride prefetcher.
    IpStride,
    /// POWER4-style stream prefetcher.
    Stream,
    /// Next-line prefetcher.
    NextLine,
    /// Ensemble of Berti + SPP-PPF + next-line running concurrently under
    /// a shared degree budget; candidates are tagged with their engine so
    /// CLIP can arbitrate between sources (see `clip_prefetch::composite`).
    Composite,
}

impl PrefetcherKind {
    /// Short display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "NoPF",
            PrefetcherKind::Berti => "Berti",
            PrefetcherKind::Ipcp => "IPCP",
            PrefetcherKind::Bingo => "Bingo",
            PrefetcherKind::SppPpf => "SPP-PPF",
            PrefetcherKind::IpStride => "IP-stride",
            PrefetcherKind::Stream => "Stream",
            PrefetcherKind::NextLine => "Next-line",
            PrefetcherKind::Composite => "Composite",
        }
    }

    /// True when the prefetcher trains at the L1D (Berti, IPCP); false for
    /// L2-trained prefetchers (Bingo, SPP-PPF).
    pub fn trains_at_l1(self) -> bool {
        matches!(
            self,
            PrefetcherKind::Berti
                | PrefetcherKind::Ipcp
                | PrefetcherKind::IpStride
                | PrefetcherKind::Stream
                | PrefetcherKind::NextLine
                | PrefetcherKind::Composite
        )
    }
}

/// Cache replacement policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used.
    Lru,
    /// Static re-reference interval prediction (ISCA '10) — the paper's L2.
    Srrip,
    /// Mockingjay sampled-reuse Belady mimic (HPCA '22) — the paper's LLC.
    Mockingjay,
    /// Not-recently-used (cheap, used by small predictor tables).
    Nru,
    /// Dynamic insertion policy (DIP, ISCA '07): set-dueling between LRU
    /// and bimodal insertion, resistant to thrashing working sets.
    Dip,
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes (per slice for the LLC).
    pub capacity_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub latency: u64,
    /// Number of MSHR entries.
    pub mshrs: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheLevelConfig {
    /// Number of sets implied by capacity/ways/line size.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (crate::LINE_BYTES * self.ways)
    }

    /// Number of cache lines held.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / crate::LINE_BYTES
    }
}

/// Out-of-order core parameters (Sunny-Cove-like, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Instructions dispatched per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Load queue entries (outstanding loads).
    pub load_queue: usize,
    /// Front-end refill penalty after a branch misprediction, in cycles.
    pub mispredict_penalty: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_entries: 512,
            issue_width: 6,
            retire_width: 4,
            load_queue: 128,
            mispredict_penalty: 15,
        }
    }
}

/// Which memory backend services misses.
///
/// The kind selects both the timing preset ([`DramConfig::preset`]) and
/// the simulation model behind the `DramModel` trait: DDR4 uses all-bank
/// lockstep refresh, HBM refreshes banks in a rolling per-bank schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DramKind {
    /// DDR4-3200 (Table 3 baseline): few wide channels, all-bank refresh.
    #[default]
    Ddr4,
    /// HBM-style stack: more, narrower channels (lower per-channel
    /// bandwidth), slightly slower array timing, per-bank refresh.
    Hbm,
}

impl DramKind {
    /// Short display name used in experiment output and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            DramKind::Ddr4 => "ddr4",
            DramKind::Hbm => "hbm",
        }
    }

    /// Refresh interval in core cycles when refresh modeling is enabled:
    /// tREFI 7.8 µs for DDR4 (all-bank), 3.9 µs per bank for HBM's
    /// rolling per-bank schedule (both at the 4 GHz core clock).
    pub fn t_refi(self) -> u64 {
        match self {
            DramKind::Ddr4 => 31_200,
            DramKind::Hbm => 15_600,
        }
    }

    /// Refresh cycle time in core cycles: tRFC ~350 ns for DDR4 8 Gb
    /// parts; ~160 ns per-bank (tRFCpb) for HBM.
    pub fn t_rfc(self) -> u64 {
        match self {
            DramKind::Ddr4 => 1_400,
            DramKind::Hbm => 640,
        }
    }
}

/// DRAM subsystem parameters (DDR4-3200, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Memory backend kind (selects the model and timing family).
    pub kind: DramKind,
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size per bank in bytes.
    pub row_bytes: usize,
    /// tRP in core cycles (12.5 ns at 4 GHz = 50).
    pub t_rp: u64,
    /// tRCD in core cycles.
    pub t_rcd: u64,
    /// CAS latency in core cycles.
    pub t_cas: u64,
    /// Data-bus occupancy per 64 B line transfer, in core cycles
    /// (64 B / 25.6 GB/s at 4 GHz = 10).
    pub burst_cycles: u64,
    /// Read queue entries per channel.
    pub read_queue: usize,
    /// Write queue entries per channel.
    pub write_queue: usize,
    /// Write drain threshold as (numerator, denominator) of queue occupancy
    /// — the paper's 7/8 watermark.
    pub write_watermark: (usize, usize),
    /// Prefetch-aware scheduling (PADC): demand-first FR-FCFS with
    /// low-priority prefetches.
    pub prefetch_aware: bool,
    /// All-bank refresh interval in core cycles (tREFI; DDR4-3200's 7.8 µs
    /// is 31200 cycles at 4 GHz). `0` disables refresh modeling.
    pub t_refi: u64,
    /// Refresh cycle time in core cycles (tRFC; ~350 ns = 1400 cycles at
    /// 4 GHz for 8 Gb parts).
    pub t_rfc: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::preset(DramKind::Ddr4)
    }
}

impl DramConfig {
    /// The timing/topology preset of a backend kind. DDR4-3200 is the
    /// Table 3 baseline; the HBM preset trades per-channel bandwidth for
    /// channel count (2x channels, 2x `burst_cycles` — same aggregate
    /// peak as the DDR4 default, so backend comparisons isolate channel
    /// structure and refresh behaviour rather than raw peak bandwidth).
    pub fn preset(kind: DramKind) -> Self {
        match kind {
            DramKind::Ddr4 => DramConfig {
                kind,
                channels: 8,
                banks_per_channel: 16,
                row_bytes: 4096,
                t_rp: 50,
                t_rcd: 50,
                t_cas: 50,
                burst_cycles: 10,
                read_queue: 64,
                write_queue: 64,
                write_watermark: (7, 8),
                prefetch_aware: true,
                t_refi: 0,
                t_rfc: 1400,
            },
            DramKind::Hbm => DramConfig {
                kind,
                channels: 16,
                banks_per_channel: 32,
                row_bytes: 2048,
                t_rp: 56,
                t_rcd: 56,
                t_cas: 56,
                burst_cycles: 20,
                read_queue: 64,
                write_queue: 64,
                write_watermark: (7, 8),
                prefetch_aware: true,
                t_refi: 0,
                t_rfc: 640,
            },
        }
    }
}

/// Network-on-chip parameters (Table 3: 8x8 mesh, 2-stage wormhole routers,
/// six VCs/port, five-flit buffers, 8-flit data packets, 1-flit address
/// packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh width (nodes per row).
    pub mesh_cols: usize,
    /// Mesh height (nodes per column).
    pub mesh_rows: usize,
    /// Virtual channels per input port.
    pub virtual_channels: usize,
    /// Flit buffer depth per VC.
    pub vc_buffer_flits: usize,
    /// Flits in a data packet (carries a cache line).
    pub data_packet_flits: usize,
    /// Flits in an address/control packet.
    pub addr_packet_flits: usize,
    /// Router pipeline depth in cycles.
    pub router_stages: u64,
    /// Prefetch-aware arbitration: demand (and CLIP-critical) packets win
    /// ties against plain prefetch packets.
    pub prefetch_aware: bool,
    /// Two-node NUMA latency asymmetry on the mesh: extra cycles added to
    /// every link traversal that crosses between the two column halves of
    /// the mesh (ThunderX2-style `NUMA_NODE 2` split). `0` (the default)
    /// models a single-socket die and is behaviour-identical to a mesh
    /// without the knob.
    pub numa_penalty: u64,
    /// Tiles per chiplet for the chiplet topology (`ChipletNoc`). Must
    /// divide the core count; [`SimConfigBuilder::cores`] shrinks it to
    /// the largest divisor of the new core count. Ignored by the mesh
    /// and analytic fabrics.
    pub chiplet_cluster: usize,
    /// Die-to-die crossing latency in cycles for the chiplet topology
    /// (wire + PHY, paid once per inter-chiplet packet).
    pub d2d_latency: u64,
    /// Die-to-die serialization in cycles per flit: the crossing is
    /// narrower than an on-die link, so every flit of an inter-chiplet
    /// packet occupies the chiplet's d2d port this many cycles.
    pub d2d_flit_cycles: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            mesh_cols: 8,
            mesh_rows: 8,
            virtual_channels: 6,
            vc_buffer_flits: 5,
            data_packet_flits: 8,
            addr_packet_flits: 1,
            router_stages: 2,
            prefetch_aware: true,
            numa_penalty: 0,
            chiplet_cluster: 4,
            d2d_latency: 24,
            d2d_flit_cycles: 4,
        }
    }
}

/// Complete system configuration (Table 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores (and LLC slices / mesh tiles).
    pub cores: usize,
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 data cache (48 KB, 12-way, 5 cycles, 8 MSHRs).
    pub l1d: CacheLevelConfig,
    /// Private L2 (512 KB, 8-way, 10 cycles, 32 MSHRs, SRRIP).
    pub l2: CacheLevelConfig,
    /// LLC slice per core (2 MB, 16-way, 20 cycles, 64 MSHRs, Mockingjay).
    pub llc_slice: CacheLevelConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// NoC parameters.
    pub noc: NocConfig,
    /// L1 prefetcher selection.
    pub l1_prefetcher: PrefetcherKind,
    /// L2 prefetcher selection.
    pub l2_prefetcher: PrefetcherKind,
}

impl SimConfig {
    /// The paper's baseline 64-core system with eight DDR4-3200 channels
    /// (Table 3) and no prefetching.
    pub fn baseline_64core() -> Self {
        SimConfig {
            cores: 64,
            core: CoreConfig::default(),
            l1d: CacheLevelConfig {
                capacity_bytes: 48 * 1024,
                ways: 12,
                latency: 5,
                mshrs: 8,
                replacement: ReplacementKind::Lru,
            },
            l2: CacheLevelConfig {
                capacity_bytes: 512 * 1024,
                ways: 8,
                latency: 10,
                mshrs: 32,
                replacement: ReplacementKind::Srrip,
            },
            llc_slice: CacheLevelConfig {
                capacity_bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 20,
                mshrs: 64,
                replacement: ReplacementKind::Mockingjay,
            },
            dram: DramConfig::default(),
            noc: NocConfig::default(),
            l1_prefetcher: PrefetcherKind::None,
            l2_prefetcher: PrefetcherKind::None,
        }
    }

    /// Starts a builder seeded with the baseline configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: Self::baseline_64core(),
        }
    }

    /// Validates internal consistency (power-of-two sets, mesh covers
    /// cores, non-zero widths).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores must be non-zero"));
        }
        if self.noc.mesh_cols * self.noc.mesh_rows < self.cores {
            return Err(ConfigError::new("mesh is smaller than the core count"));
        }
        for (name, c) in [
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("llc", &self.llc_slice),
        ] {
            if c.ways == 0 || c.sets() == 0 {
                return Err(ConfigError::new(format!("{name}: zero sets or ways")));
            }
            if !c.sets().is_power_of_two() {
                return Err(ConfigError::new(format!(
                    "{name}: set count {} is not a power of two",
                    c.sets()
                )));
            }
        }
        if self.dram.channels == 0 || !self.dram.channels.is_power_of_two() {
            return Err(ConfigError::new("dram channels must be a power of two"));
        }
        if self.noc.chiplet_cluster == 0 {
            return Err(ConfigError::new("chiplet cluster size must be non-zero"));
        }
        if !self.cores.is_multiple_of(self.noc.chiplet_cluster) {
            return Err(ConfigError::new(
                "chiplet cluster size must divide the core count",
            ));
        }
        if self.core.issue_width == 0 || self.core.retire_width == 0 {
            return Err(ConfigError::new("core widths must be non-zero"));
        }
        Ok(())
    }

    /// Peak DRAM bandwidth in bytes per core cycle across all channels.
    pub fn dram_peak_bytes_per_cycle(&self) -> f64 {
        self.dram.channels as f64 * crate::LINE_BYTES as f64 / self.dram.burst_cycles as f64
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::baseline_64core()
    }
}

/// Builder for [`SimConfig`], used by the sensitivity studies.
///
/// # Examples
///
/// ```
/// use clip_types::{PrefetcherKind, SimConfig};
///
/// let cfg = SimConfig::builder()
///     .cores(8)
///     .dram_channels(4)
///     .l1_prefetcher(PrefetcherKind::Berti)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.dram.channels, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the core count (mesh shrinks to the smallest square that fits;
    /// the chiplet cluster shrinks to the largest divisor of `n` so the
    /// cluster-divides-cores invariant keeps holding).
    pub fn cores(mut self, n: usize) -> Self {
        self.config.cores = n;
        let mut side = 1usize;
        while side * side < n {
            side += 1;
        }
        self.config.noc.mesh_cols = side;
        self.config.noc.mesh_rows = side.max(n.div_ceil(side));
        if n != 0 {
            self.config.noc.chiplet_cluster = gcd(self.config.noc.chiplet_cluster.max(1), n);
        }
        self
    }

    /// Sets the number of DRAM channels.
    pub fn dram_channels(mut self, n: usize) -> Self {
        self.config.dram.channels = n;
        self
    }

    /// Sets the LLC slice capacity per core, in bytes.
    pub fn llc_slice_bytes(mut self, bytes: usize) -> Self {
        self.config.llc_slice.capacity_bytes = bytes;
        self
    }

    /// Sets the private L2 capacity, in bytes.
    pub fn l2_bytes(mut self, bytes: usize) -> Self {
        self.config.l2.capacity_bytes = bytes;
        self
    }

    /// Selects the L1 prefetcher.
    pub fn l1_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.config.l1_prefetcher = kind;
        self
    }

    /// Selects the L2 prefetcher.
    pub fn l2_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.config.l2_prefetcher = kind;
        self
    }

    /// Overrides the ROB size.
    pub fn rob_entries(mut self, n: usize) -> Self {
        self.config.core.rob_entries = n;
        self
    }

    /// Switches the memory backend: replaces the whole DRAM block with the
    /// kind's preset (channels, timing, refresh family). Call before any
    /// per-field DRAM override — notably [`SimConfigBuilder::dram_channels`]
    /// and [`SimConfigBuilder::dram_refresh`] — so those apply on top.
    pub fn dram_backend(mut self, kind: DramKind) -> Self {
        self.config.dram = DramConfig::preset(kind);
        self
    }

    /// Enables DRAM refresh modeling with the selected backend's timings
    /// (DDR4: all-bank tREFI 7.8 µs / tRFC 350 ns; HBM: per-bank tREFI
    /// 3.9 µs / tRFCpb 160 ns — at the 4 GHz core clock). Derived from
    /// [`DramKind`] so an HBM config is never silently DDR4-paced.
    pub fn dram_refresh(mut self, on: bool) -> Self {
        self.config.dram.t_refi = if on {
            self.config.dram.kind.t_refi()
        } else {
            0
        };
        self.config.dram.t_rfc = self.config.dram.kind.t_rfc();
        self
    }

    /// Sets the mesh's two-node NUMA crossing penalty in cycles
    /// (`0` = single socket, the default).
    pub fn numa_penalty(mut self, cycles: u64) -> Self {
        self.config.noc.numa_penalty = cycles;
        self
    }

    /// Sets the chiplet cluster size (tiles per die) for the chiplet
    /// topology. Must divide the core count at [`SimConfigBuilder::build`].
    pub fn chiplet_cluster(mut self, tiles: usize) -> Self {
        self.config.noc.chiplet_cluster = tiles;
        self
    }

    /// Enables or disables prefetch-aware NoC and DRAM scheduling.
    pub fn prefetch_aware(mut self, on: bool) -> Self {
        self.config.dram.prefetch_aware = on;
        self.config.noc.prefetch_aware = on;
        self
    }

    /// Finalises and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when an invariant is violated (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Error returned when a configuration fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = SimConfig::baseline_64core();
        assert_eq!(c.cores, 64);
        assert_eq!(c.core.rob_entries, 512);
        assert_eq!(c.core.issue_width, 6);
        assert_eq!(c.core.retire_width, 4);
        assert_eq!(c.l1d.capacity_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l1d.latency, 5);
        assert_eq!(c.l1d.mshrs, 8);
        assert_eq!(c.l2.capacity_bytes, 512 * 1024);
        assert_eq!(c.llc_slice.capacity_bytes, 2 * 1024 * 1024);
        assert_eq!(c.dram.channels, 8);
        assert_eq!(c.noc.mesh_cols, 8);
        assert_eq!(c.noc.mesh_rows, 8);
        c.validate().expect("baseline must validate");
    }

    #[test]
    fn l1d_has_768_lines_as_paper_states() {
        // §4.2: "768 cache lines at the L1D".
        let c = SimConfig::baseline_64core();
        assert_eq!(c.l1d.lines(), 768);
    }

    #[test]
    fn sets_math() {
        let c = SimConfig::baseline_64core();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc_slice.sets(), 2048);
    }

    #[test]
    fn builder_shrinks_mesh_for_small_systems() {
        let c = SimConfig::builder().cores(8).build().unwrap();
        assert!(c.noc.mesh_cols * c.noc.mesh_rows >= 8);
        assert!(c.noc.mesh_cols <= 4);
    }

    #[test]
    fn builder_rejects_zero_cores() {
        let mut b = SimConfig::builder();
        b.config.cores = 0;
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_non_pow2_channels() {
        let r = SimConfig::builder().dram_channels(6).build();
        assert!(r.is_err());
    }

    #[test]
    fn peak_bandwidth_scales_with_channels() {
        let c8 = SimConfig::builder().dram_channels(8).build().unwrap();
        let c64 = SimConfig::builder().dram_channels(64).build().unwrap();
        assert!(
            (c64.dram_peak_bytes_per_cycle() / c8.dram_peak_bytes_per_cycle() - 8.0).abs() < 1e-9
        );
        // 8 channels * 64B / 10cyc = 51.2 B/cycle at 4 GHz = 204.8 GB/s.
        assert!((c8.dram_peak_bytes_per_cycle() - 51.2).abs() < 1e-9);
    }

    #[test]
    fn prefetcher_kind_names_and_levels() {
        assert_eq!(PrefetcherKind::Berti.name(), "Berti");
        assert!(PrefetcherKind::Berti.trains_at_l1());
        assert!(!PrefetcherKind::SppPpf.trains_at_l1());
        assert!(!PrefetcherKind::Bingo.trains_at_l1());
        // The ensemble drives the L1 slot: its Berti/next-line members
        // train on L1 accesses and the shared budget gates at one level.
        assert_eq!(PrefetcherKind::Composite.name(), "Composite");
        assert!(PrefetcherKind::Composite.trains_at_l1());
    }

    #[test]
    fn config_clone_eq() {
        let c = SimConfig::baseline_64core();
        let c2 = c.clone();
        assert_eq!(c, c2);
    }

    #[test]
    fn hbm_preset_trades_channel_width_for_count() {
        let ddr4 = DramConfig::preset(DramKind::Ddr4);
        let hbm = DramConfig::preset(DramKind::Hbm);
        assert_eq!(hbm.kind, DramKind::Hbm);
        assert!(hbm.channels > ddr4.channels);
        // Lower per-channel bandwidth (more cycles per line burst)...
        assert!(hbm.burst_cycles > ddr4.burst_cycles);
        // ...but the same aggregate peak, so backend comparisons isolate
        // channel structure rather than raw bandwidth.
        let peak = |d: &DramConfig| d.channels as f64 / d.burst_cycles as f64;
        assert!((peak(&hbm) - peak(&ddr4)).abs() < 1e-9);
    }

    #[test]
    fn dram_refresh_follows_backend_timing() {
        let ddr4 = SimConfig::builder().dram_refresh(true).build().unwrap();
        assert_eq!(ddr4.dram.t_refi, 31_200);
        assert_eq!(ddr4.dram.t_rfc, 1_400);
        let hbm = SimConfig::builder()
            .dram_backend(DramKind::Hbm)
            .dram_refresh(true)
            .build()
            .unwrap();
        assert_eq!(hbm.dram.t_refi, 15_600);
        assert_eq!(hbm.dram.t_rfc, 640);
        let off = SimConfig::builder()
            .dram_backend(DramKind::Hbm)
            .dram_refresh(false)
            .build()
            .unwrap();
        assert_eq!(off.dram.t_refi, 0);
    }

    #[test]
    fn cluster_size_must_divide_cores() {
        let bad = SimConfig::builder().cores(8).chiplet_cluster(3).build();
        assert!(bad.is_err());
        let zero = SimConfig::builder().chiplet_cluster(0).build();
        assert!(zero.is_err());
        let ok = SimConfig::builder()
            .cores(8)
            .chiplet_cluster(4)
            .build()
            .unwrap();
        assert_eq!(ok.noc.chiplet_cluster, 4);
    }

    #[test]
    fn builder_cores_shrinks_cluster_to_a_divisor() {
        // Default cluster is 4; one- and two-core configs must still build.
        for n in [1usize, 2, 4, 6, 8, 64] {
            let c = SimConfig::builder().cores(n).build().unwrap();
            assert_eq!(c.cores % c.noc.chiplet_cluster, 0, "cores {n}");
        }
        assert_eq!(
            SimConfig::builder()
                .cores(2)
                .build()
                .unwrap()
                .noc
                .chiplet_cluster,
            2
        );
        assert_eq!(
            SimConfig::builder()
                .cores(6)
                .build()
                .unwrap()
                .noc
                .chiplet_cluster,
            2
        );
    }

    #[test]
    fn numa_penalty_defaults_inert() {
        assert_eq!(SimConfig::baseline_64core().noc.numa_penalty, 0);
        let c = SimConfig::builder().numa_penalty(40).build().unwrap();
        assert_eq!(c.noc.numa_penalty, 40);
    }
}
