//! Validated environment knobs with warn-once rejection.
//!
//! Every runtime knob (`CLIP_THREADS`, `CLIP_RETRY`, `CLIP_CHECK`,
//! `CLIP_TICK`, the store-directory overrides, …) follows the contract
//! `CLIP_THREADS` established: a value in its documented domain is
//! honoured, anything else — garbage, out of range, empty — is rejected
//! with a **single** stderr warning per knob and the caller's default
//! applies. A sweep that misreads one knob must degrade to its default
//! loudly once, not spam a warning per job or (worse) silently clamp.
//!
//! Three knob shapes cover the workspace:
//!
//! * [`env_u64`] — integers in a range (`CLIP_THREADS`, `CLIP_RETRY`,
//!   the millisecond budgets).
//! * [`env_choice`] — one of an allowed word list, matched
//!   case-insensitively after trimming (`CLIP_CHECK`, `CLIP_TICK`,
//!   `CLIP_NOC`, `CLIP_DRAM`, the journal/fingerprint modes).
//! * [`env_flag`] — booleans (`CLIP_CACHE`): `1`/`on`/`true`/`yes`
//!   against `0`/`off`/`false`/`no`.
//!
//! [`env_dir`] reads directory overrides: any non-blank value is taken
//! verbatim (paths are never trimmed or validated — the store layer
//! copes with unusable directories), while a blank one warns once.
//!
//! # Examples
//!
//! ```
//! use clip_types::knob;
//!
//! // Unset (or invalid) reads as None; the caller picks the default.
//! std::env::remove_var("CLIP_DOCTEST_KNOB");
//! assert_eq!(knob::env_u64("CLIP_DOCTEST_KNOB", 0, 10), None);
//! std::env::set_var("CLIP_DOCTEST_KNOB", "7");
//! assert_eq!(knob::env_u64("CLIP_DOCTEST_KNOB", 0, 10), Some(7));
//! ```

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{LazyLock, Mutex};

/// Reads an integer knob from the environment: `Some(n)` when the
/// variable is set to an integer within `lo..=hi`, `None` when it is
/// unset **or** invalid (warned once per knob name, see [`parse`]).
pub fn env_u64(name: &'static str, lo: u64, hi: u64) -> Option<u64> {
    parse(name, std::env::var(name).ok().as_deref(), lo, hi)
}

/// The testable core of [`env_u64`]: validates an already-read value.
/// `None` (unset) is silent; a present-but-invalid value warns once per
/// `name` for the life of the process and reads as unset.
pub fn parse(name: &'static str, raw: Option<&str>, lo: u64, hi: u64) -> Option<u64> {
    let v = raw?;
    match v.trim().parse::<u64>() {
        Ok(n) if (lo..=hi).contains(&n) => Some(n),
        _ => {
            warn_once(name, || {
                format!(
                    "clip: ignoring invalid {name}={v:?} (accepted range: {lo}..={hi}); \
                     using the default"
                )
            });
            None
        }
    }
}

/// Reads a word-list knob: `Some(canonical)` when the variable is set to
/// one of `allowed` (matched case-insensitively after trimming, the
/// canonical spelling returned), `None` when unset, blank, or
/// unrecognized (warned once per knob name, see [`choice`]).
pub fn env_choice(name: &'static str, allowed: &[&'static str]) -> Option<&'static str> {
    choice(name, std::env::var(name).ok().as_deref(), allowed)
}

/// The testable core of [`env_choice`]. Unset and blank values are
/// silent (blank means "use the default", the historical behaviour of
/// every mode knob); anything not in `allowed` warns once naming the
/// accepted words and reads as unset.
pub fn choice(
    name: &'static str,
    raw: Option<&str>,
    allowed: &[&'static str],
) -> Option<&'static str> {
    let v = raw?;
    let t = v.trim();
    if t.is_empty() {
        return None;
    }
    if let Some(c) = allowed.iter().find(|a| a.eq_ignore_ascii_case(t)) {
        return Some(c);
    }
    warn_once(name, || {
        format!(
            "clip: ignoring unrecognized {name}={v:?} (expected one of: {}); \
             using the default",
            allowed.join(", ")
        )
    });
    None
}

/// Reads a boolean knob: `Some(true)` for `1`/`on`/`true`/`yes`,
/// `Some(false)` for `0`/`off`/`false`/`no` (case-insensitive, trimmed),
/// `None` when unset, blank, or garbage (warned once, see [`flag`]).
pub fn env_flag(name: &'static str) -> Option<bool> {
    flag(name, std::env::var(name).ok().as_deref())
}

/// The testable core of [`env_flag`].
pub fn flag(name: &'static str, raw: Option<&str>) -> Option<bool> {
    let v = raw?;
    match v.trim().to_ascii_lowercase().as_str() {
        "" => None,
        "1" | "on" | "true" | "yes" => Some(true),
        "0" | "off" | "false" | "no" => Some(false),
        _ => {
            warn_once(name, || {
                format!(
                    "clip: ignoring invalid {name}={v:?} (expected 1/on/true/yes \
                     or 0/off/false/no); using the default"
                )
            });
            None
        }
    }
}

/// Reads a directory-override knob: any non-blank value is returned
/// verbatim as a path (never trimmed — trailing spaces are legal in
/// filenames), while a set-but-blank value warns once and reads as
/// unset. The path is **not** checked for existence or writability; the
/// store layers already degrade gracefully on unusable directories.
pub fn env_dir(name: &'static str) -> Option<PathBuf> {
    let v = std::env::var(name).ok()?;
    if v.trim().is_empty() {
        warn_once(name, || {
            format!("clip: ignoring blank {name}; using the default directory")
        });
        return None;
    }
    Some(PathBuf::from(v))
}

/// Knob names that already warned this process.
static WARNED: LazyLock<Mutex<HashSet<&'static str>>> =
    LazyLock::new(|| Mutex::new(HashSet::new()));

fn warn_once(name: &'static str, msg: impl FnOnce() -> String) {
    let mut warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
    if warned.insert(name) {
        eprintln!("{}", msg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_parse_and_out_of_range_reads_as_unset() {
        assert_eq!(parse("K_A", None, 0, 8), None);
        assert_eq!(
            parse("K_A", Some("0"), 0, 8),
            Some(0),
            "zero is a value, not garbage"
        );
        assert_eq!(parse("K_A", Some("8"), 0, 8), Some(8));
        assert_eq!(
            parse("K_A", Some(" 3 "), 0, 8),
            Some(3),
            "whitespace is trimmed"
        );
        assert_eq!(parse("K_A", Some("9"), 0, 8), None, "beyond hi");
        assert_eq!(parse("K_B", Some("2"), 3, 8), None, "below lo");
        assert_eq!(parse("K_A", Some("-1"), 0, 8), None);
        assert_eq!(parse("K_A", Some("soon"), 0, 8), None);
        assert_eq!(parse("K_A", Some(""), 0, 8), None);
    }

    #[test]
    fn choices_match_case_insensitively_and_return_the_canonical_word() {
        const MODES: &[&str] = &["record", "resume", "off"];
        assert_eq!(choice("K_C", None, MODES), None, "unset is silent");
        assert_eq!(choice("K_C", Some(""), MODES), None, "blank is silent");
        assert_eq!(choice("K_C", Some("  "), MODES), None);
        assert_eq!(choice("K_C", Some("record"), MODES), Some("record"));
        assert_eq!(
            choice("K_C", Some(" RESUME "), MODES),
            Some("resume"),
            "trimmed, case-folded, canonical spelling returned"
        );
        assert_eq!(choice("K_C", Some("bogus"), MODES), None);
    }

    #[test]
    fn flags_accept_the_documented_spellings_only() {
        for yes in ["1", "on", "true", "yes", " ON ", "True"] {
            assert_eq!(flag("K_F", Some(yes)), Some(true), "{yes:?}");
        }
        for no in ["0", "off", "false", "no", " OFF "] {
            assert_eq!(flag("K_F", Some(no)), Some(false), "{no:?}");
        }
        assert_eq!(flag("K_F", None), None);
        assert_eq!(flag("K_F", Some("")), None, "blank is silent");
        assert_eq!(flag("K_F", Some("maybe")), None, "garbage reads as unset");
    }

    #[test]
    fn dir_overrides_pass_through_verbatim_and_blank_reads_as_unset() {
        std::env::set_var("K_DIR_SET", "/tmp/clip dir ");
        assert_eq!(
            env_dir("K_DIR_SET"),
            Some(PathBuf::from("/tmp/clip dir ")),
            "paths are never trimmed"
        );
        std::env::set_var("K_DIR_BLANK", "   ");
        assert_eq!(env_dir("K_DIR_BLANK"), None);
        std::env::remove_var("K_DIR_UNSET");
        assert_eq!(env_dir("K_DIR_UNSET"), None);
    }

    #[test]
    fn each_knob_warns_at_most_once() {
        // The warning set is process-global; all this test can pin is that
        // repeated garbage for one name inserts a single entry.
        parse("K_WARN_ONCE", Some("junk"), 0, 8);
        parse("K_WARN_ONCE", Some("more junk"), 0, 8);
        choice("K_WARN_ONCE", Some("still junk"), &["a", "b"]);
        let warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
        assert!(warned.contains("K_WARN_ONCE"));
        assert_eq!(
            warned.iter().filter(|n| **n == "K_WARN_ONCE").count(),
            1,
            "a HashSet cannot hold duplicates; the warning fired once"
        );
    }
}
