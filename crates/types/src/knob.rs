//! Validated environment knobs with warn-once rejection.
//!
//! Several runtime knobs (`CLIP_RETRY`, `CLIP_JOB_DEADLINE_MS`,
//! `CLIP_SWEEP_BUDGET_MS`, …) follow the contract `CLIP_THREADS`
//! established: an integer in a documented range is honoured, anything
//! else — garbage, out of range, empty — is rejected with a **single**
//! stderr warning per knob and the caller's default applies. A sweep
//! that misreads one knob must degrade to its default loudly once, not
//! spam a warning per job or (worse) silently clamp.
//!
//! # Examples
//!
//! ```
//! use clip_types::knob;
//!
//! // Unset (or invalid) reads as None; the caller picks the default.
//! std::env::remove_var("CLIP_DOCTEST_KNOB");
//! assert_eq!(knob::env_u64("CLIP_DOCTEST_KNOB", 0, 10), None);
//! std::env::set_var("CLIP_DOCTEST_KNOB", "7");
//! assert_eq!(knob::env_u64("CLIP_DOCTEST_KNOB", 0, 10), Some(7));
//! ```

use std::collections::HashSet;
use std::sync::{LazyLock, Mutex};

/// Reads an integer knob from the environment: `Some(n)` when the
/// variable is set to an integer within `lo..=hi`, `None` when it is
/// unset **or** invalid (warned once per knob name, see [`parse`]).
pub fn env_u64(name: &'static str, lo: u64, hi: u64) -> Option<u64> {
    parse(name, std::env::var(name).ok().as_deref(), lo, hi)
}

/// The testable core of [`env_u64`]: validates an already-read value.
/// `None` (unset) is silent; a present-but-invalid value warns once per
/// `name` for the life of the process and reads as unset.
pub fn parse(name: &'static str, raw: Option<&str>, lo: u64, hi: u64) -> Option<u64> {
    let v = raw?;
    match v.trim().parse::<u64>() {
        Ok(n) if (lo..=hi).contains(&n) => Some(n),
        _ => {
            warn_once(name, v, lo, hi);
            None
        }
    }
}

/// Knob names that already warned this process.
static WARNED: LazyLock<Mutex<HashSet<&'static str>>> =
    LazyLock::new(|| Mutex::new(HashSet::new()));

fn warn_once(name: &'static str, value: &str, lo: u64, hi: u64) {
    let mut warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
    if warned.insert(name) {
        eprintln!(
            "clip: ignoring invalid {name}={value:?} (accepted range: {lo}..={hi}); \
             using the default"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_parse_and_out_of_range_reads_as_unset() {
        assert_eq!(parse("K_A", None, 0, 8), None);
        assert_eq!(
            parse("K_A", Some("0"), 0, 8),
            Some(0),
            "zero is a value, not garbage"
        );
        assert_eq!(parse("K_A", Some("8"), 0, 8), Some(8));
        assert_eq!(
            parse("K_A", Some(" 3 "), 0, 8),
            Some(3),
            "whitespace is trimmed"
        );
        assert_eq!(parse("K_A", Some("9"), 0, 8), None, "beyond hi");
        assert_eq!(parse("K_B", Some("2"), 3, 8), None, "below lo");
        assert_eq!(parse("K_A", Some("-1"), 0, 8), None);
        assert_eq!(parse("K_A", Some("soon"), 0, 8), None);
        assert_eq!(parse("K_A", Some(""), 0, 8), None);
    }

    #[test]
    fn each_knob_warns_at_most_once() {
        // The warning set is process-global; all this test can pin is that
        // repeated garbage for one name inserts a single entry.
        parse("K_WARN_ONCE", Some("junk"), 0, 8);
        parse("K_WARN_ONCE", Some("more junk"), 0, 8);
        let warned = WARNED.lock().unwrap_or_else(|p| p.into_inner());
        assert!(warned.contains("K_WARN_ONCE"));
        assert_eq!(
            warned.iter().filter(|n| **n == "K_WARN_ONCE").count(),
            1,
            "a HashSet cannot hold duplicates; the warning fired once"
        );
    }
}
