//! Simulation integrity vocabulary: check levels and structured errors.
//!
//! A cycle-level model fails silently — a leaked MSHR or a lost flit skews
//! every normalized figure without a visible crash. The integrity layer
//! (watchdog + conservation auditors in `clip-sim`, component audits in
//! `clip-noc` / `clip-dram` / `clip-cache`) reports violations as a
//! [`SimError`]: the cycle it was detected, the component that owns the
//! broken invariant, an error [`SimErrorKind`], and a diagnostic state
//! dump. [`CheckLevel`] selects how much auditing a run pays for.
//!
//! # Examples
//!
//! ```
//! use clip_types::check::{CheckLevel, SimError, SimErrorKind};
//!
//! let e = SimError::new(1024, "noc", SimErrorKind::Conservation, "flit lost");
//! assert_eq!(e.to_string(), "[cycle 1024] conservation violation in noc: flit lost");
//! assert!(CheckLevel::Cheap.audits_enabled());
//! assert!(!CheckLevel::Off.audits_enabled());
//! ```

use crate::Cycle;
use std::fmt;

/// How much integrity checking a run performs.
///
/// Read from the `CLIP_CHECK` environment variable (`off`/`0`, `cheap`/`1`,
/// `full`/`2`); unset or unrecognized values default to [`CheckLevel::Cheap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CheckLevel {
    /// No watchdog, no audits (fault injection still works).
    Off,
    /// Forward-progress watchdog plus aggregate conservation audits
    /// (counter balances, queue bounds). Cheap enough to leave on.
    #[default]
    Cheap,
    /// Everything in `Cheap` plus per-entry legality scans (entry ages,
    /// buffer occupancies, command timestamps).
    Full,
}

impl CheckLevel {
    /// Parses `CLIP_CHECK` (validated warn-once, see [`crate::knob`]);
    /// unset or unrecognized values yield `Cheap`.
    pub fn from_env() -> CheckLevel {
        match crate::knob::env_choice("CLIP_CHECK", &["off", "0", "cheap", "1", "full", "2"]) {
            Some("off") | Some("0") => CheckLevel::Off,
            Some("full") | Some("2") => CheckLevel::Full,
            _ => CheckLevel::Cheap,
        }
    }

    /// True when any auditing (watchdog + conservation) runs.
    pub fn audits_enabled(self) -> bool {
        self != CheckLevel::Off
    }

    /// True when the per-entry legality scans also run.
    pub fn full(self) -> bool {
        self == CheckLevel::Full
    }
}

/// Classification of an integrity failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimErrorKind {
    /// Forward-progress watchdog: nothing retired and no uncore channel
    /// drained for a whole window while transactions were in flight.
    Deadlock,
    /// A conservation audit failed: something was created and never
    /// accounted for, or vanished without being released.
    Conservation,
    /// A legality scan failed: an entry or command is in a state the
    /// hardware could never reach.
    IllegalState,
    /// A job panicked; the payload is in `detail`.
    Panic,
    /// The driver itself failed (a result slot never filled, a poisoned
    /// lock) — a harness bug rather than a model bug.
    Internal,
    /// Two runs that must be bit-identical (same seed serial vs parallel,
    /// or faulted vs clean) produced different state fingerprints; the
    /// detail names the first divergent cadence window and component.
    Divergence,
    /// The job's wall-clock deadline expired before the run completed;
    /// the detail names the cycle reached and every queue's occupancy.
    /// Unlike [`SimErrorKind::Deadlock`], the simulated system may be
    /// perfectly healthy — the host was just too slow for the budget.
    Timeout,
    /// The job was never dispatched: the whole-sweep wall-clock budget
    /// was already exhausted when its turn came. The cell is pending,
    /// not broken — a resumed sweep simulates it.
    Cancelled,
}

impl fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimErrorKind::Deadlock => "deadlock",
            SimErrorKind::Conservation => "conservation violation",
            SimErrorKind::IllegalState => "illegal state",
            SimErrorKind::Panic => "panic",
            SimErrorKind::Internal => "internal error",
            SimErrorKind::Divergence => "state divergence",
            SimErrorKind::Timeout => "timeout",
            SimErrorKind::Cancelled => "cancelled",
        })
    }
}

/// A structured integrity failure: where, when, what, and a state dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Cycle at which the violation was detected (0 when outside a run,
    /// e.g. a panic before the clock started).
    pub cycle: Cycle,
    /// The component owning the broken invariant (`noc`, `dram`,
    /// `llc`, `tile3.l2-mshr`, `watchdog`, `job`, ...).
    pub component: String,
    /// Error classification.
    pub kind: SimErrorKind,
    /// Human-readable diagnostic: the failed invariant and a dump of the
    /// relevant occupancies / stuck transactions.
    pub detail: String,
    /// How many executions ended in this error (1 = first attempt; retry
    /// layers bump it via [`SimError::with_attempts`] so artifacts record
    /// how hard the sweep tried before giving up).
    pub attempts: u32,
}

impl SimError {
    /// Builds an error (one attempt).
    pub fn new(
        cycle: Cycle,
        component: impl Into<String>,
        kind: SimErrorKind,
        detail: impl Into<String>,
    ) -> SimError {
        SimError {
            cycle,
            component: component.into(),
            kind,
            detail: detail.into(),
            attempts: 1,
        }
    }

    /// The same error stamped with its attempt count.
    pub fn with_attempts(mut self, attempts: u32) -> SimError {
        self.attempts = attempts;
        self
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cycle {}] {} in {}: {}",
            self.cycle, self.kind, self.component, self.detail
        )
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        assert!(CheckLevel::Off < CheckLevel::Cheap);
        assert!(CheckLevel::Cheap < CheckLevel::Full);
        assert!(!CheckLevel::Off.audits_enabled());
        assert!(CheckLevel::Cheap.audits_enabled());
        assert!(!CheckLevel::Cheap.full());
        assert!(CheckLevel::Full.full());
    }

    #[test]
    fn new_kinds_display_and_attempts_stamp() {
        assert_eq!(SimErrorKind::Timeout.to_string(), "timeout");
        assert_eq!(SimErrorKind::Cancelled.to_string(), "cancelled");
        let e = SimError::new(9, "deadline", SimErrorKind::Timeout, "budget spent");
        assert_eq!(e.attempts, 1, "a fresh error is one attempt");
        let e = e.with_attempts(3);
        assert_eq!(e.attempts, 3);
        // The attempt count is bookkeeping, not diagnostics: Display stays
        // stable so log-grepping tests and tools keep working.
        assert!(!e.to_string().contains('3'), "{e}");
    }

    #[test]
    fn display_names_component_and_cycle() {
        let e = SimError::new(7, "dram", SimErrorKind::IllegalState, "stale completion");
        let s = e.to_string();
        assert!(s.contains("cycle 7"), "{s}");
        assert!(s.contains("dram"), "{s}");
        assert!(s.contains("illegal state"), "{s}");
    }
}
