//! DRAM models behind the [`DramModel`] trait: channels, banks, row
//! buffers, timing constraints, and a prefetch-aware FR-FCFS controller
//! (PADC, Lee et al., MICRO '08).
//!
//! This is the contended resource at the heart of the paper: with 64 cores
//! and eight DDR4-3200 channels, queueing here inflates every on-chip
//! latency. The models capture the effects the paper depends on:
//!
//! * per-channel data-bus bandwidth (64 B per [`clip_types::DramConfig::burst_cycles`]),
//! * bank-level parallelism and row-buffer locality (tRP/tRCD/CAS),
//! * finite read/write queues with back-pressure,
//! * demand-first scheduling where plain prefetches lose to demands and to
//!   CLIP's critical prefetches, and
//! * write draining with the 7/8 watermark of Table 3.
//!
//! Two backends implement the trait: [`DramSystem`] (DDR4, all-bank
//! lockstep refresh) and [`HbmDram`] (HBM-style: more, narrower channels
//! and a rolling per-bank refresh schedule). Callers pick one via
//! [`clip_types::DramKind`] / `CLIP_DRAM` and talk only to the trait.
//!
//! # Examples
//!
//! ```
//! use clip_dram::DramSystem;
//! use clip_types::{DramConfig, LineAddr, Priority, ReqId};
//!
//! let mut dram = DramSystem::new(&DramConfig::default());
//! let ch = dram.channel_for(LineAddr::new(0x42));
//! dram.enqueue_read(ch, ReqId(1), LineAddr::new(0x42), Priority::Demand, 0)
//!     .expect("queue has room");
//! let mut done = Vec::new();
//! for now in 0..400 {
//!     done.extend(dram.tick(now));
//! }
//! assert_eq!(done.len(), 1);
//! ```

use clip_types::{Cycle, DramConfig, Fnv64, LineAddr, Priority, ReqId};
use std::fmt;

/// A completed read returned by [`DramSystem::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// The request that completed.
    pub id: ReqId,
    /// The line read.
    pub line: LineAddr,
    /// Channel that serviced it.
    pub channel: usize,
    /// Cycle at which data is available.
    pub done_cycle: Cycle,
}

/// Error returned when a channel queue cannot accept another request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError;

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dram queue is full")
    }
}

impl std::error::Error for QueueFullError {}

/// The surface every memory backend exposes to the simulator, mirroring
/// `NocModel` on the fabric side: request admission with back-pressure,
/// per-cycle progress, the quiescence hook the event wheel relies on,
/// bulk idle-span accounting, statistics, the conservation audit, and
/// fault injection.
///
/// # Contracts
///
/// * **Conservation** — every read accepted by
///   [`DramModel::enqueue_read`] is eventually returned exactly once by
///   [`DramModel::tick`]; [`DramModel::audit`] must detect any loss or
///   duplication (this is what makes
///   [`DramModel::inject_swallow_completion`] catchable).
/// * **Quiescence** — [`DramModel::next_activity`] returns the earliest
///   cycle `>= now` at which `tick` would do externally visible work, or
///   `None` when fully idle. It may be conservative (early) but never
///   late: skipping to the reported cycle and ticking must be
///   bit-identical to ticking every cycle of the span, with
///   [`DramModel::skip_idle`] settling whatever bulk accounting the
///   skipped ticks would have done.
/// * **Determinism** — no interior randomness; identical call sequences
///   produce identical state, completions, and statistics.
pub trait DramModel {
    /// Number of independent channels.
    fn channels(&self) -> usize;

    /// Maps a line to its servicing channel (stable for a given line).
    fn channel_for(&self, line: LineAddr) -> usize;

    /// True when the channel's read queue can accept another request.
    fn read_queue_has_room(&self, channel: usize) -> bool;

    /// Current read-queue occupancy of a channel.
    fn read_queue_len(&self, channel: usize) -> usize;

    /// Enqueues a read (demand, prefetch, or critical prefetch).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the read queue is full; the caller
    /// must retry (this is the back-pressure path).
    fn enqueue_read(
        &mut self,
        channel: usize,
        id: ReqId,
        line: LineAddr,
        priority: Priority,
        now: Cycle,
    ) -> Result<(), QueueFullError>;

    /// Enqueues a writeback.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the write queue is full.
    fn enqueue_write(&mut self, line: LineAddr, now: Cycle) -> Result<(), QueueFullError>;

    /// Advances all channels by one cycle, returning reads whose data is
    /// now available.
    fn tick(&mut self, now: Cycle) -> Vec<DramCompletion>;

    /// Quiescence hook (see the trait-level contract).
    fn next_activity(&self, now: Cycle) -> Option<Cycle>;

    /// Bulk accounting for a skipped idle span `[from, to)` during which
    /// [`DramModel::next_activity`] reported no work.
    fn skip_idle(&mut self, from: Cycle, to: Cycle);

    /// Per-channel statistics.
    fn stats(&self, channel: usize) -> &ChannelStats;

    /// Aggregate statistics across channels.
    fn total_stats(&self) -> ChannelStats;

    /// Conservation + command-legality audit (see the trait-level
    /// contract). With `full`, also scans per-entry timestamps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant, naming the
    /// channel.
    fn audit(&self, now: Cycle, full: bool) -> Result<(), String>;

    /// Fault injection: silently discards one in-flight completion so the
    /// conservation audit can prove it notices. Returns false when
    /// nothing is in flight.
    fn inject_swallow_completion(&mut self, selector: u64) -> bool;

    /// Fraction of peak bandwidth used so far, given the elapsed cycles.
    fn bandwidth_utilization(&self, elapsed: Cycle) -> f64;

    /// Folds the subsystem's in-flight state into a
    /// divergence-localization fingerprint (see the `clip-sim`
    /// fingerprint layer). With `full`, per-entry queue/bank state is
    /// hashed; otherwise only the O(channels) occupancy balances.
    /// Deterministic runs must produce identical folds.
    fn fingerprint(&self, h: &mut Fnv64, full: bool);
}

#[derive(Debug, Clone, Copy)]
struct PendingRead {
    id: ReqId,
    line: LineAddr,
    priority: Priority,
    arrive: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    line: LineAddr,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Row-buffer hits among serviced commands.
    pub row_hits: u64,
    /// Cycles the data bus was transferring.
    pub busy_cycles: u64,
    /// Sum of read queueing delays (arrival → issue), for averages.
    pub total_read_queue_delay: u64,
    /// Reads that arrived with prefetch priority.
    pub prefetch_reads: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    read_q: Vec<PendingRead>,
    write_q: Vec<PendingWrite>,
    bus_free_at: Cycle,
    draining: bool,
    inflight: Vec<DramCompletion>,
    /// Cycle of the next scheduled all-bank refresh (refresh modeling).
    next_refresh: Cycle,
    /// Reads accepted into the queue (conservation audit).
    reads_enqueued: u64,
    /// Read completions handed back from `tick` (conservation audit).
    reads_delivered: u64,
    stats: ChannelStats,
}

/// The DRAM subsystem: all channels of the socket.
#[derive(Debug, Clone)]
pub struct DramSystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    lines_per_row: u64,
}

impl DramSystem {
    /// Builds the DRAM system from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or not a power of two.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(
            cfg.channels > 0 && cfg.channels.is_power_of_two(),
            "channel count must be a power of two"
        );
        let channel = Channel {
            banks: vec![Bank::default(); cfg.banks_per_channel],
            read_q: Vec::with_capacity(cfg.read_queue),
            write_q: Vec::with_capacity(cfg.write_queue),
            bus_free_at: 0,
            draining: false,
            inflight: Vec::new(),
            next_refresh: cfg.t_refi,
            reads_enqueued: 0,
            reads_delivered: 0,
            stats: ChannelStats::default(),
        };
        DramSystem {
            cfg: *cfg,
            channels: vec![channel; cfg.channels],
            lines_per_row: (cfg.row_bytes / clip_types::LINE_BYTES) as u64,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Maps a line to its channel (hash-interleaved).
    #[inline]
    pub fn channel_for(&self, line: LineAddr) -> usize {
        (clip_types::hash64(line.raw()) as usize) & (self.channels.len() - 1)
    }

    /// True when the channel's read queue can accept another request.
    pub fn read_queue_has_room(&self, channel: usize) -> bool {
        self.channels[channel].read_q.len() < self.cfg.read_queue
    }

    /// Current read-queue occupancy of a channel.
    pub fn read_queue_len(&self, channel: usize) -> usize {
        self.channels[channel].read_q.len()
    }

    /// Enqueues a read (demand, prefetch, or critical prefetch).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the read queue is full; the caller
    /// must retry (this is the back-pressure path).
    pub fn enqueue_read(
        &mut self,
        channel: usize,
        id: ReqId,
        line: LineAddr,
        priority: Priority,
        now: Cycle,
    ) -> Result<(), QueueFullError> {
        let ch = &mut self.channels[channel];
        if ch.read_q.len() >= self.cfg.read_queue {
            return Err(QueueFullError);
        }
        if priority == Priority::Prefetch {
            ch.stats.prefetch_reads += 1;
        }
        ch.read_q.push(PendingRead {
            id,
            line,
            priority,
            arrive: now,
        });
        ch.reads_enqueued += 1;
        Ok(())
    }

    /// Enqueues a writeback.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the write queue is full.
    pub fn enqueue_write(&mut self, line: LineAddr, _now: Cycle) -> Result<(), QueueFullError> {
        let channel = self.channel_for(line);
        let ch = &mut self.channels[channel];
        if ch.write_q.len() >= self.cfg.write_queue {
            return Err(QueueFullError);
        }
        ch.write_q.push(PendingWrite { line });
        Ok(())
    }

    /// Advances all channels by one cycle, returning reads whose data is
    /// now available.
    pub fn tick(&mut self, now: Cycle) -> Vec<DramCompletion> {
        let mut done = Vec::new();
        for ci in 0..self.channels.len() {
            self.tick_channel(ci, now, &mut done);
        }
        done
    }

    fn tick_channel(&mut self, ci: usize, now: Cycle, done: &mut Vec<DramCompletion>) {
        // Deliver finished reads.
        let lines_per_row = self.lines_per_row;
        let banks = self.cfg.banks_per_channel;
        let cfg = self.cfg;
        let ch = &mut self.channels[ci];
        let mut i = 0;
        while i < ch.inflight.len() {
            if ch.inflight[i].done_cycle <= now {
                done.push(ch.inflight.swap_remove(i));
                ch.reads_delivered += 1;
            } else {
                i += 1;
            }
        }

        // All-bank refresh: when tREFI elapses, every bank is blocked for
        // tRFC and all rows close (the post-refresh state).
        if cfg.t_refi > 0 && now >= ch.next_refresh {
            ch.next_refresh = now + cfg.t_refi;
            ch.stats.refreshes += 1;
            for b in ch.banks.iter_mut() {
                b.busy_until = b.busy_until.max(now + cfg.t_rfc);
                b.open_row = None;
            }
        }

        // Update write-drain hysteresis (enter at watermark, leave empty).
        let (wn, wd) = cfg.write_watermark;
        if ch.write_q.len() * wd >= cfg.write_queue * wn {
            ch.draining = true;
        } else if ch.write_q.is_empty() {
            ch.draining = false;
        }

        if ch.bus_free_at > now {
            ch.stats.busy_cycles += 1;
            return;
        }

        // Reads are prioritized over writes unless draining (Table 3).
        let serve_write = ch.draining || ch.read_q.is_empty();
        if serve_write {
            // FCFS over writes with a ready bank.
            let mut chosen: Option<usize> = None;
            for (qi, w) in ch.write_q.iter().enumerate() {
                let row_global = w.line.raw() / lines_per_row;
                let bank = (clip_types::hash64(row_global) as usize) % banks;
                if ch.banks[bank].busy_until <= now {
                    chosen = Some(qi);
                    break;
                }
            }
            if let Some(qi) = chosen {
                let w = ch.write_q.remove(qi);
                let row_global = w.line.raw() / lines_per_row;
                let bank_i = (clip_types::hash64(row_global) as usize) % banks;
                let bank = &mut ch.banks[bank_i];
                let lat = Self::access_latency(&cfg, bank, row_global);
                bank.open_row = Some(row_global);
                bank.busy_until = now + lat + cfg.burst_cycles;
                ch.bus_free_at = now + cfg.burst_cycles;
                ch.stats.writes += 1;
            }
            return;
        }

        // FR-FCFS with priority classes: (priority, row-hit, age).
        let mut best: Option<(usize, (u8, bool, Cycle))> = None;
        for (qi, r) in ch.read_q.iter().enumerate() {
            let row_global = r.line.raw() / lines_per_row;
            let bank_i = (clip_types::hash64(row_global) as usize) % banks;
            let bank = &ch.banks[bank_i];
            if bank.busy_until > now {
                continue;
            }
            let row_hit = bank.open_row == Some(row_global);
            let prio_class = if cfg.prefetch_aware {
                match r.priority {
                    Priority::Demand => 2u8,
                    Priority::Writeback => 1,
                    Priority::Prefetch => 0,
                }
            } else {
                1
            };
            // Demand-first FR-FCFS (PADC): priority class first — demands
            // and CLIP-critical prefetches beat plain prefetches — then
            // row hits, then age. This sacrifices some row locality when
            // prefetches are accurate, which is part of the paper's
            // constrained-bandwidth story.
            let key = (prio_class, row_hit, Cycle::MAX - r.arrive);
            if best.is_none_or(|(_, bk)| key > bk) {
                best = Some((qi, key));
            }
        }
        let Some((qi, _)) = best else {
            return;
        };
        let r = ch.read_q.remove(qi);
        let row_global = r.line.raw() / lines_per_row;
        let bank_i = (clip_types::hash64(row_global) as usize) % banks;
        let bank = &mut ch.banks[bank_i];
        let row_hit = bank.open_row == Some(row_global);
        let lat = Self::access_latency(&cfg, bank, row_global);
        bank.open_row = Some(row_global);
        bank.busy_until = now + lat + cfg.burst_cycles;
        ch.bus_free_at = now + cfg.burst_cycles;
        ch.stats.reads += 1;
        if row_hit {
            ch.stats.row_hits += 1;
        }
        ch.stats.total_read_queue_delay += now - r.arrive;
        ch.inflight.push(DramCompletion {
            id: r.id,
            line: r.line,
            channel: ci,
            done_cycle: now + lat + cfg.burst_cycles,
        });
    }

    /// Quiescence hook: the earliest cycle `>= now` at which `tick` does
    /// anything beyond counting bus-busy cycles (which [`DramSystem::skip_idle`]
    /// settles in bulk), or `None` when every channel is empty.
    ///
    /// A queued read or write can only turn into a command once the data
    /// bus frees (`bus_free_at`) **and** a bank serving the prioritized
    /// queue frees — while a burst occupies the bus or every candidate
    /// bank is mid-access, a tick delivers completions (folded below),
    /// updates the write-drain hysteresis (constant-queue idempotent;
    /// settled by [`DramSystem::skip_idle`]), and counts the cycle busy,
    /// nothing else. During a skipped span nothing enqueues (external
    /// traffic only arrives on ticked cycles), so queue contents — and
    /// therefore the serve-writes decision and the candidate bank set —
    /// are constant, and the earliest `busy_until` among candidate banks
    /// is exactly the next cycle arbitration can act. With empty queues
    /// the only future activity is a scheduled completion or, when
    /// refresh is modelled (`t_refi > 0`), the next all-bank refresh.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut fold = |c: Cycle| next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        let lines_per_row = self.lines_per_row;
        let banks = self.cfg.banks_per_channel;
        let (wn, wd) = self.cfg.write_watermark;
        for ch in &self.channels {
            if !ch.read_q.is_empty() || !ch.write_q.is_empty() {
                if ch.bus_free_at > now {
                    fold(ch.bus_free_at);
                } else {
                    // Bus free: the next command issues when a candidate
                    // bank frees. The hysteresis value a tick would see
                    // (enter at watermark, leave empty) picks the queue.
                    let draining = if ch.write_q.len() * wd >= self.cfg.write_queue * wn {
                        true
                    } else if ch.write_q.is_empty() {
                        false
                    } else {
                        ch.draining
                    };
                    let bank_of = |line: LineAddr| {
                        (clip_types::hash64(line.raw() / lines_per_row) as usize) % banks
                    };
                    let earliest = if draining || ch.read_q.is_empty() {
                        ch.write_q
                            .iter()
                            .map(|w| ch.banks[bank_of(w.line)].busy_until)
                            .min()
                    } else {
                        ch.read_q
                            .iter()
                            .map(|r| ch.banks[bank_of(r.line)].busy_until)
                            .min()
                    };
                    if let Some(c) = earliest {
                        fold(c.max(now));
                    }
                }
            }
            for c in &ch.inflight {
                fold(c.done_cycle.max(now));
            }
            if self.cfg.t_refi > 0 {
                fold(ch.next_refresh.max(now));
            }
        }
        next
    }

    /// Bulk accounting for a skipped idle span `[from, to)` during which
    /// [`DramSystem::next_activity`] reported no work: each channel whose
    /// data bus was still draining a burst counts those cycles busy, and
    /// the write-drain hysteresis settles exactly as a run of ticks over
    /// a constant-length queue would (enter at the watermark, leave
    /// empty — idempotent, so once equals many). After this, channel
    /// state is bit-identical to having ticked every cycle of the span.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        let (wn, wd) = self.cfg.write_watermark;
        for ch in self.channels.iter_mut() {
            if ch.bus_free_at > from {
                ch.stats.busy_cycles += ch.bus_free_at.min(to) - from;
            }
            if ch.write_q.len() * wd >= self.cfg.write_queue * wn {
                ch.draining = true;
            } else if ch.write_q.is_empty() {
                ch.draining = false;
            }
        }
    }

    fn access_latency(cfg: &DramConfig, bank: &Bank, row: u64) -> Cycle {
        match bank.open_row {
            Some(open) if open == row => cfg.t_cas,
            Some(_) => cfg.t_rp + cfg.t_rcd + cfg.t_cas,
            None => cfg.t_rcd + cfg.t_cas,
        }
    }

    /// Per-channel statistics.
    pub fn stats(&self, channel: usize) -> &ChannelStats {
        &self.channels[channel].stats
    }

    /// Aggregate statistics across channels.
    pub fn total_stats(&self) -> ChannelStats {
        let mut t = ChannelStats::default();
        for ch in &self.channels {
            t.reads += ch.stats.reads;
            t.writes += ch.stats.writes;
            t.row_hits += ch.stats.row_hits;
            t.busy_cycles += ch.stats.busy_cycles;
            t.total_read_queue_delay += ch.stats.total_read_queue_delay;
            t.prefetch_reads += ch.stats.prefetch_reads;
            t.refreshes += ch.stats.refreshes;
        }
        t
    }

    /// Command legality + conservation audit across all channels: every
    /// accepted read must be queued, in flight, or delivered, and queue
    /// occupancies must respect their configured capacities. With `full`,
    /// also scans per-entry timestamps (an in-flight completion dated
    /// before `now` would mean `tick` failed to deliver it).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant, naming the
    /// channel.
    pub fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        for (ci, ch) in self.channels.iter().enumerate() {
            let outstanding = (ch.read_q.len() + ch.inflight.len()) as u64;
            if ch.reads_enqueued != ch.reads_delivered + outstanding {
                return Err(format!(
                    "channel {ci} read conservation broken: {} enqueued but {} delivered + \
                     {} queued + {} in flight (lost {})",
                    ch.reads_enqueued,
                    ch.reads_delivered,
                    ch.read_q.len(),
                    ch.inflight.len(),
                    ch.reads_enqueued as i64 - (ch.reads_delivered + outstanding) as i64
                ));
            }
            if ch.read_q.len() > self.cfg.read_queue {
                return Err(format!(
                    "channel {ci} read queue over capacity: {} in a {}-entry queue",
                    ch.read_q.len(),
                    self.cfg.read_queue
                ));
            }
            if ch.write_q.len() > self.cfg.write_queue {
                return Err(format!(
                    "channel {ci} write queue over capacity: {} in a {}-entry queue",
                    ch.write_q.len(),
                    self.cfg.write_queue
                ));
            }
            if full {
                for c in &ch.inflight {
                    if c.done_cycle < now {
                        return Err(format!(
                            "channel {ci} holds a stale completion for line {:#x} \
                             (done at {} but now is {now})",
                            c.line.raw(),
                            c.done_cycle
                        ));
                    }
                }
                for r in &ch.read_q {
                    if r.arrive > now {
                        return Err(format!(
                            "channel {ci} queued read for line {:#x} arrived in the future \
                             (cycle {} > now {now})",
                            r.line.raw(),
                            r.arrive
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Fault injection: silently discards one in-flight completion, as a
    /// controller that loses a response would — the requesting MSHR never
    /// fills and the read is never counted delivered, so [`DramSystem::audit`]
    /// reports the loss. The victim is picked by `selector` over all
    /// channels' in-flight entries in (channel, queue-position) order.
    /// Returns false when nothing is in flight.
    pub fn inject_swallow_completion(&mut self, selector: u64) -> bool {
        let total: usize = self.channels.iter().map(|c| c.inflight.len()).sum();
        if total == 0 {
            return false;
        }
        let mut idx = (selector % total as u64) as usize;
        for ch in self.channels.iter_mut() {
            if idx < ch.inflight.len() {
                ch.inflight.remove(idx);
                return true;
            }
            idx -= ch.inflight.len();
        }
        unreachable!("index bounded by total in-flight count")
    }

    /// Fraction of peak bandwidth used so far, given the elapsed cycles.
    /// This is the *overall* utilization across channels — the signal
    /// DSPatch samples (per-controller in the original; see the paper's
    /// critique).
    pub fn bandwidth_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let transfers: u64 = self
            .channels
            .iter()
            .map(|c| c.stats.reads + c.stats.writes)
            .sum();
        let peak = self.channels.len() as f64 * elapsed as f64 / self.cfg.burst_cycles as f64;
        (transfers as f64 / peak).min(1.0)
    }
}

impl DramModel for DramSystem {
    fn channels(&self) -> usize {
        DramSystem::channels(self)
    }
    fn channel_for(&self, line: LineAddr) -> usize {
        DramSystem::channel_for(self, line)
    }
    fn read_queue_has_room(&self, channel: usize) -> bool {
        DramSystem::read_queue_has_room(self, channel)
    }
    fn read_queue_len(&self, channel: usize) -> usize {
        DramSystem::read_queue_len(self, channel)
    }
    fn enqueue_read(
        &mut self,
        channel: usize,
        id: ReqId,
        line: LineAddr,
        priority: Priority,
        now: Cycle,
    ) -> Result<(), QueueFullError> {
        DramSystem::enqueue_read(self, channel, id, line, priority, now)
    }
    fn enqueue_write(&mut self, line: LineAddr, now: Cycle) -> Result<(), QueueFullError> {
        DramSystem::enqueue_write(self, line, now)
    }
    fn tick(&mut self, now: Cycle) -> Vec<DramCompletion> {
        DramSystem::tick(self, now)
    }
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        DramSystem::next_activity(self, now)
    }
    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        DramSystem::skip_idle(self, from, to)
    }
    fn stats(&self, channel: usize) -> &ChannelStats {
        DramSystem::stats(self, channel)
    }
    fn total_stats(&self) -> ChannelStats {
        DramSystem::total_stats(self)
    }
    fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        DramSystem::audit(self, now, full)
    }
    fn inject_swallow_completion(&mut self, selector: u64) -> bool {
        DramSystem::inject_swallow_completion(self, selector)
    }
    fn bandwidth_utilization(&self, elapsed: Cycle) -> f64 {
        DramSystem::bandwidth_utilization(self, elapsed)
    }
    fn fingerprint(&self, h: &mut Fnv64, full: bool) {
        for ch in &self.channels {
            h.write_u64(ch.reads_enqueued)
                .write_u64(ch.reads_delivered)
                .write_usize(ch.read_q.len())
                .write_usize(ch.write_q.len())
                .write_usize(ch.inflight.len());
            if !full {
                continue;
            }
            for r in &ch.read_q {
                h.write_u64(r.id.0)
                    .write_u64(r.line.raw())
                    .write_u64(r.priority as u64)
                    .write_u64(r.arrive);
            }
            for w in &ch.write_q {
                h.write_u64(w.line.raw());
            }
            for c in &ch.inflight {
                h.write_u64(c.id.0).write_u64(c.done_cycle);
            }
            for b in &ch.banks {
                h.write_u64(b.open_row.map_or(u64::MAX, |r| r))
                    .write_u64(b.busy_until);
            }
            h.write_u64(ch.bus_free_at).write_u64(ch.next_refresh);
        }
    }
}

/// HBM-style memory backend: the same channel/bank/queue machinery as
/// [`DramSystem`] — typically configured with more, narrower channels
/// (see `DramConfig::preset(DramKind::Hbm)`) — but with HBM's **per-bank
/// rolling refresh** in place of DDR4's all-bank lockstep refresh.
///
/// Each bank refreshes independently every `t_refi` cycles, staggered
/// across the channel so only a small fraction of a channel's banks is
/// ever in refresh at once; a refresh blocks only that bank for `t_rfc`
/// (tRFCpb) and closes only its row. Under bandwidth pressure
/// this keeps the channel serving row hits in other banks where a DDR4
/// channel would stall wholesale — exactly the fidelity axis the
/// Ramulator 2.0 re-evaluation shows can move conclusions.
///
/// Internally the shared machinery runs with refresh disabled
/// (`t_refi = 0`) and this wrapper owns the per-bank schedule, so the
/// conservation/quiescence contracts are inherited rather than
/// re-implemented.
#[derive(Debug, Clone)]
pub struct HbmDram {
    inner: DramSystem,
    t_refi: u64,
    t_rfc: u64,
    /// Next scheduled refresh per `[channel][bank]`.
    next_refresh: Vec<Vec<Cycle>>,
}

impl HbmDram {
    /// Builds the HBM backend from its configuration. `cfg.t_refi`/`t_rfc`
    /// are interpreted per bank (tREFIpb/tRFCpb); `t_refi = 0` disables
    /// refresh modeling, as for DDR4.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or not a power of two.
    pub fn new(cfg: &DramConfig) -> Self {
        let inner = DramSystem::new(&DramConfig { t_refi: 0, ..*cfg });
        let banks = cfg.banks_per_channel as u64;
        let schedule: Vec<Cycle> = (0..banks)
            // Stagger bank b's first refresh across (0, tREFI] so the
            // channel never loses more than one bank at a time.
            .map(|b| {
                if cfg.t_refi > 0 {
                    (b + 1) * cfg.t_refi / banks
                } else {
                    0
                }
            })
            .collect();
        HbmDram {
            inner,
            t_refi: cfg.t_refi,
            t_rfc: cfg.t_rfc,
            next_refresh: vec![schedule; cfg.channels],
        }
    }

    /// Applies every due per-bank refresh: blocks the bank for tRFCpb,
    /// closes its row, and reschedules it one tREFI out.
    fn refresh_due_banks(&mut self, now: Cycle) {
        if self.t_refi == 0 {
            return;
        }
        for (ci, banks) in self.next_refresh.iter_mut().enumerate() {
            let ch = &mut self.inner.channels[ci];
            for (bi, next) in banks.iter_mut().enumerate() {
                if now >= *next {
                    *next = now + self.t_refi;
                    ch.stats.refreshes += 1;
                    let bank = &mut ch.banks[bi];
                    bank.busy_until = bank.busy_until.max(now + self.t_rfc);
                    bank.open_row = None;
                }
            }
        }
    }
}

impl DramModel for HbmDram {
    fn channels(&self) -> usize {
        self.inner.channels()
    }
    fn channel_for(&self, line: LineAddr) -> usize {
        self.inner.channel_for(line)
    }
    fn read_queue_has_room(&self, channel: usize) -> bool {
        self.inner.read_queue_has_room(channel)
    }
    fn read_queue_len(&self, channel: usize) -> usize {
        self.inner.read_queue_len(channel)
    }
    fn enqueue_read(
        &mut self,
        channel: usize,
        id: ReqId,
        line: LineAddr,
        priority: Priority,
        now: Cycle,
    ) -> Result<(), QueueFullError> {
        self.inner.enqueue_read(channel, id, line, priority, now)
    }
    fn enqueue_write(&mut self, line: LineAddr, now: Cycle) -> Result<(), QueueFullError> {
        self.inner.enqueue_write(line, now)
    }
    fn tick(&mut self, now: Cycle) -> Vec<DramCompletion> {
        self.refresh_due_banks(now);
        self.inner.tick(now)
    }
    /// Inherits the shared machinery's quiescence reasoning and folds in
    /// the per-bank refresh schedule, so a skipped span never jumps over
    /// a refresh boundary.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut next = self.inner.next_activity(now);
        if self.t_refi > 0 {
            for banks in &self.next_refresh {
                for &r in banks {
                    let r = r.max(now);
                    next = Some(next.map_or(r, |n| n.min(r)));
                }
            }
        }
        next
    }
    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.inner.skip_idle(from, to)
    }
    fn stats(&self, channel: usize) -> &ChannelStats {
        self.inner.stats(channel)
    }
    fn total_stats(&self) -> ChannelStats {
        self.inner.total_stats()
    }
    fn audit(&self, now: Cycle, full: bool) -> Result<(), String> {
        self.inner.audit(now, full)?;
        if full && self.t_refi > 0 {
            for (ci, banks) in self.next_refresh.iter().enumerate() {
                for (bi, &next) in banks.iter().enumerate() {
                    if next < now {
                        return Err(format!(
                            "channel {ci} bank {bi} refresh overdue \
                             (scheduled at {next} but now is {now})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
    fn inject_swallow_completion(&mut self, selector: u64) -> bool {
        self.inner.inject_swallow_completion(selector)
    }
    fn bandwidth_utilization(&self, elapsed: Cycle) -> f64 {
        self.inner.bandwidth_utilization(elapsed)
    }
    fn fingerprint(&self, h: &mut Fnv64, full: bool) {
        self.inner.fingerprint(h, full);
        if full {
            for ch in &self.next_refresh {
                for &next in ch {
                    h.write_u64(next);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(channels: usize) -> DramSystem {
        let cfg = DramConfig {
            channels,
            ..DramConfig::default()
        };
        DramSystem::new(&cfg)
    }

    fn run(dram: &mut DramSystem, cycles: u64) -> Vec<DramCompletion> {
        let mut out = Vec::new();
        for now in 0..cycles {
            out.extend(dram.tick(now));
        }
        out
    }

    #[test]
    fn single_read_completes_with_closed_row_latency() {
        let mut d = sys(1);
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        let done = run(&mut d, 200);
        assert_eq!(done.len(), 1);
        // Closed row: tRCD + CAS + burst = 50 + 50 + 10 = 110.
        assert_eq!(done[0].done_cycle, 110);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = sys(1);
        // Same row back to back.
        d.enqueue_read(0, ReqId(1), LineAddr::new(0), Priority::Demand, 0)
            .unwrap();
        d.enqueue_read(0, ReqId(2), LineAddr::new(1), Priority::Demand, 0)
            .unwrap();
        let done = run(&mut d, 400);
        assert_eq!(done.len(), 2);
        let t1 = done.iter().find(|c| c.id == ReqId(1)).unwrap().done_cycle;
        let t2 = done.iter().find(|c| c.id == ReqId(2)).unwrap().done_cycle;
        // Second access is a row hit: CAS + burst after first issue.
        assert!(t2 - t1 < 110, "row hit should be fast, got {}", t2 - t1);
    }

    #[test]
    fn demand_beats_queued_prefetches() {
        let mut d = sys(1);
        // Fill with prefetches to different rows, then one demand.
        for i in 0..8u64 {
            d.enqueue_read(0, ReqId(i), LineAddr::new(i * 1000), Priority::Prefetch, 0)
                .unwrap();
        }
        d.enqueue_read(0, ReqId(99), LineAddr::new(50_000), Priority::Demand, 0)
            .unwrap();
        let done = run(&mut d, 2000);
        let demand_pos = done.iter().position(|c| c.id == ReqId(99)).unwrap();
        assert!(
            demand_pos <= 1,
            "demand must be serviced near-first, was at {demand_pos}"
        );
    }

    #[test]
    fn without_prefetch_awareness_fcfs_age_order() {
        let cfg = DramConfig {
            channels: 1,
            prefetch_aware: false,
            ..DramConfig::default()
        };
        let mut d = DramSystem::new(&cfg);
        for i in 0..4u64 {
            d.enqueue_read(0, ReqId(i), LineAddr::new(i * 1000), Priority::Prefetch, i)
                .unwrap();
        }
        d.enqueue_read(0, ReqId(99), LineAddr::new(50_000), Priority::Demand, 10)
            .unwrap();
        let done = run(&mut d, 2000);
        let demand_pos = done.iter().position(|c| c.id == ReqId(99)).unwrap();
        assert!(demand_pos >= 3, "demand must wait its turn without PADC");
    }

    #[test]
    fn queue_full_backpressure() {
        let mut d = sys(1);
        let mut ok = 0;
        for i in 0..100u64 {
            if d.enqueue_read(0, ReqId(i), LineAddr::new(i), Priority::Demand, 0)
                .is_ok()
            {
                ok += 1;
            }
        }
        assert_eq!(ok, DramConfig::default().read_queue);
        assert!(!d.read_queue_has_room(0));
    }

    #[test]
    fn bandwidth_scales_with_channels() {
        // Saturate 1 vs 4 channels with uniformly spread lines and compare
        // completions in the same window.
        let mut served = Vec::new();
        for chans in [1usize, 4] {
            let mut d = sys(chans);
            let mut next_id = 0u64;
            let mut completions = 0u64;
            for now in 0..5000u64 {
                for _ in 0..4 {
                    let line = LineAddr::new(clip_types::hash64(next_id) >> 16);
                    let ch = d.channel_for(line);
                    if d.enqueue_read(ch, ReqId(next_id), line, Priority::Demand, now)
                        .is_ok()
                    {
                        next_id += 1;
                    }
                }
                completions += d.tick(now).len() as u64;
            }
            served.push(completions);
        }
        assert!(
            served[1] as f64 > served[0] as f64 * 2.5,
            "4 channels must serve >2.5x of 1 channel: {served:?}"
        );
    }

    #[test]
    fn writes_drain_at_watermark() {
        let mut d = sys(1);
        let wq = DramConfig::default().write_queue;
        // Fill write queue to the watermark.
        for i in 0..(wq * 7 / 8 + 1) as u64 {
            d.enqueue_write(LineAddr::new(i * 64), 0).unwrap();
        }
        let _ = run(&mut d, 3000);
        let s = d.total_stats();
        assert!(s.writes > 0, "writes must drain");
    }

    #[test]
    fn utilization_is_bounded() {
        let mut d = sys(2);
        for i in 0..32u64 {
            let line = LineAddr::new(i * 997);
            let ch = d.channel_for(line);
            let _ = d.enqueue_read(ch, ReqId(i), line, Priority::Demand, 0);
        }
        let _ = run(&mut d, 1000);
        let u = d.bandwidth_utilization(1000);
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.0);
    }

    #[test]
    fn refresh_blocks_banks_and_closes_rows() {
        let cfg = DramConfig {
            channels: 1,
            t_refi: 1_000,
            t_rfc: 300,
            ..DramConfig::default()
        };
        let mut d = DramSystem::new(&cfg);
        // Request arriving right at the refresh boundary waits out tRFC.
        d.enqueue_read(0, ReqId(1), LineAddr::new(5), Priority::Demand, 0)
            .unwrap();
        let done = run(&mut d, 2000);
        assert_eq!(done.len(), 1);
        // Without refresh the request would finish in ~110 cycles; one
        // arriving at the refresh boundary waits out tRFC first.
        let mut d2 = DramSystem::new(&cfg);
        for now in 0..1_000u64 {
            let _ = d2.tick(now);
        }
        d2.enqueue_read(0, ReqId(2), LineAddr::new(5), Priority::Demand, 1_000)
            .unwrap();
        let mut done2 = Vec::new();
        for now in 1_000..5_000u64 {
            done2.extend(d2.tick(now));
        }
        assert_eq!(done2.len(), 1);
        assert!(
            done2[0].done_cycle >= 1_000 + 300,
            "request behind a refresh must wait tRFC: {}",
            done2[0].done_cycle
        );
        assert!(d2.total_stats().refreshes >= 1);
    }

    #[test]
    fn refresh_disabled_by_default() {
        let mut d = sys(1);
        let _ = run(&mut d, 100_000);
        assert_eq!(d.total_stats().refreshes, 0);
    }

    #[test]
    fn audit_passes_through_normal_traffic() {
        let mut d = sys(2);
        for i in 0..16u64 {
            let line = LineAddr::new(i * 997);
            let ch = d.channel_for(line);
            let _ = d.enqueue_read(ch, ReqId(i), line, Priority::Demand, 0);
        }
        for now in 0..1000 {
            d.tick(now);
            assert_eq!(d.audit(now, true), Ok(()), "cycle {now}");
        }
    }

    #[test]
    fn swallowed_completion_breaks_audit() {
        let mut d = sys(1);
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        // Tick until the read is issued (in flight), then swallow it.
        let mut swallowed = false;
        for now in 0..200 {
            d.tick(now);
            if d.inject_swallow_completion(5) {
                swallowed = true;
                break;
            }
        }
        assert!(swallowed, "the read should have been in flight");
        let err = d.audit(200, false).unwrap_err();
        assert!(err.contains("conservation broken"), "{err}");
        assert!(err.contains("channel 0"), "{err}");
    }

    #[test]
    fn swallow_on_idle_dram_is_noop() {
        let mut d = sys(2);
        assert!(!d.inject_swallow_completion(3));
        assert_eq!(d.audit(0, true), Ok(()));
    }

    #[test]
    fn quiescence_reports_completion_and_refresh() {
        let mut d = sys(1);
        assert_eq!(d.next_activity(0), None, "empty controller is idle");
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        assert_eq!(d.next_activity(0), Some(0), "queued read is work now");
        // Issue the read; once in flight with an empty queue, the next
        // activity is exactly the completion cycle (110, see above).
        d.tick(0);
        assert_eq!(d.next_activity(1), Some(110));
        let cfg = DramConfig {
            channels: 1,
            t_refi: 500,
            ..DramConfig::default()
        };
        let d2 = DramSystem::new(&cfg);
        assert_eq!(
            d2.next_activity(0),
            Some(500),
            "refresh is an activity source"
        );
    }

    #[test]
    fn skip_idle_matches_ticked_idle_span() {
        // Two identical controllers issue one read each, then one ticks
        // through the dead wait while the other skips it; stats and the
        // delivered completion must agree bit-for-bit.
        let mut stepped = sys(1);
        let mut skipped = sys(1);
        for d in [&mut stepped, &mut skipped] {
            d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
                .unwrap();
            d.tick(0); // issues the read; bus busy, completion at 110.
        }
        let next = skipped.next_activity(1).expect("completion pending");
        let mut stepped_done = Vec::new();
        for now in 1..=next {
            stepped_done.extend(stepped.tick(now));
        }
        skipped.skip_idle(1, next);
        let skipped_done = skipped.tick(next);
        assert_eq!(stepped_done, skipped_done);
        assert_eq!(stepped.total_stats(), skipped.total_stats());
        assert_eq!(skipped.audit(next, true), Ok(()));
    }

    #[test]
    fn channel_mapping_is_stable_and_in_range() {
        let d = sys(8);
        for i in 0..1000u64 {
            let c = d.channel_for(LineAddr::new(i));
            assert!(c < 8);
            assert_eq!(c, d.channel_for(LineAddr::new(i)));
        }
    }

    fn hbm_cfg(channels: usize, t_refi: u64) -> DramConfig {
        DramConfig {
            channels,
            t_refi,
            ..DramConfig::preset(clip_types::DramKind::Hbm)
        }
    }

    /// Drives any backend through the trait — the surface the simulator
    /// uses — proving both impls are interchangeable behind `dyn`.
    fn run_model(dram: &mut dyn DramModel, from: u64, cycles: u64) -> Vec<DramCompletion> {
        let mut out = Vec::new();
        for now in from..from + cycles {
            out.extend(dram.tick(now));
        }
        out
    }

    #[test]
    fn hbm_serves_reads_through_the_trait_object() {
        let mut d: Box<dyn DramModel> = Box::new(HbmDram::new(&hbm_cfg(1, 0)));
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        let done = run_model(d.as_mut(), 0, 400);
        assert_eq!(done.len(), 1);
        // Closed row with HBM preset timing: tRCD + CAS + burst = 56 + 56 + 20.
        assert_eq!(done[0].done_cycle, 132);
        assert_eq!(d.total_stats().reads, 1);
        assert_eq!(d.audit(400, true), Ok(()));
    }

    #[test]
    fn hbm_refresh_blocks_one_bank_at_a_time() {
        // Stagger slot (tREFI / banks = 1000) wider than tRFCpb (640):
        // at most one bank of the channel refreshes at a time, unlike
        // DDR4's all-bank lockstep which gang-blocks the whole channel.
        let cfg = hbm_cfg(1, 32_000);
        let mut d = HbmDram::new(&cfg);
        let mut max_blocked = 0usize;
        for now in 0..100_000u64 {
            d.tick(now);
            let blocked = d.inner.channels[0]
                .banks
                .iter()
                .filter(|b| b.busy_until > now)
                .count();
            max_blocked = max_blocked.max(blocked);
        }
        let refreshes = d.total_stats().refreshes;
        assert!(refreshes >= 2 * cfg.banks_per_channel as u64, "{refreshes}");
        assert!(
            max_blocked <= 1,
            "rolling refresh must not gang-block banks, saw {max_blocked}"
        );
    }

    #[test]
    fn hbm_quiescence_reports_refresh_and_completion() {
        let mut d = HbmDram::new(&hbm_cfg(1, 32_000));
        // Idle: the only activity is the first staggered bank refresh.
        let first = d.next_activity(0).expect("refresh is an activity source");
        assert_eq!(first, 32_000 / 32, "first stagger slot");
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        assert_eq!(d.next_activity(0), Some(0), "queued read is work now");
        d.tick(0);
        // In flight: completion at 132 beats the refresh schedule.
        assert_eq!(d.next_activity(1), Some(132));
    }

    #[test]
    fn hbm_skip_idle_matches_ticked_idle_span_across_refreshes() {
        // Wheel-style driving (skip to next_activity, settle, tick) must
        // be bit-identical to grinding every cycle — including refresh
        // boundaries, which next_activity folds in.
        let cfg = hbm_cfg(1, 2_000);
        let mut stepped = HbmDram::new(&cfg);
        let mut wheeled = HbmDram::new(&cfg);
        for d in [&mut stepped, &mut wheeled] {
            d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
                .unwrap();
        }
        let horizon = 10_000u64;
        let mut stepped_done = run_model(&mut stepped, 0, horizon);
        stepped_done.sort_by_key(|c| c.done_cycle);

        let mut wheeled_done = Vec::new();
        let mut now = 0u64;
        while now < horizon {
            wheeled_done.extend(wheeled.tick(now));
            match wheeled.next_activity(now + 1) {
                Some(next) if next < horizon => {
                    wheeled.skip_idle(now + 1, next);
                    now = next;
                }
                _ => break,
            }
        }
        wheeled_done.sort_by_key(|c| c.done_cycle);
        assert_eq!(stepped_done, wheeled_done);
        assert_eq!(stepped.total_stats(), wheeled.total_stats());
        assert_eq!(wheeled.audit(horizon, false), Ok(()));
    }

    #[test]
    fn hbm_swallowed_completion_breaks_audit() {
        let mut d = HbmDram::new(&hbm_cfg(1, 0));
        d.enqueue_read(0, ReqId(1), LineAddr::new(7), Priority::Demand, 0)
            .unwrap();
        let mut swallowed = false;
        for now in 0..300 {
            d.tick(now);
            if d.inject_swallow_completion(5) {
                swallowed = true;
                break;
            }
        }
        assert!(swallowed, "the read should have been in flight");
        let err = d.audit(300, false).unwrap_err();
        assert!(err.contains("conservation broken"), "{err}");
    }

    #[test]
    fn ddr4_and_hbm_presets_agree_on_peak_utilization_bound() {
        for mut d in [
            Box::new(DramSystem::new(&DramConfig::default())) as Box<dyn DramModel>,
            Box::new(HbmDram::new(&hbm_cfg(16, 0))),
        ] {
            for i in 0..64u64 {
                let line = LineAddr::new(i * 997);
                let ch = d.channel_for(line);
                let _ = d.enqueue_read(ch, ReqId(i), line, Priority::Demand, 0);
            }
            run_model(d.as_mut(), 0, 2_000);
            let u = d.bandwidth_utilization(2_000);
            assert!((0.0..=1.0).contains(&u) && u > 0.0, "{u}");
        }
    }
}
