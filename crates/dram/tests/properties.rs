//! Randomized invariant tests: DRAM conservation and latency bounds,
//! driven by the workspace's deterministic [`SimRng`].

use clip_dram::DramSystem;
use clip_types::{DramConfig, LineAddr, Priority, ReqId, SimRng};

/// Every accepted read completes exactly once, within a bounded time,
/// regardless of the request pattern.
#[test]
fn reads_complete_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0xD2A1);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..60);
        let channels_log = rng.gen_range(0u32..4);
        let cfg = DramConfig {
            channels: 1 << channels_log,
            ..DramConfig::default()
        };
        let mut dram = DramSystem::new(&cfg);
        let mut accepted = Vec::new();
        for i in 0..n {
            let line = LineAddr::new(rng.gen_range(0u64..(1 << 20)));
            let ch = dram.channel_for(line);
            if dram
                .enqueue_read(ch, ReqId(i as u64), line, Priority::Demand, 0)
                .is_ok()
            {
                accepted.push(ReqId(i as u64));
            }
        }
        let mut done = Vec::new();
        // 60 requests * worst-case ~170 cycles each on one channel.
        for now in 0..20_000u64 {
            done.extend(dram.tick(now).into_iter().map(|c| c.id));
        }
        done.sort_unstable();
        let mut expect = accepted.clone();
        expect.sort_unstable();
        assert_eq!(done, expect);
    }
}

/// Channel mapping is total and stable; row hits never exceed total
/// commands.
#[test]
fn stats_are_consistent() {
    let mut rng = SimRng::seed_from_u64(0xD2A2);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..80);
        let mut dram = DramSystem::new(&DramConfig::default());
        for i in 0..n {
            let line = LineAddr::new(rng.gen_range(0u64..(1 << 16)));
            let ch = dram.channel_for(line);
            assert!(ch < dram.channels());
            let _ = dram.enqueue_read(ch, ReqId(i as u64), line, Priority::Demand, 0);
        }
        for now in 0..30_000u64 {
            let _ = dram.tick(now);
        }
        let s = dram.total_stats();
        assert!(s.row_hits <= s.reads + s.writes);
        assert!(dram.bandwidth_utilization(30_000) <= 1.0);
    }
}

/// Priority inversion never starves demands: with mixed traffic, all
/// demand reads finish no later than the last prefetch read.
#[test]
fn demands_never_finish_last() {
    let mut rng = SimRng::seed_from_u64(0xD2A3);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let cfg = DramConfig {
            channels: 1,
            ..DramConfig::default()
        };
        let mut dram = DramSystem::new(&cfg);
        let mut demand_ids = Vec::new();
        for i in 0..24u64 {
            let line = LineAddr::new(clip_types::hash64(seed ^ i) >> 40);
            let prio = if i % 3 == 0 {
                Priority::Demand
            } else {
                Priority::Prefetch
            };
            if prio == Priority::Demand {
                demand_ids.push(ReqId(i));
            }
            let _ = dram.enqueue_read(0, ReqId(i), line, prio, 0);
        }
        let mut finish = std::collections::HashMap::new();
        for now in 0..50_000u64 {
            for c in dram.tick(now) {
                finish.insert(c.id, c.done_cycle);
            }
        }
        let max_demand = demand_ids.iter().filter_map(|d| finish.get(d)).max();
        let max_all = finish.values().max();
        if let (Some(md), Some(ma)) = (max_demand, max_all) {
            assert!(md <= ma);
        }
    }
}
