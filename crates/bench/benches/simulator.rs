//! End-to-end simulator benchmarks: wall-clock cost of one small
//! simulation per mechanism stack. These track the harness's own
//! performance (simulated-instructions per host-second), so regressions
//! in the cycle loop are caught. Plain `fn main()` +
//! [`clip_bench::timing::bench`] — no criterion, so the workspace stays
//! hermetic.

use clip_bench::timing::bench;
use clip_sim::{run_mix, NocChoice, RunOptions, Scheme};
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 200,
        sim_instrs: 1_500,
        seed: 21,
        noc: NocChoice::Mesh,
        ..RunOptions::default()
    }
}

fn cfg(pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn mix() -> Mix {
    Mix::homogeneous(
        &clip_trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        4,
    )
}

fn bench_schemes() {
    let m = mix();
    bench("sim_4core_mcf/nopf", 10, || {
        run_mix(&cfg(PrefetcherKind::None), &Scheme::plain(), &m, &opts())
    });
    bench("sim_4core_mcf/berti", 10, || {
        run_mix(&cfg(PrefetcherKind::Berti), &Scheme::plain(), &m, &opts())
    });
    bench("sim_4core_mcf/berti_clip", 10, || {
        run_mix(
            &cfg(PrefetcherKind::Berti),
            &Scheme::with_clip(),
            &m,
            &opts(),
        )
    });
}

fn bench_noc_models() {
    let m = mix();
    for (name, noc) in [("mesh", NocChoice::Mesh), ("analytic", NocChoice::Analytic)] {
        let o = RunOptions { noc, ..opts() };
        bench(&format!("sim_noc_model/{name}"), 10, || {
            run_mix(&cfg(PrefetcherKind::Berti), &Scheme::plain(), &m, &o)
        });
    }
}

fn main() {
    bench_schemes();
    bench_noc_models();
}
