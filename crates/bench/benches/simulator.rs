//! Criterion end-to-end simulator benchmarks: wall-clock cost of one
//! small simulation per mechanism stack. These track the harness's own
//! performance (simulated-instructions per host-second), so regressions
//! in the cycle loop are caught.

use clip_sim::{run_mix, NocChoice, RunOptions, Scheme};
use clip_trace::Mix;
use clip_types::{PrefetcherKind, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn opts() -> RunOptions {
    RunOptions {
        warmup_instrs: 200,
        sim_instrs: 1_500,
        seed: 21,
        noc: NocChoice::Mesh,
        max_cycles: 0,
        timeline_interval: 0,
    }
}

fn cfg(pf: PrefetcherKind) -> SimConfig {
    SimConfig::builder()
        .cores(4)
        .dram_channels(1)
        .l1_prefetcher(pf)
        .build()
        .expect("valid config")
}

fn mix() -> Mix {
    Mix::homogeneous(
        &clip_trace::catalog::by_name("605.mcf_s-1554B").expect("known workload"),
        4,
    )
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_4core_mcf");
    g.sample_size(10);
    g.bench_function("nopf", |b| {
        let m = mix();
        b.iter(|| {
            black_box(run_mix(
                &cfg(PrefetcherKind::None),
                &Scheme::plain(),
                &m,
                &opts(),
            ))
        })
    });
    g.bench_function("berti", |b| {
        let m = mix();
        b.iter(|| {
            black_box(run_mix(
                &cfg(PrefetcherKind::Berti),
                &Scheme::plain(),
                &m,
                &opts(),
            ))
        })
    });
    g.bench_function("berti_clip", |b| {
        let m = mix();
        b.iter(|| {
            black_box(run_mix(
                &cfg(PrefetcherKind::Berti),
                &Scheme::with_clip(),
                &m,
                &opts(),
            ))
        })
    });
    g.finish();
}

fn bench_noc_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_noc_model");
    g.sample_size(10);
    for (name, noc) in [("mesh", NocChoice::Mesh), ("analytic", NocChoice::Analytic)] {
        g.bench_function(name, |b| {
            let m = mix();
            let o = RunOptions { noc, ..opts() };
            b.iter(|| {
                black_box(run_mix(
                    &cfg(PrefetcherKind::Berti),
                    &Scheme::plain(),
                    &m,
                    &o,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes, bench_noc_models);
criterion_main!(benches);
