//! Micro-benchmarks for the simulator's hot components: cache lookups
//! under each replacement policy, prefetcher training, CLIP's gate path,
//! DRAM scheduling, and NoC forwarding.
//!
//! These benches keep the substrate honest (the cycle loop touches these
//! paths millions of times per experiment); they are not paper artifacts.
//! Plain `fn main()` + [`clip_bench::timing::bench`] — no criterion, so
//! the workspace stays hermetic.

use clip_bench::timing::bench;
use clip_core::{Clip, ClipConfig};
use clip_cpu::LoadOutcome;
use clip_prefetch::{build, AccessInfo, PrefetcherKind};
use clip_types::{
    Addr, CacheLevelConfig, DramConfig, Ip, LineAddr, MemLevel, NocConfig, Priority,
    ReplacementKind, ReqId,
};

fn bench_cache() {
    for repl in [
        ReplacementKind::Lru,
        ReplacementKind::Srrip,
        ReplacementKind::Mockingjay,
    ] {
        let cfg = CacheLevelConfig {
            capacity_bytes: 512 * 1024,
            ways: 8,
            latency: 10,
            mshrs: 32,
            replacement: repl,
        };
        let mut cache = clip_cache::Cache::new(&cfg);
        let mut i = 0u64;
        bench(&format!("cache/lookup_fill_{repl:?}"), 100_000, || {
            i += 1;
            let line = LineAddr::new(clip_types::hash64(i) % (1 << 16));
            if !cache.lookup(line, false, i).is_hit() {
                cache.fill(line, false, false, i);
            }
            cache.stats().demand_hits
        });
    }
}

fn bench_prefetchers() {
    for kind in [
        PrefetcherKind::Berti,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Bingo,
        PrefetcherKind::SppPpf,
    ] {
        let mut pf = build(kind);
        let mut out = Vec::new();
        let mut i = 0u64;
        bench(
            &format!("prefetcher_on_access/{}", kind.name()),
            50_000,
            || {
                i += 1;
                out.clear();
                pf.on_access(
                    &AccessInfo {
                        ip: Ip::new(0x400 + (i % 16) * 8),
                        addr: Addr::new((1 << 20) + i * 64),
                        hit: !i.is_multiple_of(3),
                        is_store: false,
                        cycle: i * 10,
                    },
                    &mut out,
                );
                out.len()
            },
        );
    }
}

fn bench_clip() {
    let mut clip = Clip::new(ClipConfig::default());
    // Train a few IPs critical.
    for ip in 0..8u64 {
        for i in 0..8 {
            clip.on_load_complete(&LoadOutcome {
                ip: Ip::new(0x400 + ip * 8),
                addr: Addr::new(i * 64),
                level: MemLevel::Dram,
                stalled_head: true,
                stall_cycles: 60,
                rob_occupancy: 256,
                outstanding_loads: 2,
                done_cycle: 0,
                latency: 300,
            });
        }
    }
    let mut i = 0u64;
    bench("clip/filter_prefetch", 100_000, || {
        i += 1;
        clip.filter_prefetch(LineAddr::new(i % (1 << 14)), Ip::new(0x400 + (i % 16) * 8))
    });

    let mut clip = Clip::new(ClipConfig::default());
    let mut i = 0u64;
    bench("clip/on_load_complete", 100_000, || {
        i += 1;
        clip.on_load_complete(&LoadOutcome {
            ip: Ip::new(0x400 + (i % 32) * 8),
            addr: Addr::new(i * 64),
            level: if i.is_multiple_of(4) {
                MemLevel::Dram
            } else {
                MemLevel::L1
            },
            stalled_head: i.is_multiple_of(4),
            stall_cycles: 40,
            rob_occupancy: 200,
            outstanding_loads: 3,
            done_cycle: i,
            latency: 200,
        });
        clip.critical_ip_count()
    });
}

fn bench_dram() {
    let mut dram = clip_dram::DramSystem::new(&DramConfig::default());
    let mut i = 0u64;
    bench("dram_tick_loaded", 50_000, || {
        i += 1;
        let line = LineAddr::new(clip_types::hash64(i) >> 20);
        let ch = dram.channel_for(line);
        let _ = dram.enqueue_read(ch, ReqId(i), line, Priority::Demand, i);
        dram.tick(i).len()
    });
}

fn bench_noc() {
    use clip_noc::NocModel;
    let mut noc = clip_noc::MeshNoc::new(&NocConfig::default());
    let mut i = 0u64;
    bench("mesh_tick_loaded", 50_000, || {
        i += 1;
        let src = (clip_types::hash64(i) % 64) as usize;
        let dst = (clip_types::hash64(i ^ 7) % 64) as usize;
        let _ = noc.send(src, dst, 8, Priority::Demand, i, i);
        noc.tick(i).len()
    });
}

fn main() {
    bench_cache();
    bench_prefetchers();
    bench_clip();
    bench_dram();
    bench_noc();
}
