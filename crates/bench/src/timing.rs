//! A minimal timing harness for the workspace's micro-benchmarks.
//!
//! The workspace builds with zero external crates, so the benches under
//! `benches/` are plain `fn main()` programs (`harness = false`) driven
//! by this module instead of criterion. The methodology is deliberately
//! simple: warm up, then take the median of several timed batches so a
//! single scheduler hiccup cannot skew the report.

use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches per benchmark; the median is reported.
const BATCHES: usize = 7;

/// Runs `f` repeatedly and prints `name: <median ns/iter>`.
///
/// `iters` is the batch size — pick it large enough that one batch takes
/// well over a microsecond so `Instant` resolution is irrelevant.
pub fn bench<T>(name: &str, iters: u64, f: impl FnMut() -> T) {
    let median = bench_median_ns(iters, f);
    if median >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter", median / 1_000_000.0);
    } else if median >= 1_000.0 {
        println!("{name:<40} {:>12.3} us/iter", median / 1_000.0);
    } else {
        println!("{name:<40} {median:>12.1} ns/iter");
    }
}

/// [`bench`]'s measurement core: runs `f` and **returns** the median
/// ns/iter instead of printing it, for harnesses that post-process the
/// number (speedup ratios, JSON artifacts) rather than eyeball it.
pub fn bench_median_ns<T>(iters: u64, mut f: impl FnMut() -> T) -> f64 {
    // Warmup: one full batch, unmeasured.
    for _ in 0..iters {
        black_box(f());
    }
    let mut ns_per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    ns_per_iter.sort_by(|a, b| a.total_cmp(b));
    ns_per_iter[BATCHES / 2]
}
