//! The `clipd` wire protocol: newline-delimited JSON frames over TCP.
//!
//! One frame is one JSON value on one line, at most [`FRAME_MAX`] bytes
//! including the terminating `\n`. A client sends request frames and
//! reads response frames until a terminal one (`done`, `bye`, or any
//! `"ok": false` error); the connection then stays open for further
//! requests. Malformed input is a property of the *connection*, never
//! the daemon: a frame that is oversized, truncated, or unparseable
//! earns a structured error frame (or a clean close) and at worst ends
//! that one connection.
//!
//! Requests (`"kind"` selects):
//!
//! * `health` — admission/cache counters; never queued, always answered.
//! * `run` — one [`RunSpec`] cell: the named scheme *and* its
//!   no-prefetch baseline, exactly the pair `clipsim` runs locally.
//!   Streams two `cell` frames (baseline first) and a `done` frame.
//! * `figure <name>` — a registered figure binary at the daemon's scale:
//!   one `experiment` frame per completed spec (its rendered text and
//!   JSON artifact), then `done`.
//! * `shutdown` — polite drain: the daemon answers `bye`, stops
//!   accepting, and exits once in-flight work completes.
//!
//! Error frames are `{"ok": false, "code": <word>, "error": <detail>}`;
//! [`codes`] enumerates the words. `overloaded` is the admission-control
//! rejection clients retry with backoff ([`crate::retry`]).
//!
//! The name↔enum mappings ([`prefetcher_from`] and friends) are shared
//! with the `clipsim` command line, so the CLI and the wire accept
//! exactly the same vocabulary.

use clip_sim::{NocChoice, Scheme, SimResult};
use clip_stats::Json;
use clip_throttle::ThrottlerKind;
use clip_trace::Mix;
use clip_types::{DramKind, PrefetcherKind, SimConfig};
use std::io::{BufRead, Read, Write};

/// Hard cap on one frame's size in bytes, terminator included. Big
/// enough for any figure artifact at reproduction scale, small enough
/// that a garbage peer cannot balloon the daemon's memory.
pub const FRAME_MAX: usize = 1 << 20;

/// Error words carried by `{"ok": false}` frames.
pub mod codes {
    /// The request frame was not valid JSON / not a known request.
    pub const BAD_REQUEST: &str = "bad_request";
    /// Admission control rejected the request; retry with backoff.
    pub const OVERLOADED: &str = "overloaded";
    /// The daemon is draining for shutdown; try another instance.
    pub const DRAINING: &str = "draining";
    /// A simulation cell failed (audit, timeout, panic, ...).
    pub const SIM: &str = "sim";
    /// The daemon hit an unexpected internal failure on this request.
    pub const INTERNAL: &str = "internal";
}

/// Why reading a frame failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The frame exceeded [`FRAME_MAX`] bytes without a terminator.
    TooLarge,
    /// The connection ended mid-frame (no terminating newline).
    Truncated,
    /// Transport-level failure (includes read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::TooLarge => write!(f, "frame exceeds {FRAME_MAX} bytes"),
            RecvError::Truncated => write!(f, "connection ended mid-frame"),
            RecvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one newline-terminated frame. The size cap is enforced by the
/// read itself (`take`), so an oversized frame never buffers more than
/// `FRAME_MAX + 1` bytes no matter how much the peer sends.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<String, RecvError> {
    let mut buf = Vec::new();
    let n = r
        .by_ref()
        .take(FRAME_MAX as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(RecvError::Io)?;
    if n == 0 {
        return Err(RecvError::Closed);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > FRAME_MAX {
            RecvError::TooLarge
        } else {
            RecvError::Truncated
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Writes one frame and flushes it.
pub fn write_frame<W: Write>(w: &mut W, v: &Json) -> std::io::Result<()> {
    let mut line = v.render();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Builds an `{"ok": false}` error frame.
pub fn error_frame(code: &str, detail: &str) -> Json {
    Json::object([
        ("ok", Json::from(false)),
        ("code", Json::from(code)),
        ("error", Json::from(detail)),
    ])
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Health,
    Shutdown,
    Figure { name: String },
    Run(RunSpec),
}

/// One simulation cell as submitted over the wire: the same shape the
/// `clipsim` command line builds. Every field has the CLI's default.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Homogeneous mix of this catalog trace (`hetero_seed` wins).
    pub workload: Option<String>,
    /// Random heterogeneous mix from this seed instead of a workload.
    pub hetero_seed: Option<u64>,
    pub cores: usize,
    pub channels: usize,
    pub prefetcher: PrefetcherKind,
    pub clip: bool,
    pub dynclip: bool,
    pub throttler: Option<ThrottlerKind>,
    pub hermes: bool,
    pub dspatch: bool,
    pub instrs: u64,
    pub warmup: u64,
    pub seed: u64,
    pub noc: NocChoice,
    pub dram: DramKind,
    /// Per-request wall-clock budget, wired into
    /// [`clip_sim::RunOptions::deadline`] on the daemon side.
    pub deadline_ms: Option<u64>,
}

/// The prefetcher vocabulary, shared by [`prefetcher_from`] and the
/// `CLIP_PF` environment knob (which accepts exactly the CLI's words).
const PREFETCHER_WORDS: &[&str] = &[
    "none",
    "berti",
    "ipcp",
    "bingo",
    "spp-ppf",
    "spp",
    "ip-stride",
    "stream",
    "next-line",
    "composite",
];

/// The default prefetcher kind: `CLIP_PF` when set to a known word
/// (validated warn-once, see [`clip_types::knob`]), else Berti. Requests
/// and CLI flags that name a prefetcher explicitly always win.
pub fn default_prefetcher() -> PrefetcherKind {
    clip_types::knob::env_choice("CLIP_PF", PREFETCHER_WORDS)
        .and_then(|w| prefetcher_from(w).ok())
        .unwrap_or(PrefetcherKind::Berti)
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            workload: None,
            hetero_seed: None,
            cores: 8,
            channels: 1,
            prefetcher: default_prefetcher(),
            clip: false,
            dynclip: false,
            throttler: None,
            hermes: false,
            dspatch: false,
            instrs: 10_000,
            warmup: 2_000,
            seed: 42,
            noc: NocChoice::Mesh,
            dram: DramKind::Ddr4,
            deadline_ms: None,
        }
    }
}

// ----------------------------------------------------------------------
// Name <-> enum vocabulary (shared by the CLI and the wire).
// ----------------------------------------------------------------------

pub fn prefetcher_from(name: &str) -> Result<PrefetcherKind, String> {
    Ok(match name {
        "none" => PrefetcherKind::None,
        "berti" => PrefetcherKind::Berti,
        "ipcp" => PrefetcherKind::Ipcp,
        "bingo" => PrefetcherKind::Bingo,
        "spp-ppf" | "spp" => PrefetcherKind::SppPpf,
        "ip-stride" => PrefetcherKind::IpStride,
        "stream" => PrefetcherKind::Stream,
        "next-line" => PrefetcherKind::NextLine,
        "composite" => PrefetcherKind::Composite,
        other => return Err(format!("unknown prefetcher: {other}")),
    })
}

pub fn prefetcher_name(kind: PrefetcherKind) -> &'static str {
    match kind {
        PrefetcherKind::None => "none",
        PrefetcherKind::Berti => "berti",
        PrefetcherKind::Ipcp => "ipcp",
        PrefetcherKind::Bingo => "bingo",
        PrefetcherKind::SppPpf => "spp-ppf",
        PrefetcherKind::IpStride => "ip-stride",
        PrefetcherKind::Stream => "stream",
        PrefetcherKind::NextLine => "next-line",
        PrefetcherKind::Composite => "composite",
    }
}

pub fn throttler_from(name: &str) -> Result<ThrottlerKind, String> {
    Ok(match name {
        "fdp" => ThrottlerKind::Fdp,
        "hpac" => ThrottlerKind::Hpac,
        "spac" => ThrottlerKind::Spac,
        "nst" => ThrottlerKind::Nst,
        other => return Err(format!("unknown throttler: {other}")),
    })
}

pub fn throttler_name(kind: ThrottlerKind) -> &'static str {
    match kind {
        ThrottlerKind::Fdp => "fdp",
        ThrottlerKind::Hpac => "hpac",
        ThrottlerKind::Spac => "spac",
        ThrottlerKind::Nst => "nst",
    }
}

pub fn noc_from(name: &str) -> Result<NocChoice, String> {
    Ok(match name {
        "mesh" => NocChoice::Mesh,
        "analytic" => NocChoice::Analytic,
        "chiplet" => NocChoice::Chiplet,
        other => return Err(format!("unknown noc model: {other}")),
    })
}

pub fn noc_name(noc: NocChoice) -> &'static str {
    match noc {
        NocChoice::Mesh => "mesh",
        NocChoice::Analytic => "analytic",
        NocChoice::Chiplet => "chiplet",
    }
}

pub fn dram_from(name: &str) -> Result<DramKind, String> {
    Ok(match name {
        "ddr4" => DramKind::Ddr4,
        "hbm" => DramKind::Hbm,
        other => return Err(format!("unknown dram backend: {other}")),
    })
}

pub fn dram_name(kind: DramKind) -> &'static str {
    match kind {
        DramKind::Ddr4 => "ddr4",
        DramKind::Hbm => "hbm",
    }
}

// ----------------------------------------------------------------------
// Request encode / decode.
// ----------------------------------------------------------------------

impl RunSpec {
    /// The wire form of this spec (defaults are encoded too, so a frame
    /// is self-describing).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::from("run"))];
        if let Some(w) = &self.workload {
            fields.push(("workload", Json::from(w.clone())));
        }
        if let Some(s) = self.hetero_seed {
            fields.push(("hetero_seed", Json::from(s)));
        }
        fields.extend([
            ("cores", Json::from(self.cores)),
            ("channels", Json::from(self.channels)),
            ("prefetcher", Json::from(prefetcher_name(self.prefetcher))),
            ("clip", Json::from(self.clip)),
            ("dynclip", Json::from(self.dynclip)),
        ]);
        if let Some(t) = self.throttler {
            fields.push(("throttler", Json::from(throttler_name(t))));
        }
        fields.extend([
            ("hermes", Json::from(self.hermes)),
            ("dspatch", Json::from(self.dspatch)),
            ("instrs", Json::from(self.instrs)),
            ("warmup", Json::from(self.warmup)),
            ("seed", Json::from(self.seed)),
            ("noc", Json::from(noc_name(self.noc))),
            ("dram", Json::from(dram_name(self.dram))),
        ]);
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::from(ms)));
        }
        Json::object(fields)
    }

    fn from_json(v: &Json) -> Result<RunSpec, String> {
        let mut spec = RunSpec::default();
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be a string")),
            }
        };
        let u64_field = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be a non-negative integer")),
            }
        };
        let bool_field = |key: &str| -> Result<Option<bool>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(Json::Bool(b)) => Ok(Some(*b)),
                Some(_) => Err(format!("{key} must be a boolean")),
            }
        };
        spec.workload = str_field("workload")?.map(str::to_string);
        spec.hetero_seed = u64_field("hetero_seed")?;
        if let Some(n) = u64_field("cores")? {
            spec.cores = n as usize;
        }
        if let Some(n) = u64_field("channels")? {
            spec.channels = n as usize;
        }
        if let Some(s) = str_field("prefetcher")? {
            spec.prefetcher = prefetcher_from(s)?;
        }
        if let Some(b) = bool_field("clip")? {
            spec.clip = b;
        }
        if let Some(b) = bool_field("dynclip")? {
            spec.dynclip = b;
        }
        if let Some(s) = str_field("throttler")? {
            spec.throttler = Some(throttler_from(s)?);
        }
        if let Some(b) = bool_field("hermes")? {
            spec.hermes = b;
        }
        if let Some(b) = bool_field("dspatch")? {
            spec.dspatch = b;
        }
        if let Some(n) = u64_field("instrs")? {
            spec.instrs = n;
        }
        if let Some(n) = u64_field("warmup")? {
            spec.warmup = n;
        }
        if let Some(n) = u64_field("seed")? {
            spec.seed = n;
        }
        if let Some(s) = str_field("noc")? {
            spec.noc = noc_from(s)?;
        }
        if let Some(s) = str_field("dram")? {
            spec.dram = dram_from(s)?;
        }
        spec.deadline_ms = u64_field("deadline_ms")?;
        Ok(spec)
    }

    /// The mix this spec runs over. Deterministic, so the client and the
    /// daemon derive the identical mix from the identical spec.
    pub fn mix(&self) -> Result<Mix, String> {
        if let Some(seed) = self.hetero_seed {
            return clip_trace::heterogeneous_mixes(1, self.cores, seed)
                .pop()
                .ok_or_else(|| "no heterogeneous mix generated".to_string());
        }
        let name = self.workload.as_deref().unwrap_or("605.mcf_s-1554B");
        match clip_trace::catalog::by_name(name) {
            Some(w) => Ok(Mix::homogeneous(&w, self.cores)),
            None => Err(format!("unknown workload {name} (try --list-workloads)")),
        }
    }

    /// The platform configs: `(baseline, scheme)` — identical apart from
    /// the prefetcher placement (L1-trained kinds in the L1 slot).
    pub fn configs(&self) -> Result<(SimConfig, SimConfig), String> {
        let build = |pf: PrefetcherKind| {
            let (l1, l2) = if pf.trains_at_l1() || pf == PrefetcherKind::None {
                (pf, PrefetcherKind::None)
            } else {
                (PrefetcherKind::None, pf)
            };
            SimConfig::builder()
                .cores(self.cores)
                .dram_backend(self.dram)
                .dram_channels(self.channels)
                .l1_prefetcher(l1)
                .l2_prefetcher(l2)
                .build()
                .map_err(|e| format!("{e}"))
        };
        Ok((build(PrefetcherKind::None)?, build(self.prefetcher)?))
    }

    /// The attachment scheme (CLIP / DynCLIP / throttler / Hermes /
    /// DSPatch toggles applied to the plain scheme).
    pub fn scheme(&self) -> Scheme {
        let mut scheme = if self.dynclip {
            Scheme::with_dynamic_clip()
        } else if self.clip {
            Scheme::with_clip()
        } else {
            Scheme::plain()
        };
        scheme.throttler = self.throttler;
        scheme.hermes = self.hermes;
        scheme.dspatch = self.dspatch;
        scheme
    }

    /// The run options, deadline included.
    pub fn options(&self) -> clip_sim::RunOptions {
        clip_sim::RunOptions {
            warmup_instrs: self.warmup,
            sim_instrs: self.instrs,
            seed: self.seed,
            noc: self.noc,
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            ..clip_sim::RunOptions::default()
        }
    }
}

/// Parses one request frame (already decoded from its line).
pub fn parse_request(text: &str) -> Result<Request, String> {
    let v = Json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let kind = v
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| "request needs a string \"kind\"".to_string())?;
    match kind {
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        "figure" => {
            let name = v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| "figure request needs a string \"name\"".to_string())?;
            Ok(Request::Figure {
                name: name.to_string(),
            })
        }
        "run" => Ok(Request::Run(RunSpec::from_json(&v)?)),
        other => Err(format!("unknown request kind: {other}")),
    }
}

/// The tiny request frames.
pub fn health_request() -> Json {
    Json::object([("kind", Json::from("health"))])
}

pub fn shutdown_request() -> Json {
    Json::object([("kind", Json::from("shutdown"))])
}

pub fn figure_request(name: &str) -> Json {
    Json::object([("kind", Json::from("figure")), ("name", Json::from(name))])
}

// ----------------------------------------------------------------------
// Response frames.
// ----------------------------------------------------------------------

/// A completed simulation cell.
pub fn cell_frame(label: &str, result: &SimResult) -> Json {
    Json::object([
        ("ok", Json::from(true)),
        ("kind", Json::from("cell")),
        ("label", Json::from(label)),
        ("result", result.to_json()),
    ])
}

/// A completed figure experiment: its rendered table text and artifact.
pub fn experiment_frame(name: &str, text: &str, artifact: &Json) -> Json {
    Json::object([
        ("ok", Json::from(true)),
        ("kind", Json::from("experiment")),
        ("name", Json::from(name)),
        ("text", Json::from(text)),
        ("artifact", artifact.clone()),
    ])
}

/// The terminal frame of a successful streamed response.
pub fn done_frame() -> Json {
    Json::object([("ok", Json::from(true)), ("kind", Json::from("done"))])
}

/// The terminal frame of a polite shutdown.
pub fn bye_frame() -> Json {
    Json::object([("ok", Json::from(true)), ("kind", Json::from("bye"))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_roundtrip_and_enforce_the_size_cap() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &health_request()).expect("write");
        write_frame(&mut wire, &figure_request("fig02")).expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).expect("frame 1"),
            "{\"kind\":\"health\"}"
        );
        assert_eq!(
            parse_request(&read_frame(&mut r).expect("frame 2")),
            Ok(Request::Figure {
                name: "fig02".to_string()
            })
        );
        assert!(matches!(read_frame(&mut r), Err(RecvError::Closed)));

        let huge = vec![b'x'; FRAME_MAX + 10];
        let mut r = BufReader::new(huge.as_slice());
        assert!(matches!(read_frame(&mut r), Err(RecvError::TooLarge)));

        let cut = b"{\"kind\":\"health\"".to_vec();
        let mut r = BufReader::new(cut.as_slice());
        assert!(matches!(read_frame(&mut r), Err(RecvError::Truncated)));
    }

    #[test]
    fn run_specs_roundtrip_through_the_wire_form() {
        let spec = RunSpec {
            workload: Some("605.mcf_s-1554B".to_string()),
            cores: 4,
            channels: 2,
            prefetcher: PrefetcherKind::SppPpf,
            clip: true,
            throttler: Some(ThrottlerKind::Fdp),
            instrs: 500,
            warmup: 100,
            seed: 7,
            noc: NocChoice::Analytic,
            dram: DramKind::Hbm,
            deadline_ms: Some(30_000),
            ..RunSpec::default()
        };
        let line = spec.to_json().render();
        match parse_request(&line) {
            Ok(Request::Run(back)) => assert_eq!(back, spec),
            other => panic!("expected a run request, got {other:?}"),
        }

        // Defaults round-trip too (the empty run request is valid).
        match parse_request("{\"kind\":\"run\"}") {
            Ok(Request::Run(back)) => assert_eq!(back, RunSpec::default()),
            other => panic!("expected a run request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("not json at all").is_err());
        assert!(parse_request("{}").is_err(), "kind is required");
        assert!(parse_request("{\"kind\":\"dance\"}").is_err());
        assert!(
            parse_request("{\"kind\":\"figure\"}").is_err(),
            "name required"
        );
        assert!(
            parse_request("{\"kind\":\"run\",\"prefetcher\":\"warp-drive\"}").is_err(),
            "vocabulary is validated"
        );
        assert!(
            parse_request("{\"kind\":\"run\",\"cores\":\"many\"}").is_err(),
            "types are validated"
        );
    }

    #[test]
    fn vocabulary_maps_are_inverses() {
        for name in [
            "none",
            "berti",
            "ipcp",
            "bingo",
            "spp-ppf",
            "ip-stride",
            "stream",
            "next-line",
            "composite",
        ] {
            assert_eq!(prefetcher_name(prefetcher_from(name).expect("known")), name);
        }
        for name in ["fdp", "hpac", "spac", "nst"] {
            assert_eq!(throttler_name(throttler_from(name).expect("known")), name);
        }
        for name in ["mesh", "analytic", "chiplet"] {
            assert_eq!(noc_name(noc_from(name).expect("known")), name);
        }
        for name in ["ddr4", "hbm"] {
            assert_eq!(dram_name(dram_from(name).expect("known")), name);
        }
    }
}
