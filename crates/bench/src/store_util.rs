//! Shared on-disk entry machinery for the baseline caches.
//!
//! Both persistent stores — the no-prefetch result cache
//! (`target/clip-cache/`, [`crate::cache`]) and the fingerprint-baseline
//! store (`target/clip-fp/`, [`crate::fp_store`]) — keep one JSON file
//! per entry with the same durability discipline, factored out here:
//!
//! * **Checksum wrapper.** An entry is
//!   `{"checksum":"<16 hex>","<payload key>":{...}}` where the checksum
//!   is FNV-1a over the payload's rendered form. [`unwrap_verified`]
//!   returns the payload only when the stored checksum matches it as
//!   re-rendered, so truncated writes, disk corruption, and manual edits
//!   all read as misses.
//! * **Quarantine.** A present-but-damaged entry is renamed to
//!   `<entry>.corrupt` (deleted if even the rename fails) so the miss is
//!   diagnosable, and the quarantine is pruned to [`QUARANTINE_CAP`]
//!   files, oldest evicted first.
//! * **Atomic writes.** Entries are written to `<entry-stem>.tmp.<pid>`
//!   and renamed into place, so a concurrent reader never sees a torn
//!   file. [`prune_quarantine`] also sweeps *stale* tmp files — ones
//!   whose writer process is no longer alive — so a crash between write
//!   and rename (or a failed rename) cannot leave orphans behind
//!   forever.

use clip_stats::Json;
use std::path::{Path, PathBuf};

/// How many quarantined `.corrupt` files a store directory may hold.
/// A persistently failing disk would otherwise grow one per damaged
/// entry per run, forever.
pub(crate) const QUARANTINE_CAP: usize = 32;

/// Marks a store directory as in use, sweeping leftovers — stale
/// `.tmp.<pid>` files of dead writers and an over-cap quarantine — the
/// first time each directory is opened in this process. Crash debris is
/// cleaned on the *next run's first access*, not only when a quarantine
/// prune happens to fire. Every store entry point (lookup and store
/// alike) calls this; repeat opens are a `HashSet` probe.
pub(crate) fn open_store(dir: &Path) {
    use std::sync::{LazyLock, Mutex};
    static OPENED: LazyLock<Mutex<std::collections::HashSet<PathBuf>>> =
        LazyLock::new(|| Mutex::new(std::collections::HashSet::new()));
    let mut opened = OPENED.lock().unwrap_or_else(|p| p.into_inner());
    if opened.insert(dir.to_path_buf()) {
        prune_quarantine(dir);
    }
}

/// The workspace `target/` directory: the nearest ancestor of the
/// running binary named `target`, falling back to a relative `target`.
pub(crate) fn target_dir() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from("target"))
}

/// FNV-1a over a key or payload string.
pub(crate) fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The entry file for `key` (already version-tagged by the caller):
/// `<sanitized mix name>-<fnv64(key) hex>.json`. The mix name keeps
/// entries human-attributable and makes hash collisions across mixes
/// harmless.
pub(crate) fn entry_path(dir: &Path, key: &str, mix_name: &str) -> PathBuf {
    let sane: String = mix_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{sane}-{:016x}.json", fnv64(key)))
}

/// Wraps a payload with its checksum under `payload_key`:
/// `{"checksum":"<16 hex>","<payload_key>":<payload>}`.
pub(crate) fn wrap_checksummed(payload_key: &str, payload: Json) -> Json {
    let rendered = payload.render();
    Json::object([
        ("checksum", Json::from(format!("{:016x}", fnv64(&rendered)))),
        (payload_key, payload),
    ])
}

/// Parses an entry and returns its payload only when the stored checksum
/// matches the payload as re-rendered.
pub(crate) fn unwrap_verified(text: &str, payload_key: &str) -> Option<Json> {
    let entry = Json::parse(text).ok()?;
    let stored = match entry.get("checksum") {
        Some(Json::Str(s)) => s.clone(),
        _ => return None,
    };
    let payload = entry.get(payload_key)?;
    if format!("{:016x}", fnv64(&payload.render())) != stored {
        return None;
    }
    Some(payload.clone())
}

/// Writes `entry` to `path` atomically (write-then-rename through a
/// `.tmp.<pid>` sibling). Best effort: failures are silently dropped —
/// a store must never fail a figure run on a read-only filesystem.
pub(crate) fn write_entry(dir: &Path, path: &Path, entry: &Json) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, entry.render()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Moves a damaged entry aside as `<entry>.corrupt` so the miss is
/// diagnosable; deletes it if even the rename fails. Afterwards prunes
/// the quarantine back to [`QUARANTINE_CAP`] entries, oldest first.
pub(crate) fn quarantine(path: &Path) {
    static NOTICE: std::sync::Once = std::sync::Once::new();
    NOTICE.call_once(|| {
        eprintln!(
            "clip-cache: quarantining damaged cache entry {} (kept as .corrupt, cap {})",
            path.display(),
            QUARANTINE_CAP
        );
    });
    let mut aside = path.as_os_str().to_owned();
    aside.push(".corrupt");
    if std::fs::rename(path, PathBuf::from(aside)).is_err() {
        let _ = std::fs::remove_file(path);
    }
    if let Some(dir) = path.parent() {
        prune_quarantine(dir);
    }
}

/// Deletes the oldest `.corrupt` files (by modification time, then name
/// for files sharing a timestamp) until at most [`QUARANTINE_CAP`]
/// remain, and sweeps orphaned `.tmp.<pid>` files whose writer process
/// died between write and rename. Best effort: an unreadable directory
/// just skips the prune.
pub(crate) fn prune_quarantine(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut corrupt: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
    for p in entries.flatten().map(|e| e.path()) {
        if p.extension().is_some_and(|x| x == "corrupt") {
            let mtime = std::fs::metadata(&p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            corrupt.push((mtime, p));
        } else if is_stale_tmp(&p) {
            let _ = std::fs::remove_file(&p);
        }
    }
    if corrupt.len() <= QUARANTINE_CAP {
        return;
    }
    corrupt.sort();
    for (_, p) in corrupt.drain(..corrupt.len() - QUARANTINE_CAP) {
        let _ = std::fs::remove_file(p);
    }
}

/// True for a `<stem>.tmp.<pid>` file left by a writer that no longer
/// exists. The current process's own tmp files are never stale (they may
/// be mid-rename); any other pid is checked for liveness via `/proc` —
/// on platforms without procfs every foreign pid reads as dead, which
/// degrades to "sweep other processes' leftovers" (safe: live writers
/// hold a tmp file only for the instant between write and rename, and a
/// swept-mid-write store is merely skipped, never corrupted).
fn is_stale_tmp(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let Some((_, pid_str)) = name.rsplit_once(".tmp.") else {
        return false;
    };
    let Ok(pid) = pid_str.parse::<u32>() else {
        return false;
    };
    pid != std::process::id() && !Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("clip-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        d
    }

    #[test]
    fn checksum_wrapper_roundtrips_and_rejects_tampering() {
        let payload = Json::object([("x", Json::from(7u64))]);
        let entry = wrap_checksummed("result", payload.clone()).render();
        assert_eq!(unwrap_verified(&entry, "result"), Some(payload));
        assert_eq!(unwrap_verified(&entry, "stream"), None, "wrong payload key");
        let tampered = entry.replace("\"x\":7", "\"x\":8");
        assert_eq!(unwrap_verified(&tampered, "result"), None);
        assert_eq!(unwrap_verified(&entry[..entry.len() / 2], "result"), None);
    }

    #[test]
    fn stale_tmp_files_are_swept_but_live_ones_survive() {
        let dir = temp_dir("tmp-sweep");
        // pid 4294967294 cannot exist (beyond any real pid_max), so its
        // leftover is unambiguously an orphan of a dead writer.
        let dead = dir.join("mix-0123456789abcdef.tmp.4294967294");
        let own = dir.join(format!("mix-fedcba9876543210.tmp.{}", std::process::id()));
        let entry = dir.join("mix-1111111111111111.json");
        std::fs::write(&dead, "orphan").expect("seed dead tmp");
        std::fs::write(&own, "mid-rename").expect("seed own tmp");
        std::fs::write(&entry, "{}").expect("seed entry");

        prune_quarantine(&dir);

        assert!(!dead.exists(), "a dead writer's tmp file must be swept");
        assert!(own.exists(), "the current process's tmp file must survive");
        assert!(entry.exists(), "real entries are untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_store_sweeps_once_per_process() {
        let dir = temp_dir("open-sweep");
        let dead = dir.join("mix-aaaaaaaaaaaaaaaa.tmp.4294967294");
        std::fs::write(&dead, "orphan").expect("seed dead tmp");
        open_store(&dir);
        assert!(!dead.exists(), "crash debris is swept on first open");
        // A second open is a no-op: debris appearing later (a concurrent
        // writer mid-rename) is left for the next process or prune.
        std::fs::write(&dead, "orphan again").expect("re-seed dead tmp");
        open_store(&dir);
        assert!(dead.exists(), "repeat opens do not re-sweep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_of_live_processes_are_kept() {
        // pid 1 always exists on Linux; its tmp file must not be swept.
        let dir = temp_dir("tmp-live");
        let live = dir.join("mix-2222222222222222.tmp.1");
        std::fs::write(&live, "concurrent writer").expect("seed live tmp");
        prune_quarantine(&dir);
        if Path::new("/proc/1").exists() {
            assert!(live.exists(), "a live writer's tmp file must survive");
        } else {
            assert!(!live.exists(), "without procfs foreign tmps are swept");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
